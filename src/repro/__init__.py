"""repro — reproduction of the DATE 2019 REAP-cache paper.

"Enhancing Reliability of STT-MRAM Caches by Eliminating Read Disturbance
Accumulation" (Cheshmikhani, Farbeh, Asadi).

The package is organised bottom-up:

* :mod:`repro.mram` — STT-MRAM device models (read disturbance, write
  errors, retention, process variation, bit-true arrays).
* :mod:`repro.ecc` — block ECC codecs and their hardware cost model.
* :mod:`repro.cache` — set-associative cache substrate, read-path
  organisations, two-level hierarchy.
* :mod:`repro.reliability` — the paper's Eqs. (2)/(3)/(6), accumulation
  tracking, MTTF, Monte-Carlo fault injection.
* :mod:`repro.energy` — NVSim-like energy/area/latency model.
* :mod:`repro.core` — the protection schemes: conventional, **REAP**,
  serial, restore.
* :mod:`repro.workloads` — traces and SPEC CPU2006-named synthetic profiles.
* :mod:`repro.sim` — trace-driven engine and experiment orchestration.
* :mod:`repro.campaign` — parallel, resumable experiment campaigns with a
  persistent content-addressed result store.
* :mod:`repro.analysis` — figure/table builders (Fig. 3, Fig. 5, Fig. 6,
  Table I, overhead reports).

Quickstart::

    from repro import ProtectionScheme, compare_schemes

    comparison = compare_schemes("perlbench")
    print(comparison.mttf_improvement("reap"))
    print(comparison.energy_overhead_percent("reap"))
"""

from .campaign import (
    CampaignResult,
    CampaignSpec,
    JobSpec,
    ResultStore,
    ShardedResultStore,
    TCPBackend,
    diff_stores,
    merge_stores,
    open_store,
    run_campaign,
    run_worker,
)
from .config import (
    CacheLevelConfig,
    ECCConfig,
    ECCKind,
    HierarchyConfig,
    MemoryTechnology,
    MTJConfig,
    ReadPathMode,
    ReplacementPolicyName,
    SimulationConfig,
    WritePolicy,
    paper_hierarchy,
    paper_l1d_config,
    paper_l1i_config,
    paper_l2_config,
    paper_simulation_config,
)
from .core import (
    ConventionalCache,
    DataValueProfile,
    ProtectionScheme,
    REAPCache,
    RestoreCache,
    SerialAccessCache,
    build_protected_cache,
)
from .errors import ReproError
from .sim import (
    ExperimentRunner,
    ExperimentSettings,
    compare_schemes,
    run_cpu_trace,
    run_cpu_trace_fast,
    run_l2_trace,
    run_l2_trace_fast,
    run_workload,
    supports_fast_path,
)
from .workloads import (
    SPEC_CPU2006_PROFILES,
    SPECWorkloadProfile,
    Trace,
    generate_l2_trace,
    get_profile,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # configuration
    "MTJConfig",
    "ECCConfig",
    "ECCKind",
    "CacheLevelConfig",
    "HierarchyConfig",
    "SimulationConfig",
    "MemoryTechnology",
    "WritePolicy",
    "ReplacementPolicyName",
    "ReadPathMode",
    "paper_l1i_config",
    "paper_l1d_config",
    "paper_l2_config",
    "paper_hierarchy",
    "paper_simulation_config",
    # schemes
    "ProtectionScheme",
    "ConventionalCache",
    "REAPCache",
    "SerialAccessCache",
    "RestoreCache",
    "build_protected_cache",
    "DataValueProfile",
    # workloads
    "Trace",
    "SPECWorkloadProfile",
    "SPEC_CPU2006_PROFILES",
    "get_profile",
    "generate_l2_trace",
    # simulation
    "ExperimentSettings",
    "ExperimentRunner",
    "compare_schemes",
    "run_workload",
    "run_l2_trace",
    "run_l2_trace_fast",
    "run_cpu_trace_fast",
    "supports_fast_path",
    "run_cpu_trace",
    # campaigns
    "CampaignSpec",
    "CampaignResult",
    "JobSpec",
    "ResultStore",
    "ShardedResultStore",
    "open_store",
    "merge_stores",
    "diff_stores",
    "TCPBackend",
    "run_worker",
    "run_campaign",
]
