"""Trace-driven simulation engine.

Two entry points:

* :func:`run_l2_trace` — drive a protected L2 cache directly with an L2-level
  trace (the workhorse behind the paper's figures).
* :func:`run_cpu_trace` — drive the full two-level hierarchy with a CPU-level
  trace (instruction fetches, loads, stores), reproducing the paper's gem5
  arrangement end to end.

Both return a :class:`~repro.sim.results.SchemeRunResult` snapshot; the
protected cache object itself remains available for deeper inspection
(accumulation tracker, energy breakdown, per-set state).
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from contextvars import ContextVar

from ..cache import CacheHierarchy
from ..config import SimulationConfig
from ..core.protected import ProtectedCache
from ..errors import SimulationError
from ..telemetry import emit_event, span
from ..workloads.streams import DEFAULT_SEGMENT_ACCESSES, TraceSource
from ..workloads.trace import _KIND_INDEX, KIND_ORDER, AccessKind, Trace
from .results import SchemeRunResult

_L2_READ_INDEX = _KIND_INDEX[AccessKind.L2_READ]
_L2_WRITE_INDEX = _KIND_INDEX[AccessKind.L2_WRITE]


def simulated_time_for(
    num_accesses: int, config: SimulationConfig, accesses_per_cycle: float = 0.05
) -> float:
    """Estimate the wall-clock time an L2 access stream represents.

    The L2 sees roughly one access every ``1 / accesses_per_cycle`` core
    cycles (the default corresponds to an L2 APKI in the tens, typical of the
    SPEC CPU2006 suite).  Only *relative* MTTF matters for the figures, but a
    consistent time base keeps absolute MTTF values meaningful.
    """
    if num_accesses < 0:
        raise SimulationError("num_accesses must be non-negative")
    if accesses_per_cycle <= 0:
        raise SimulationError("accesses_per_cycle must be positive")
    cycles = num_accesses / accesses_per_cycle
    return cycles * config.cycle_time_s


def _snapshot(
    cache: ProtectedCache,
    workload: str,
    num_accesses: int,
    simulated_time_s: float,
) -> SchemeRunResult:
    """Collect a result record from a driven protected cache."""
    reliability = cache.reliability
    energy = cache.energy
    stats = cache.stats
    return SchemeRunResult(
        workload=workload,
        scheme=cache.scheme_name(),
        num_accesses=num_accesses,
        simulated_time_s=simulated_time_s,
        expected_failures=cache.expected_failures,
        checked_reads=reliability.checked_reads,
        concealed_reads=reliability.concealed_reads,
        max_accumulated_reads=reliability.max_accumulated_reads,
        mean_accumulated_reads=reliability.mean_accumulated_reads,
        dynamic_energy_pj=energy.dynamic_pj,
        ecc_energy_pj=energy.ecc_decode_pj + energy.ecc_encode_pj,
        leakage_energy_pj=energy.leakage_pj,
        hit_rate=stats.hit_rate,
        read_fraction=stats.read_fraction,
        read_hit_latency_ns=cache.read_hit_latency_ns(),
    )


#: Engine names accepted by :func:`run_l2_trace` and the experiment layer.
ENGINE_CHOICES = ("reference", "fast", "auto")


def _check_engine(engine: str) -> None:
    if engine not in ENGINE_CHOICES:
        raise SimulationError(
            f"unknown engine {engine!r}; choose one of {ENGINE_CHOICES}"
        )


#: When set (to a mutable set of already-warned reasons), ``engine="auto"``
#: fallback warnings are deduplicated: each distinct reason warns once.
_fallback_warned: ContextVar[set | None] = ContextVar(
    "repro_fallback_warned", default=None
)


@contextmanager
def deduplicate_fallback_warnings():
    """Scope within which each distinct auto-fallback reason warns only once.

    The campaign/sweep layers wrap whole runs in this so a large sweep over
    an unsupported cache emits one :class:`RuntimeWarning` instead of one
    per job.  Direct ``run_l2_trace`` calls outside the scope keep the
    historical warn-per-call behaviour.
    """
    token = _fallback_warned.set(set())
    try:
        yield
    finally:
        _fallback_warned.reset(token)


def enable_fallback_warning_dedup() -> None:
    """Deduplicate auto-fallback warnings for the rest of this process.

    Used as the initializer of campaign worker processes, where the scoped
    context manager cannot span jobs dispatched by the parent.
    """
    _fallback_warned.set(set())


def _warn_auto_fallback(reason: str) -> None:
    """One-line warning naming why ``engine="auto"`` took the slow loop."""
    # Telemetry sees every fallback occurrence (so ``repro-reap stats`` can
    # count them), even when the stderr warning below is deduplicated.
    emit_event("engine.fallback", reason=reason)
    seen = _fallback_warned.get()
    if seen is not None:
        if reason in seen:
            return
        seen.add(reason)
    # stacklevel 3: warnings.warn <- this helper <- run_*_trace <- API caller.
    warnings.warn(
        f"engine='auto' fell back to the reference loop: "
        f"fast path does not support {reason}",
        RuntimeWarning,
        stacklevel=3,
    )


def _trace_segments(trace: Trace | TraceSource, segment_accesses: int):
    """Yield decoded ``(kinds, addresses)`` segments from either trace form."""
    if isinstance(trace, Trace):
        kinds, addresses = trace.decoded()
        for start in range(0, len(kinds), segment_accesses):
            stop = start + segment_accesses
            yield kinds[start:stop], addresses[start:stop]
    else:
        yield from trace.segments(segment_accesses)


def _run_l2_segmented(
    cache: ProtectedCache,
    trace: Trace | TraceSource,
    config: SimulationConfig | None,
    add_leakage: bool,
    engine: str,
    kernel: str,
    segment_accesses: int,
) -> SchemeRunResult:
    """Segment-by-segment replay; bit-identical to the whole-trace paths."""
    config = config or SimulationConfig()
    scheme = cache.scheme_name()
    if engine != "reference":
        from .fastpath import replay_l2_segments, supports_fast_path

        supported, reason = supports_fast_path(cache)
        if engine == "fast" or supported:
            total = replay_l2_segments(
                cache, _trace_segments(trace, segment_accesses), kernel=kernel
            )
            simulated_time = simulated_time_for(total, config)
            if add_leakage:
                cache.add_leakage(simulated_time)
            return _snapshot(cache, trace.name, total, simulated_time)
        _warn_auto_fallback(reason)
    emit_event(
        "sim.engine", engine="reference", path="l2", scheme=scheme, streaming=True
    )
    total = 0
    for segment_index, (kinds, addresses) in enumerate(
        _trace_segments(trace, segment_accesses)
    ):
        with span(
            "kernel.segment",
            scheme=scheme,
            path="l2",
            segment=segment_index,
            accesses=len(kinds),
        ):
            for kind_index, address in zip(kinds.tolist(), addresses.tolist()):
                if kind_index == _L2_READ_INDEX:
                    cache.read(address)
                elif kind_index == _L2_WRITE_INDEX:
                    cache.write(address)
                else:
                    raise SimulationError(
                        f"run_l2_trace expects L2-level records, got "
                        f"{KIND_ORDER[kind_index]}"
                    )
        total += len(kinds)
    simulated_time = simulated_time_for(total, config)
    if add_leakage:
        cache.add_leakage(simulated_time)
    return _snapshot(cache, trace.name, total, simulated_time)


def run_l2_trace(
    cache: ProtectedCache,
    trace: Trace | TraceSource,
    config: SimulationConfig | None = None,
    add_leakage: bool = True,
    engine: str = "reference",
    kernel: str = "auto",
    segment_accesses: int | None = None,
) -> SchemeRunResult:
    """Drive a protected L2 cache with an L2-level trace.

    Args:
        cache: The protected cache to drive (mutated in place).
        trace: L2-level trace (``L2_READ`` / ``L2_WRITE`` records; CPU-level
            records are rejected).  Either an in-memory :class:`Trace` or a
            streaming :class:`~repro.workloads.streams.TraceSource` (from
            :func:`repro.workloads.open_trace`); sources are replayed
            segment by segment in bounded memory.
        config: Simulation configuration used for the time base; the default
            paper configuration is used when omitted.
        add_leakage: Whether to add leakage energy for the simulated time.
        engine: ``"reference"`` for the per-record loop, ``"fast"`` for the
            batched engine in :mod:`repro.sim.fastpath` (raises if the cache
            is not fast-path capable), or ``"auto"`` to use the fast engine
            whenever it supports the cache and fall back otherwise.  Both
            engines produce numerically identical results.
        kernel: Fast-path kernel tier (``"loop"``, ``"soa"`` or ``"auto"``);
            ignored by the reference engine.  Kernels are bit-identical, so
            the knob only affects throughput.
        segment_accesses: Replay segment length.  ``None`` (the default)
            replays an in-memory :class:`Trace` whole and a streaming
            source in segments of
            :data:`~repro.workloads.streams.DEFAULT_SEGMENT_ACCESSES`.
            Any value forces segmented replay — bit-identical to the
            whole-trace replay by construction, since all cache, policy,
            accumulator and energy state lives on the cache between
            segments.

    Returns:
        A :class:`SchemeRunResult` snapshot taken after the whole trace ran.
    """
    _check_engine(engine)
    if segment_accesses is not None and segment_accesses <= 0:
        raise SimulationError("segment_accesses must be positive")
    if segment_accesses is not None or not isinstance(trace, Trace):
        return _run_l2_segmented(
            cache,
            trace,
            config,
            add_leakage,
            engine,
            kernel,
            segment_accesses or DEFAULT_SEGMENT_ACCESSES,
        )
    if engine != "reference":
        from .fastpath import run_l2_trace_fast, supports_fast_path

        supported, reason = supports_fast_path(cache)
        if engine == "fast" or supported:
            return run_l2_trace_fast(
                cache, trace, config=config, add_leakage=add_leakage, kernel=kernel
            )
        _warn_auto_fallback(reason)
    config = config or SimulationConfig()
    scheme = cache.scheme_name()
    emit_event("sim.engine", engine="reference", path="l2", scheme=scheme)
    with span("reference.replay", scheme=scheme, path="l2", accesses=len(trace)):
        for record in trace:
            if record.kind is AccessKind.L2_READ:
                cache.read(record.address)
            elif record.kind is AccessKind.L2_WRITE:
                cache.write(record.address)
            else:
                raise SimulationError(
                    f"run_l2_trace expects L2-level records, got {record.kind}"
                )
    simulated_time = simulated_time_for(len(trace), config)
    if add_leakage:
        cache.add_leakage(simulated_time)
    return _snapshot(cache, trace.name, len(trace), simulated_time)


def run_cpu_trace(
    l2_cache: ProtectedCache,
    trace: Trace,
    config: SimulationConfig | None = None,
    seed: int = 1,
    add_leakage: bool = True,
    engine: str = "reference",
    kernel: str = "auto",
    artifact_cache=None,
) -> tuple[SchemeRunResult, CacheHierarchy]:
    """Drive the full two-level hierarchy with a CPU-level trace.

    Args:
        l2_cache: The protected L2 placed under the L1s (mutated in place).
        trace: CPU-level trace (``IFETCH`` / ``LOAD`` / ``STORE`` records).
        config: Simulation configuration (hierarchy geometry and time base).
        seed: Seed for the L1 replacement policies.
        add_leakage: Whether to add L2 leakage energy for the simulated
            time, matching :func:`run_l2_trace` (hierarchy energy results
            include the leakage term by default).
        engine: ``"reference"`` for the per-record loop, ``"fast"`` for the
            batched engine in :mod:`repro.sim.fastpath` (raises if the L2 is
            not fast-path capable), or ``"auto"`` to use the fast engine
            whenever it supports the L2 and fall back otherwise.  Both
            engines produce numerically identical results, including the L1
            contents and hierarchy statistics.
        kernel: Fast-path kernel tier (``"loop"``, ``"soa"`` or ``"auto"``);
            ignored by the reference engine.
        artifact_cache: Optional :class:`~repro.workloads.ArtifactCache`
            (or directory spec) the fast SoA path consults for pre-filtered
            L2 streams; ignored by the reference engine and the loop
            kernel.  Results are bit-identical either way.

    Returns:
        A (result, hierarchy) pair; the hierarchy gives access to L1
        statistics and the realised L2 request counts.
    """
    _check_engine(engine)
    if engine != "reference":
        from .fastpath import run_cpu_trace_fast, supports_fast_path

        supported, reason = supports_fast_path(l2_cache)
        if engine == "fast" or supported:
            return run_cpu_trace_fast(
                l2_cache,
                trace,
                config=config,
                seed=seed,
                add_leakage=add_leakage,
                kernel=kernel,
                artifact_cache=artifact_cache,
            )
        _warn_auto_fallback(reason)
    config = config or SimulationConfig()
    hierarchy = CacheHierarchy(config.hierarchy, l2_cache, seed=seed)
    scheme = l2_cache.scheme_name()
    emit_event("sim.engine", engine="reference", path="cpu", scheme=scheme)
    with span("reference.replay", scheme=scheme, path="cpu", accesses=len(trace)):
        for record in trace:
            if record.kind is AccessKind.IFETCH:
                hierarchy.fetch_instruction(record.address)
            elif record.kind is AccessKind.LOAD:
                hierarchy.load(record.address)
            elif record.kind is AccessKind.STORE:
                hierarchy.store(record.address)
            else:
                raise SimulationError(
                    f"run_cpu_trace expects CPU-level records, got {record.kind}"
                )
    # Time base: one CPU reference per cycle is a serviceable approximation
    # for an in-order front end feeding two levels of cache.
    simulated_time = len(trace) * config.cycle_time_s
    if add_leakage:
        l2_cache.add_leakage(simulated_time)
    l2_accesses = hierarchy.stats.l2_reads + hierarchy.stats.l2_writebacks
    result = _snapshot(l2_cache, trace.name, l2_accesses, simulated_time)
    return result, hierarchy
