"""Result records produced by the simulation engine and experiment runner.

Every simulation of one (workload, scheme) pair yields a
:class:`SchemeRunResult` carrying the reliability, energy and functional
statistics needed by the figure builders.  :class:`WorkloadComparison` pairs
a baseline run with one or more alternative schemes and computes the
normalised metrics the paper reports (MTTF improvement, relative dynamic
energy).  Simple fixed-width text tables are provided for console output so
benches and examples can print paper-style rows without any plotting
dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import AnalysisError
from ..reliability import MTTFResult, mttf_improvement


@dataclass(frozen=True)
class SchemeRunResult:
    """Outcome of running one workload trace through one protection scheme.

    Attributes:
        workload: Workload name.
        scheme: Protection scheme name.
        num_accesses: L2 accesses simulated.
        simulated_time_s: Wall-clock time the trace represents.
        expected_failures: Sum of per-delivery uncorrectable probabilities.
        checked_reads: Number of ECC-checked deliveries.
        concealed_reads: Number of concealed reads observed.
        max_accumulated_reads: Largest exposure window seen at a check.
        mean_accumulated_reads: Mean exposure window at check time.
        dynamic_energy_pj: Total dynamic energy.
        ecc_energy_pj: Dynamic energy spent in ECC encoders/decoders.
        leakage_energy_pj: Leakage energy over the simulated time.
        hit_rate: Demand hit rate of the cache.
        read_fraction: Fraction of demand accesses that were reads.
        read_hit_latency_ns: Read-hit latency of the scheme's read path.
        extra: Free-form additional metrics.
    """

    workload: str
    scheme: str
    num_accesses: int
    simulated_time_s: float
    expected_failures: float
    checked_reads: int
    concealed_reads: int
    max_accumulated_reads: int
    mean_accumulated_reads: float
    dynamic_energy_pj: float
    ecc_energy_pj: float
    leakage_energy_pj: float
    hit_rate: float
    read_fraction: float
    read_hit_latency_ns: float
    extra: Mapping[str, float] = field(default_factory=dict)

    @property
    def mttf(self) -> MTTFResult:
        """MTTF summary of the run."""
        return MTTFResult(
            expected_failures=self.expected_failures,
            simulated_time_s=self.simulated_time_s,
            num_accesses=self.checked_reads,
        )

    @property
    def failure_rate_per_access(self) -> float:
        """Average uncorrectable probability per checked delivery."""
        if self.checked_reads == 0:
            return 0.0
        return self.expected_failures / self.checked_reads


@dataclass(frozen=True)
class WorkloadComparison:
    """Baseline-vs-alternatives comparison for one workload."""

    workload: str
    baseline: SchemeRunResult
    alternatives: tuple[SchemeRunResult, ...]

    def alternative(self, scheme: str) -> SchemeRunResult:
        """Return the alternative run for a scheme name.

        Raises:
            AnalysisError: if the scheme was not part of the comparison.
        """
        for run in self.alternatives:
            if run.scheme == scheme:
                return run
        raise AnalysisError(
            f"scheme {scheme!r} not present in comparison for {self.workload!r}"
        )

    def mttf_improvement(self, scheme: str = "reap") -> float:
        """MTTF of ``scheme`` normalised to the baseline (Fig. 5 metric)."""
        return mttf_improvement(self.baseline.mttf, self.alternative(scheme).mttf)

    def relative_dynamic_energy(self, scheme: str = "reap") -> float:
        """Dynamic energy of ``scheme`` normalised to the baseline (Fig. 6 metric)."""
        if self.baseline.dynamic_energy_pj == 0:
            raise AnalysisError("baseline dynamic energy is zero")
        return (
            self.alternative(scheme).dynamic_energy_pj
            / self.baseline.dynamic_energy_pj
        )

    def energy_overhead_percent(self, scheme: str = "reap") -> float:
        """Dynamic-energy overhead of ``scheme`` in percent."""
        return (self.relative_dynamic_energy(scheme) - 1.0) * 100.0


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], precision: int = 3
) -> str:
    """Render a fixed-width text table.

    Args:
        headers: Column headers.
        rows: Row values; floats are formatted, other types ``str()``-ed.
        precision: Significant digits used for floats.

    Returns:
        The formatted table as a single string.
    """
    if any(len(row) != len(headers) for row in rows):
        raise AnalysisError("every row must have one value per header")

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            if math.isinf(value):
                return "inf"
            if abs(value) >= 1e4 or abs(value) < 1e-3:
                return f"{value:.{precision}e}"
            return f"{value:.{precision}g}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
