"""Experiment orchestration: scheme comparisons and parameter sweeps.

The figure builders in :mod:`repro.analysis` are thin wrappers around the
two workhorses here:

* :func:`compare_schemes` — run the *same* workload trace through a baseline
  scheme and any number of alternatives and pair up the results.
* :class:`ExperimentRunner` — run a whole suite of SPEC-named workloads,
  optionally sweeping a parameter (ECC strength, associativity, disturbance
  probability), and collect the per-workload comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..config import CacheLevelConfig, MTJConfig, SimulationConfig, paper_l2_config
from ..core import DataValueProfile, ProtectionScheme, build_protected_cache
from ..errors import AnalysisError
from ..workloads import SPECWorkloadProfile, generate_l2_trace, get_profile
from ..workloads.trace import Trace
from .engine import run_l2_trace
from .results import SchemeRunResult, WorkloadComparison


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all runs of one experiment.

    Attributes:
        l2_config: Geometry and ECC of the L2 under test.
        mtj: MTJ operating point (ignored when ``p_cell`` is given).
        p_cell: Per-read, per-cell disturbance probability override.
        num_accesses: L2 accesses generated per workload.
        ones_count: When set, every block holds exactly this many '1' cells
            (the paper's worked example uses 100); otherwise ones counts are
            sampled from the default data profile.
        seed: Base random seed (workload index is added to it).
        track_accumulation: Record per-delivery samples (needed for Fig. 3).
    """

    l2_config: CacheLevelConfig = field(default_factory=paper_l2_config)
    mtj: MTJConfig = field(default_factory=MTJConfig)
    p_cell: float | None = 1e-8
    num_accesses: int = 100_000
    ones_count: int | None = 100
    seed: int = 1
    track_accumulation: bool = True

    def data_profile(self, seed: int) -> DataValueProfile:
        """Build the ones-count sampler implied by the settings."""
        if self.ones_count is not None:
            return DataValueProfile.constant(
                self.ones_count, block_bits=self.l2_config.block_size_bits
            )
        return DataValueProfile(block_bits=self.l2_config.block_size_bits, seed=seed)


def run_workload(
    workload: SPECWorkloadProfile | str,
    scheme: ProtectionScheme | str,
    settings: ExperimentSettings | None = None,
    trace: Trace | None = None,
    sim_config: SimulationConfig | None = None,
):
    """Run one (workload, scheme) pair and return (result, protected cache).

    Args:
        workload: Profile object or SPEC benchmark name.
        scheme: Protection scheme to evaluate.
        settings: Experiment settings; defaults reproduce the paper setup.
        trace: Pre-generated trace; when omitted one is generated from the
            profile (always generate the trace once and pass it in when
            comparing schemes, so both see the identical access stream).
        sim_config: Simulation configuration for the time base.
    """
    settings = settings or ExperimentSettings()
    profile = get_profile(workload) if isinstance(workload, str) else workload
    if trace is None:
        trace = generate_l2_trace(
            profile, settings.l2_config, settings.num_accesses, seed=settings.seed
        )
    cache = build_protected_cache(
        scheme,
        settings.l2_config,
        mtj=settings.mtj,
        p_cell=settings.p_cell,
        data_profile=settings.data_profile(settings.seed),
        seed=settings.seed,
        track_accumulation=settings.track_accumulation,
    )
    result = run_l2_trace(cache, trace, config=sim_config)
    return result, cache


def compare_schemes(
    workload: SPECWorkloadProfile | str,
    baseline: ProtectionScheme | str = ProtectionScheme.CONVENTIONAL,
    alternatives: Sequence[ProtectionScheme | str] = (ProtectionScheme.REAP,),
    settings: ExperimentSettings | None = None,
    sim_config: SimulationConfig | None = None,
) -> WorkloadComparison:
    """Run one workload through a baseline and alternative schemes.

    The trace is generated once and replayed identically for every scheme so
    the comparison isolates the protection mechanism.
    """
    settings = settings or ExperimentSettings()
    profile = get_profile(workload) if isinstance(workload, str) else workload
    trace = generate_l2_trace(
        profile, settings.l2_config, settings.num_accesses, seed=settings.seed
    )
    baseline_result, _ = run_workload(
        profile, baseline, settings=settings, trace=trace, sim_config=sim_config
    )
    alternative_results = []
    for scheme in alternatives:
        result, _ = run_workload(
            profile, scheme, settings=settings, trace=trace, sim_config=sim_config
        )
        alternative_results.append(result)
    return WorkloadComparison(
        workload=profile.name,
        baseline=baseline_result,
        alternatives=tuple(alternative_results),
    )


class ExperimentRunner:
    """Runs a suite of workloads through a set of schemes."""

    def __init__(
        self,
        workloads: Iterable[SPECWorkloadProfile | str],
        settings: ExperimentSettings | None = None,
        baseline: ProtectionScheme | str = ProtectionScheme.CONVENTIONAL,
        alternatives: Sequence[ProtectionScheme | str] = (ProtectionScheme.REAP,),
    ) -> None:
        """Create a runner.

        Args:
            workloads: Profiles or benchmark names to evaluate.
            settings: Shared experiment settings.
            baseline: Scheme every alternative is normalised against.
            alternatives: Schemes to evaluate against the baseline.
        """
        self._workloads = [
            get_profile(w) if isinstance(w, str) else w for w in workloads
        ]
        if not self._workloads:
            raise AnalysisError("at least one workload is required")
        self._settings = settings or ExperimentSettings()
        self._baseline = baseline
        self._alternatives = tuple(alternatives)

    @property
    def workloads(self) -> list[SPECWorkloadProfile]:
        """The workload profiles the runner evaluates."""
        return list(self._workloads)

    @property
    def settings(self) -> ExperimentSettings:
        """Shared experiment settings."""
        return self._settings

    def run(
        self, progress: Callable[[str], None] | None = None
    ) -> list[WorkloadComparison]:
        """Run every workload and return the per-workload comparisons.

        Args:
            progress: Optional callback invoked with the workload name as
                each comparison finishes.
        """
        comparisons = []
        for index, profile in enumerate(self._workloads):
            settings = ExperimentSettings(
                l2_config=self._settings.l2_config,
                mtj=self._settings.mtj,
                p_cell=self._settings.p_cell,
                num_accesses=self._settings.num_accesses,
                ones_count=self._settings.ones_count,
                seed=self._settings.seed + index,
                track_accumulation=self._settings.track_accumulation,
            )
            comparison = compare_schemes(
                profile,
                baseline=self._baseline,
                alternatives=self._alternatives,
                settings=settings,
            )
            comparisons.append(comparison)
            if progress is not None:
                progress(profile.name)
        return comparisons


def sweep(
    parameter_values: Sequence[object],
    build_settings: Callable[[object], ExperimentSettings],
    workload: SPECWorkloadProfile | str,
    baseline: ProtectionScheme | str = ProtectionScheme.CONVENTIONAL,
    alternatives: Sequence[ProtectionScheme | str] = (ProtectionScheme.REAP,),
) -> list[tuple[object, WorkloadComparison]]:
    """Sweep one parameter and compare schemes at each point.

    Args:
        parameter_values: The values to sweep.
        build_settings: Maps a parameter value to the experiment settings to
            use at that point.
        workload: The workload evaluated at every point.
        baseline: Baseline scheme.
        alternatives: Alternative schemes.

    Returns:
        ``[(value, comparison), ...]`` in the order of ``parameter_values``.
    """
    results = []
    for value in parameter_values:
        settings = build_settings(value)
        comparison = compare_schemes(
            workload, baseline=baseline, alternatives=alternatives, settings=settings
        )
        results.append((value, comparison))
    return results
