"""Experiment orchestration: scheme comparisons and parameter sweeps.

The figure builders in :mod:`repro.analysis` are thin wrappers around the
two workhorses here:

* :func:`compare_schemes` — run the *same* workload trace through a baseline
  scheme and any number of alternatives and pair up the results.
* :class:`ExperimentRunner` — run a whole suite of SPEC-named workloads,
  optionally sweeping a parameter (ECC strength, associativity, disturbance
  probability), and collect the per-workload comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..config import CacheLevelConfig, MTJConfig, SimulationConfig, paper_l2_config
from ..core import DataValueProfile, ProtectionScheme, build_protected_cache
from ..errors import AnalysisError, ReproError
from ..workloads import SPECWorkloadProfile, generate_l2_trace, get_profile
from ..workloads.trace import Trace
from .engine import run_l2_trace
from .results import SchemeRunResult, WorkloadComparison


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all runs of one experiment.

    Attributes:
        l2_config: Geometry and ECC of the L2 under test.
        mtj: MTJ operating point (ignored when ``p_cell`` is given).
        p_cell: Per-read, per-cell disturbance probability override.
        num_accesses: L2 accesses generated per workload.
        ones_count: When set, every block holds exactly this many '1' cells
            (the paper's worked example uses 100); otherwise ones counts are
            sampled from the default data profile.
        seed: Base random seed (workload index is added to it).
        track_accumulation: Record per-delivery samples (needed for Fig. 3).
        trace_file: When set, replay this trace file (any format accepted by
            :func:`repro.workloads.open_trace`) instead of generating a
            trace from the workload profile; ``num_accesses`` and ``seed``
            then no longer affect the access stream.
        segment_accesses: Replay segment length for out-of-core replay; see
            :func:`repro.sim.run_l2_trace`.  ``None`` replays in-memory
            traces whole (segmented replay is bit-identical, so this is an
            execution knob — but it is carried in the settings so campaign
            workers replay files in bounded memory).
    """

    l2_config: CacheLevelConfig = field(default_factory=paper_l2_config)
    mtj: MTJConfig = field(default_factory=MTJConfig)
    p_cell: float | None = 1e-8
    num_accesses: int = 100_000
    ones_count: int | None = 100
    seed: int = 1
    track_accumulation: bool = True
    trace_file: str | None = None
    segment_accesses: int | None = None

    def data_profile(self, seed: int) -> DataValueProfile:
        """Build the ones-count sampler implied by the settings."""
        if self.ones_count is not None:
            return DataValueProfile.constant(
                self.ones_count, block_bits=self.l2_config.block_size_bits
            )
        return DataValueProfile(block_bits=self.l2_config.block_size_bits, seed=seed)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary (nested configs included).

        The streaming fields are included only when set: campaign job keys
        hash this dictionary, and defaulted streaming knobs must not change
        the identity of jobs recorded before the fields existed.
        """
        data = {
            "l2_config": self.l2_config.to_dict(),
            "mtj": self.mtj.to_dict(),
            "p_cell": self.p_cell,
            "num_accesses": self.num_accesses,
            "ones_count": self.ones_count,
            "seed": self.seed,
            "track_accumulation": self.track_accumulation,
        }
        if self.trace_file is not None:
            data["trace_file"] = self.trace_file
        if self.segment_accesses is not None:
            data["segment_accesses"] = self.segment_accesses
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSettings":
        """Build from a plain dictionary, ignoring unknown keys."""
        payload = dict(data)
        l2_data = payload.pop("l2_config", None)
        mtj_data = payload.pop("mtj", None)
        known = {f.name for f in fields(cls)} - {"l2_config", "mtj"}
        return cls(
            l2_config=(
                CacheLevelConfig.from_dict(l2_data)
                if l2_data is not None
                else paper_l2_config()
            ),
            mtj=MTJConfig.from_dict(mtj_data) if mtj_data is not None else MTJConfig(),
            **{k: v for k, v in payload.items() if k in known},
        )


def _is_registered(profile: SPECWorkloadProfile) -> bool:
    """Whether the registry resolves the profile's name back to this profile.

    Campaign jobs carry only the workload *name*; delegating an unregistered
    (or locally modified) profile object would silently evaluate the
    registry's version instead.
    """
    try:
        return get_profile(profile.name) == profile
    except ReproError:
        return False


def _resolve_trace(
    settings: ExperimentSettings,
    profile: SPECWorkloadProfile,
    artifact_cache=None,
):
    """The access stream a settings object asks for: file, cache or generated.

    ``artifact_cache`` accepts an :class:`~repro.workloads.ArtifactCache`,
    a directory spec, or ``None`` (consult ``REPRO_ARTIFACT_CACHE``).  With
    a cache resolved, generated traces are served from (and persisted to)
    the cache — a hit replays through the bit-identical segmented path —
    and text trace files are mirrored to the binary format once.  The knob
    is purely operational: it never enters settings or job identity.
    """
    from ..workloads.artifacts import ArtifactCache

    cache = ArtifactCache.resolve(artifact_cache)
    if settings.trace_file is not None:
        from ..workloads.streams import TextTraceSource, open_trace

        source = open_trace(settings.trace_file)
        if cache is not None and isinstance(source, TextTraceSource):
            return cache.binary_text_trace(settings.trace_file, source)
        return source
    if cache is not None:
        return cache.l2_trace(
            profile, settings.l2_config, settings.num_accesses, settings.seed
        )
    return generate_l2_trace(
        profile, settings.l2_config, settings.num_accesses, seed=settings.seed
    )


def run_workload(
    workload: SPECWorkloadProfile | str,
    scheme: ProtectionScheme | str,
    settings: ExperimentSettings | None = None,
    trace: Trace | None = None,
    sim_config: SimulationConfig | None = None,
    engine: str = "auto",
    kernel: str = "auto",
    artifact_cache=None,
):
    """Run one (workload, scheme) pair and return (result, protected cache).

    Args:
        workload: Profile object or SPEC benchmark name.
        scheme: Protection scheme to evaluate.
        settings: Experiment settings; defaults reproduce the paper setup.
        trace: Pre-generated trace or a streaming
            :class:`~repro.workloads.streams.TraceSource`; when omitted one
            is resolved from the settings — opened from
            ``settings.trace_file`` when set, generated from the profile
            otherwise (always resolve the trace once and pass it in when
            comparing schemes, so both see the identical access stream).
        sim_config: Simulation configuration for the time base.
        engine: Simulation engine (``"reference"``, ``"fast"`` or
            ``"auto"``, the default); see :func:`repro.sim.run_l2_trace`.
            Both engines produce numerically identical results, so the
            choice never affects experiment outcomes; ``"auto"`` warns and
            falls back to the reference loop for unsupported caches.
        kernel: Fast-path kernel tier (``"loop"``, ``"soa"`` or ``"auto"``,
            the default); kernels are bit-identical, so this only affects
            throughput.
        artifact_cache: Optional artifact-cache spec consulted when the
            trace is resolved here (see :func:`_resolve_trace`); results
            are byte-identical with the cache cold, warm or disabled.
    """
    settings = settings or ExperimentSettings()
    profile = get_profile(workload) if isinstance(workload, str) else workload
    if trace is None:
        trace = _resolve_trace(settings, profile, artifact_cache=artifact_cache)
    cache = build_protected_cache(
        scheme,
        settings.l2_config,
        mtj=settings.mtj,
        p_cell=settings.p_cell,
        data_profile=settings.data_profile(settings.seed),
        seed=settings.seed,
        track_accumulation=settings.track_accumulation,
    )
    result = run_l2_trace(
        cache,
        trace,
        config=sim_config,
        engine=engine,
        kernel=kernel,
        segment_accesses=settings.segment_accesses,
    )
    return result, cache


def compare_schemes(
    workload: SPECWorkloadProfile | str,
    baseline: ProtectionScheme | str = ProtectionScheme.CONVENTIONAL,
    alternatives: Sequence[ProtectionScheme | str] = (ProtectionScheme.REAP,),
    settings: ExperimentSettings | None = None,
    sim_config: SimulationConfig | None = None,
    engine: str = "auto",
    kernel: str = "auto",
    artifact_cache=None,
) -> WorkloadComparison:
    """Run one workload through a baseline and alternative schemes.

    The trace is resolved once (generated from the profile, served from the
    artifact cache, or opened from ``settings.trace_file``) and replayed
    identically for every scheme so the comparison isolates the protection
    mechanism.  ``engine`` and ``kernel`` select the simulation engine and
    fast-path kernel tier per :func:`repro.sim.run_l2_trace`; results are
    numerically identical across all combinations, and ``artifact_cache``
    (like engine and kernel) is an operational knob that never changes
    results or identities.
    """
    settings = settings or ExperimentSettings()
    profile = get_profile(workload) if isinstance(workload, str) else workload
    trace = _resolve_trace(settings, profile, artifact_cache=artifact_cache)
    baseline_result, _ = run_workload(
        profile,
        baseline,
        settings=settings,
        trace=trace,
        sim_config=sim_config,
        engine=engine,
        kernel=kernel,
    )
    alternative_results = []
    for scheme in alternatives:
        result, _ = run_workload(
            profile,
            scheme,
            settings=settings,
            trace=trace,
            sim_config=sim_config,
            engine=engine,
            kernel=kernel,
        )
        alternative_results.append(result)
    return WorkloadComparison(
        workload=profile.name,
        baseline=baseline_result,
        alternatives=tuple(alternative_results),
    )


class ExperimentRunner:
    """Runs a suite of workloads through a set of schemes."""

    def __init__(
        self,
        workloads: Iterable[SPECWorkloadProfile | str],
        settings: ExperimentSettings | None = None,
        baseline: ProtectionScheme | str = ProtectionScheme.CONVENTIONAL,
        alternatives: Sequence[ProtectionScheme | str] = (ProtectionScheme.REAP,),
        engine: str = "auto",
        kernel: str = "auto",
    ) -> None:
        """Create a runner.

        Args:
            workloads: Profiles or benchmark names to evaluate.
            settings: Shared experiment settings.
            baseline: Scheme every alternative is normalised against.
            alternatives: Schemes to evaluate against the baseline.
            engine: Simulation engine used for every run (``"reference"``,
                ``"fast"`` or ``"auto"``, the default); results are
                numerically identical either way, so the engine is not part
                of any job identity.
            kernel: Fast-path kernel tier (``"loop"``, ``"soa"`` or
                ``"auto"``, the default); also not part of job identity.
        """
        self._workloads = [
            get_profile(w) if isinstance(w, str) else w for w in workloads
        ]
        if not self._workloads:
            raise AnalysisError("at least one workload is required")
        self._settings = settings or ExperimentSettings()
        self._baseline = baseline
        self._alternatives = tuple(alternatives)
        self._engine = engine
        self._kernel = kernel

    @property
    def workloads(self) -> list[SPECWorkloadProfile]:
        """The workload profiles the runner evaluates."""
        return list(self._workloads)

    @property
    def settings(self) -> ExperimentSettings:
        """Shared experiment settings."""
        return self._settings

    def run(
        self,
        progress: Callable[[str], None] | None = None,
        jobs: int = 1,
        store=None,
    ) -> list[WorkloadComparison]:
        """Run every workload and return the per-workload comparisons.

        Delegates to :mod:`repro.campaign`: each workload becomes one
        campaign job (seed strided by workload index, as before), so the
        suite can fan out over worker processes and reuse a persistent
        result store without changing this method's contract.  Campaign
        jobs are identified by workload *name*, so profiles that are not in
        the registry (custom or modified objects) run in-process instead,
        without store caching or fan-out.

        Args:
            progress: Optional callback invoked with the workload name as
                each comparison finishes.
            jobs: Worker processes to fan the workloads out over (default
                serial, the historical behaviour).
            store: Optional :class:`repro.campaign.ResultStore` (or path)
                used to cache and resume the runs.
        """
        if not all(_is_registered(profile) for profile in self._workloads):
            return self._run_direct(progress)

        from ..campaign import CampaignSpec, run_campaign

        spec = CampaignSpec(
            name="experiment-runner",
            workloads=tuple(profile.name for profile in self._workloads),
            base_settings=self._settings,
            baseline=self._baseline,
            alternatives=self._alternatives,
        )
        job_progress = None
        if progress is not None:
            job_progress = lambda outcome: progress(outcome.job.workload)  # noqa: E731
        result = run_campaign(
            spec,
            store=store,
            jobs=jobs,
            progress=job_progress,
            engine=self._engine,
            kernel=self._kernel,
        )
        return result.comparisons

    def _run_direct(
        self, progress: Callable[[str], None] | None = None
    ) -> list[WorkloadComparison]:
        """In-process fallback for unregistered workload profiles."""
        from .engine import deduplicate_fallback_warnings

        with deduplicate_fallback_warnings():
            return self._run_direct_inner(progress)

    def _run_direct_inner(
        self, progress: Callable[[str], None] | None = None
    ) -> list[WorkloadComparison]:
        comparisons = []
        for index, profile in enumerate(self._workloads):
            comparison = compare_schemes(
                profile,
                baseline=self._baseline,
                alternatives=self._alternatives,
                settings=replace(self._settings, seed=self._settings.seed + index),
                engine=self._engine,
                kernel=self._kernel,
            )
            comparisons.append(comparison)
            if progress is not None:
                progress(profile.name)
        return comparisons


def sweep(
    parameter_values: Sequence[object],
    build_settings: Callable[[object], ExperimentSettings] | str,
    workload: SPECWorkloadProfile | str,
    baseline: ProtectionScheme | str = ProtectionScheme.CONVENTIONAL,
    alternatives: Sequence[ProtectionScheme | str] = (ProtectionScheme.REAP,),
    jobs: int = 1,
    store=None,
    engine: str = "auto",
    kernel: str = "auto",
    settings: ExperimentSettings | None = None,
) -> list[tuple[object, WorkloadComparison]]:
    """Sweep one parameter and compare schemes at each point.

    Each point becomes one :class:`repro.campaign.JobSpec`, so sweeps share
    the campaign machinery: optional process fan-out and result-store
    caching, with results returned in sweep order either way.  Campaign
    jobs are identified by workload *name*; an unregistered (custom)
    profile object sweeps in-process without caching or fan-out.

    Args:
        parameter_values: The values to sweep.
        build_settings: Maps a parameter value to the experiment settings to
            use at that point.  Instead of a callable, a (possibly dotted)
            settings path — ``"p_cell"``, ``"l2_config.associativity"``,
            ``"l2_config.ecc.kind"`` — applies each value to ``settings``
            at that path (validated with a clear error naming any unknown
            path segment).
        workload: The workload evaluated at every point.
        baseline: Baseline scheme.
        alternatives: Alternative schemes.
        jobs: Worker processes to fan the points out over (default serial).
        store: Optional :class:`repro.campaign.ResultStore` (or path) used
            to cache and resume the sweep.
        engine: Simulation engine used at every point (default ``"auto"``;
            results are numerically identical across engines).
        kernel: Fast-path kernel tier used at every point (default
            ``"auto"``; kernels are bit-identical).
        settings: Base settings the dotted-path form starts from (defaults
            to :class:`ExperimentSettings`); ignored when
            ``build_settings`` is a callable.

    Returns:
        ``[(value, comparison), ...]`` in the order of ``parameter_values``.
    """
    from ..campaign import JobSpec, run_campaign

    if isinstance(build_settings, str):
        from ..campaign.spec import apply_sweep_point, validate_sweep_path

        path = build_settings
        base_settings = settings or ExperimentSettings()
        validate_sweep_path(base_settings, path)
        build_settings = lambda value: apply_sweep_point(  # noqa: E731
            base_settings, ((path, value),)
        )
    if not parameter_values:
        return []
    profile = get_profile(workload) if isinstance(workload, str) else workload
    if not _is_registered(profile):
        from .engine import deduplicate_fallback_warnings

        with deduplicate_fallback_warnings():
            return [
                (
                    value,
                    compare_schemes(
                        profile,
                        baseline=baseline,
                        alternatives=alternatives,
                        settings=build_settings(value),
                        engine=engine,
                        kernel=kernel,
                    ),
                )
                for value in parameter_values
            ]
    job_specs = []
    for index, value in enumerate(parameter_values):
        point_value = value if isinstance(value, (bool, int, float, str)) else str(value)
        job_specs.append(
            JobSpec(
                workload=profile.name,
                settings=build_settings(value),
                baseline=baseline,
                alternatives=tuple(alternatives),
                point=(("sweep_index", index), ("value", point_value)),
            )
        )
    result = run_campaign(job_specs, store=store, jobs=jobs, engine=engine, kernel=kernel)
    return [
        (value, outcome.comparison)
        for value, outcome in zip(parameter_values, result.outcomes)
    ]
