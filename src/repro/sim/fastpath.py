"""Batched fast-path execution of L2-level and CPU-level traces.

:func:`run_l2_trace_fast` replays an L2 trace against a protected cache and
produces the *same* end state as the reference per-record loop in
:mod:`repro.sim.engine` — same :class:`~repro.sim.results.SchemeRunResult`
snapshot, same :class:`~repro.reliability.AccumulationTracker` samples, same
cache/reliability/energy statistics, same per-block and per-set policy state
— while running several times faster.  It gets there in three phases:

1. **Decode** — the whole trace is pre-decoded into NumPy arrays (access
   kind, set index, tag) with one vectorised
   :meth:`repro.cache.AddressMapper.decompose_batch` call, and consecutive
   accesses to the same set are grouped so per-set state is bound once per
   run instead of once per record.
2. **Replay** — an allocation-free loop over the grouped records updates
   compact per-set state (plain Python lists, lazily materialised for
   touched sets only) and defers every failure-probability evaluation by
   recording its integer key ``(delivery kind, ones count, window)``.
   Replacement decisions go through the policy's *compact-state protocol*
   (:meth:`~repro.cache.replacement.ReplacementPolicy.compact_on_access` /
   ``compact_on_fill`` / ``compact_victim`` over exported per-set rows) —
   the same transition functions the object path delegates to, so there is
   no second implementation of any policy here.
3. **Resolve** — the recorded keys are reduced to their unique values and
   evaluated with the vectorised binomial-tail math of
   :mod:`repro.reliability.binomial`, then scattered back and folded into
   the reliability statistics in trace order.

:func:`run_cpu_trace_fast` extends the same treatment to the full two-level
hierarchy: the CPU stream is pre-decoded once, filtered through compact
L1I/L1D models (the same :class:`~repro.cache.SetAssociativeCache` state and
replacement transitions, minus the reliability machinery the SRAM L1s do
not have), and the realised L2 read/write-back stream is handed to the L2
replay above.  The returned :class:`~repro.cache.CacheHierarchy` carries the
same L1 contents and statistics as the reference loop.

Numerical equivalence is by construction, not by tolerance: every floating
point accumulator (energy components, expected failures) receives the same
addends in the same order as the reference loop, and the vectorised
binomial functions are element-for-element identical to the scalar ones the
:class:`~repro.core.engine.ReliabilityEngine` memoises.  The differential
harness in ``tests/sim/test_engine_equivalence.py`` asserts this field by
field for every scheme x replacement policy x trace level.

The fast path supports every protection scheme (conventional, REAP, serial,
restore, and the patrol-scrubbing baseline, whose deterministic line cursor
is advanced inside the grouped loop) over every built-in replacement policy.
:func:`supports_fast_path` reports whether a cache qualifies — the remaining
exclusions are custom :class:`~repro.core.ProtectedCache` subclasses and
replacement policies that override the object hooks instead of the
compact-state transitions; :func:`repro.sim.run_l2_trace` with
``engine="auto"`` falls back to the reference loop (with a one-line warning)
when they appear.

One deliberate behavioural difference: the reference loop validates records
as it consumes them, so a malformed trace leaves the cache partially
mutated; the fast path validates the whole trace during decode and raises
*before* touching any state.
"""

from __future__ import annotations

import numpy as np

from ..cache import CacheHierarchy
from ..cache.cache import SetAssociativeCache
from ..cache.replacement import ReplacementPolicy
from ..config import SimulationConfig
from ..core.conventional import ConventionalCache
from ..core.protected import ProtectedCache
from ..core.reap import REAPCache
from ..core.restore import RestoreCache
from ..core.scrubbing import ScrubbingCache
from ..core.serial import SerialAccessCache
from ..errors import SimulationError
from ..reliability.binomial import (
    accumulated_failure_probabilities,
    block_failure_probabilities,
    reap_failure_probabilities,
)
from ..telemetry import emit_event, span
from ..workloads.trace import KIND_ORDER, Trace
from .results import SchemeRunResult

#: Delivery-kind codes used by the deferred probability records.
_CONVENTIONAL, _REAP, _SERIAL, _WRITEBACK = 0, 1, 2, 3

#: Scheme classes the fast path replays (exact types: a subclass may change
#: behaviour the batched loop does not know about).
_SCHEME_MODES = {
    ConventionalCache: _CONVENTIONAL,
    REAPCache: _REAP,
    SerialAccessCache: _SERIAL,
    RestoreCache: _CONVENTIONAL,  # restore delivers through the Eq. (3) path
    ScrubbingCache: _CONVENTIONAL,  # scrubbing adds a patrol pass per access
}

#: Replacement-policy object hooks that must route through the compact-state
#: transitions for the fast path to be equivalent by construction.
_POLICY_HOOKS = ("on_access", "on_fill", "victim")

#: Kernel tiers of the fast path: the grouped per-record ``"loop"`` kernel,
#: the two-pass ``"soa"`` (structure-of-arrays) kernel in
#: :mod:`repro.sim.soa`, or ``"auto"`` (the SoA kernel — both are
#: bit-identical, so the choice only affects throughput).
KERNEL_CHOICES = ("loop", "soa", "auto")


def _check_kernel(kernel: str) -> None:
    if kernel not in KERNEL_CHOICES:
        raise SimulationError(
            f"unknown kernel {kernel!r}; choose one of {KERNEL_CHOICES}"
        )


def _policy_reason(policy) -> str:
    """Why a replacement policy is not fast-path capable ('' if it is)."""
    if not isinstance(policy, ReplacementPolicy):
        return f"replacement policy {type(policy).__name__}"
    if policy.supports_compact_state:
        # Third-party opt-in: the policy promises its object-hook overrides
        # still route every state change through the compact transitions.
        return ""
    for hook in _POLICY_HOOKS:
        if getattr(type(policy), hook) is not getattr(ReplacementPolicy, hook):
            return (
                f"replacement policy {type(policy).__name__} (overrides "
                f"{hook}() instead of the compact-state transitions)"
            )
    return ""


def supports_fast_path(cache: ProtectedCache) -> tuple[bool, str]:
    """Whether the batched engine can replay traces for ``cache``.

    Returns:
        ``(supported, reason)``; ``reason`` is empty when supported and
        names the unsupported feature otherwise.
    """
    if type(cache) not in _SCHEME_MODES:
        return False, f"scheme {cache.scheme_name()!r} ({type(cache).__name__})"
    reason = _policy_reason(cache.cache.replacement)
    if reason:
        return False, reason
    return True, ""


def run_l2_trace_fast(
    cache: ProtectedCache,
    trace: Trace,
    config: SimulationConfig | None = None,
    add_leakage: bool = True,
    kernel: str = "auto",
) -> SchemeRunResult:
    """Batched equivalent of the reference :func:`repro.sim.run_l2_trace`.

    Args:
        cache: The protected cache to drive (mutated in place, exactly as
            the reference loop would mutate it).
        trace: L2-level trace (``L2_READ`` / ``L2_WRITE`` records).
        config: Simulation configuration for the time base.
        add_leakage: Whether to add leakage energy for the simulated time.
        kernel: Fast-path kernel tier: the grouped per-record ``"loop"``,
            the structure-of-arrays ``"soa"``, or ``"auto"`` (SoA).  The
            kernels are bit-identical; only throughput differs.

    Returns:
        A :class:`SchemeRunResult` snapshot taken after the whole trace ran.

    Raises:
        SimulationError: if the cache is not fast-path capable or the trace
            contains CPU-level records (checked before any state mutation).
    """
    from .engine import _snapshot, simulated_time_for

    _check_kernel(kernel)
    supported, reason = supports_fast_path(cache)
    if not supported:
        raise SimulationError(f"fast path does not support {reason}")
    config = config or SimulationConfig()
    scheme = cache.scheme_name()
    with span("kernel.decode", scheme=scheme, path="l2", accesses=len(trace)):
        codes, set_indices, tags = _decode(cache, trace)
    if kernel == "loop":
        emit_event(
            "sim.engine", engine="fast", kernel="loop", path="l2", scheme=scheme
        )
        with span("kernel.replay", scheme=scheme, path="l2", accesses=len(trace)):
            _replay(cache, codes, set_indices, tags)
    else:
        from .soa import replay_l2_soa

        emit_event(
            "sim.engine", engine="fast", kernel="soa", path="l2", scheme=scheme
        )
        replay_l2_soa(cache, codes, set_indices, tags, _SCHEME_MODES[type(cache)])
    simulated_time = simulated_time_for(len(trace), config)
    if add_leakage:
        cache.add_leakage(simulated_time)
    return _snapshot(cache, trace.name, len(trace), simulated_time)


def _export_l1_state(hierarchy: CacheHierarchy) -> dict:
    """Snapshot everything the L1 filter mutated, for the artifact cache.

    Captures, per L1 side, the materialised sets' full block state, the
    replacement policy's per-set rows and global state, the cache tick and
    statistics counters, plus the hierarchy-level reference counts — the
    complete observable end state of :func:`filter_through_l1_soa` on a
    fresh hierarchy.
    """
    state: dict = {}
    for side in ("l1i", "l1d"):
        cache = getattr(hierarchy, side)
        policy = cache.replacement
        sets: dict[int, list] = {}
        rows: dict[int, list] = {}
        for set_index in range(cache.num_sets):
            cache_set = cache.peek_set(set_index)
            if cache_set is None:
                continue
            sets[set_index] = [dict(vars(block)) for block in cache_set.blocks]
            rows[set_index] = policy.export_set_state(set_index)
        state[side] = {
            "sets": sets,
            "rows": rows,
            "globals": policy.export_global_state(),
            "tick": cache._tick,  # noqa: SLF001 - engine-internal state sync
            "stats": dict(vars(cache.stats)),
        }
    state["hierarchy"] = dict(vars(hierarchy.stats))
    return state


def _apply_l1_state(hierarchy: CacheHierarchy, state: dict) -> None:
    """Restore an :func:`_export_l1_state` snapshot into a fresh hierarchy."""
    for side in ("l1i", "l1d"):
        cache = getattr(hierarchy, side)
        policy = cache.replacement
        saved = state[side]
        for set_index, blocks_saved in saved["sets"].items():
            blocks = cache.cache_set(set_index).blocks
            for block, fields in zip(blocks, blocks_saved):
                block.__dict__.update(fields)
        for set_index, row in saved["rows"].items():
            policy.import_set_state(set_index, row)
        policy.import_global_state(saved["globals"])
        cache._tick = saved["tick"]  # noqa: SLF001 - engine-internal state sync
        for name, value in saved["stats"].items():
            setattr(cache.stats, name, value)
    for name, value in state["hierarchy"].items():
        setattr(hierarchy.stats, name, value)


def run_cpu_trace_fast(
    l2_cache: ProtectedCache,
    trace: Trace,
    config: SimulationConfig | None = None,
    seed: int = 1,
    add_leakage: bool = True,
    kernel: str = "auto",
    artifact_cache=None,
) -> tuple[SchemeRunResult, CacheHierarchy]:
    """Batched equivalent of the reference :func:`repro.sim.run_cpu_trace`.

    The CPU stream is pre-decoded once, filtered through compact L1I/L1D
    replays (run-length encoded under the SoA kernel, per record under the
    loop kernel), and the realised L2 read/write-back stream is replayed
    with the same engine :func:`run_l2_trace_fast` uses.  The returned
    hierarchy holds L1 caches whose contents, statistics and replacement
    state match the reference loop's field for field.

    Args:
        l2_cache: The protected L2 placed under the L1s (mutated in place).
        trace: CPU-level trace (``IFETCH`` / ``LOAD`` / ``STORE`` records).
        config: Simulation configuration (hierarchy geometry and time base).
        seed: Seed for the L1 replacement policies.
        add_leakage: Whether to add L2 leakage energy for the simulated time.
        kernel: Fast-path kernel tier (``"loop"``, ``"soa"`` or ``"auto"``);
            bit-identical results either way.
        artifact_cache: Optional :class:`~repro.workloads.ArtifactCache`
            (or directory spec) serving pre-filtered L2 streams keyed by
            trace content and L1 geometry; purely operational — results
            are bit-identical with the cache cold, warm or disabled.

    Returns:
        A (result, hierarchy) pair, as from :func:`repro.sim.run_cpu_trace`.

    Raises:
        SimulationError: if the L2 is not fast-path capable or the trace
            contains L2-level records (checked before any state mutation).
    """
    from .engine import _snapshot

    _check_kernel(kernel)
    supported, reason = supports_fast_path(l2_cache)
    if not supported:
        raise SimulationError(f"fast path does not support {reason}")
    config = config or SimulationConfig()
    hierarchy = CacheHierarchy(config.hierarchy, l2_cache, seed=seed)
    scheme = l2_cache.scheme_name()
    resolved = "loop" if kernel == "loop" else "soa"
    emit_event(
        "sim.engine", engine="fast", kernel=resolved, path="cpu", scheme=scheme
    )

    stream_cache = stream_key = cached_stream = None
    if kernel != "loop" and isinstance(trace, Trace):
        from ..workloads.artifacts import ArtifactCache

        stream_cache = ArtifactCache.resolve(artifact_cache)
        if stream_cache is not None:
            stream_key = stream_cache.l1_stream_key(
                trace.content_hash(), config.hierarchy, seed
            )
            cached_stream = stream_cache.load_l1_stream(stream_key)

    if kernel == "loop":
        with span(
            "kernel.l1_filter", scheme=scheme, kernel="loop", accesses=len(trace)
        ):
            l2_codes, l2_addresses = _filter_through_l1(hierarchy, trace)
    elif cached_stream is not None:
        l2_codes, l2_addresses, l1_state = cached_stream
        _apply_l1_state(hierarchy, l1_state)
    else:
        from .soa import filter_through_l1_soa

        with span("kernel.decode", scheme=scheme, path="cpu", accesses=len(trace)):
            cpu_codes, cpu_addresses = _decode_cpu(trace)
        with span(
            "kernel.l1_filter", scheme=scheme, kernel="soa", accesses=len(trace)
        ):
            l2_codes, l2_addresses = filter_through_l1_soa(
                hierarchy, cpu_codes, cpu_addresses
            )
        if stream_cache is not None:
            stream_cache.store_l1_stream(
                stream_key,
                trace.name,
                np.asarray(l2_codes, dtype=np.int8),
                np.asarray(l2_addresses, dtype=np.int64),
                _export_l1_state(hierarchy),
            )

    l2_count = len(l2_codes)
    with span("kernel.decode", scheme=scheme, path="l2", accesses=l2_count):
        codes = np.asarray(l2_codes, dtype=np.int8)
        addresses = np.asarray(l2_addresses, dtype=np.int64)
        batch = l2_cache.cache.mapper.decompose_batch(addresses)
    if kernel == "loop":
        with span("kernel.replay", scheme=scheme, path="cpu", accesses=l2_count):
            _replay(l2_cache, codes, batch.indices, batch.tags)
    else:
        from .soa import replay_l2_soa

        replay_l2_soa(
            l2_cache, codes, batch.indices, batch.tags, _SCHEME_MODES[type(l2_cache)]
        )

    # Time base: one CPU reference per cycle, as in the reference loop.
    simulated_time = len(trace) * config.cycle_time_s
    if add_leakage:
        l2_cache.add_leakage(simulated_time)
    l2_accesses = hierarchy.stats.l2_reads + hierarchy.stats.l2_writebacks
    result = _snapshot(l2_cache, trace.name, l2_accesses, simulated_time)
    return result, hierarchy


#: Remaps :data:`repro.workloads.trace.KIND_ORDER` indices (IFETCH, LOAD,
#: STORE, L2_READ, L2_WRITE) to the engines' level-specific codes.
_L2_KIND_MAP = np.array([2, 2, 2, 0, 1], dtype=np.int8)
_CPU_KIND_MAP = np.array([0, 1, 2, 3, 3], dtype=np.int8)


def _decode_arrays(
    cache: ProtectedCache, kinds: np.ndarray, addresses: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode (KIND_ORDER kinds, addresses) into (kind code, set, tag) arrays."""
    codes = _L2_KIND_MAP[kinds]
    bad = np.flatnonzero(codes == 2)
    if bad.size:
        raise SimulationError(
            f"run_l2_trace expects L2-level records, got "
            f"{KIND_ORDER[int(kinds[bad[0]])]}"
        )
    batch = cache.cache.mapper.decompose_batch(addresses)
    return codes, batch.indices, batch.tags


def _decode(
    cache: ProtectedCache, trace: Trace
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pre-decode a trace into (kind code, set index, tag) arrays."""
    kinds, addresses = trace.decoded()
    return _decode_arrays(cache, kinds, addresses)


def replay_l2_segments(
    cache: ProtectedCache,
    segments,
    kernel: str = "auto",
) -> int:
    """Replay decoded ``(kinds, addresses)`` segments against a protected cache.

    The out-of-core counterpart of the whole-trace kernels: each segment is
    decoded and replayed in turn, and because both kernels seed every
    accumulator from live cache state on entry and fold everything back on
    exit — block fields and ticks through the compact per-set protocol,
    policy state through ``export_set_state``/``import_set_state``, energy
    partial sums from ``cache.energy``, reliability statistics through
    sequential batch accumulation, tracker samples by append, patrol-scrub
    credit and cursor through the scrub-state export — the end state after N
    segments is bit-identical to one whole-trace replay.  Peak memory is
    bounded by the largest segment.

    Each segment runs inside a ``kernel.segment`` telemetry span carrying
    the segment ordinal and access count.

    Args:
        cache: The protected cache to drive (mutated in place).
        segments: Iterable of ``(kinds, addresses)`` NumPy column pairs in
            the :data:`~repro.workloads.trace.KIND_ORDER` encoding, e.g.
            from :meth:`repro.workloads.streams.TraceSource.segments`.
        kernel: Fast-path kernel tier (``"loop"``, ``"soa"`` or ``"auto"``).

    Returns:
        The total number of accesses replayed.

    Raises:
        SimulationError: if the cache is not fast-path capable or a segment
            contains CPU-level records.  Unlike the whole-trace fast path,
            validation is necessarily per segment: earlier segments have
            already mutated the cache when a later segment fails.
    """
    _check_kernel(kernel)
    supported, reason = supports_fast_path(cache)
    if not supported:
        raise SimulationError(f"fast path does not support {reason}")
    scheme = cache.scheme_name()
    resolved = "loop" if kernel == "loop" else "soa"
    emit_event(
        "sim.engine",
        engine="fast",
        kernel=resolved,
        path="l2",
        scheme=scheme,
        streaming=True,
    )
    if resolved == "soa":
        from .soa import replay_l2_soa

        mode = _SCHEME_MODES[type(cache)]
    total = 0
    for segment_index, (kinds, addresses) in enumerate(segments):
        accesses = len(kinds)
        with span(
            "kernel.segment",
            scheme=scheme,
            path="l2",
            segment=segment_index,
            accesses=accesses,
        ):
            codes, set_indices, tags = _decode_arrays(cache, kinds, addresses)
            if resolved == "loop":
                _replay(cache, codes, set_indices, tags)
            else:
                replay_l2_soa(cache, codes, set_indices, tags, mode)
        total += accesses
    return total


def _decode_cpu(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """Pre-decode a CPU-level trace into (kind code, address) arrays."""
    kinds, addresses = trace.decoded()
    codes = _CPU_KIND_MAP[kinds]
    bad = np.flatnonzero(codes == 3)
    if bad.size:
        raise SimulationError(
            f"run_cpu_trace expects CPU-level records, got "
            f"{trace.records[bad[0]].kind}"
        )
    return codes, addresses


class _L1Replay:
    """Compact-state replay of one functional (SRAM) L1 cache.

    Mirrors :meth:`repro.cache.SetAssociativeCache.access` exactly for the
    hierarchy's usage (``fill_ones_count=0``): same statistics counters,
    same block fields, same replacement transitions — via the policy's
    compact-state protocol, so any built-in policy is supported.
    """

    __slots__ = (
        "cache",
        "assoc",
        "policy",
        "pol_globals",
        "pol_access",
        "pol_fill",
        "pol_victim",
        "states",
        "zeros",
        "tick",
        "demand_reads",
        "demand_writes",
        "read_hits",
        "read_misses",
        "write_hits",
        "write_misses",
        "fills",
        "evictions",
        "dirty_evictions",
        "data_way_writes",
        "accesses",
    )

    def __init__(self, cache: SetAssociativeCache) -> None:
        self.cache = cache
        self.assoc = cache.associativity
        self.policy = cache.replacement
        self.pol_globals = self.policy.compact_globals()
        self.pol_access = self.policy.compact_on_access
        self.pol_fill = self.policy.compact_on_fill
        self.pol_victim = self.policy.compact_victim
        self.states: dict[int, list] = {}
        # The L1s never record reads on their blocks, so the per-way
        # unchecked-read exposure seen by victim selection is always zero.
        self.zeros = [0] * self.assoc
        self.tick = cache._tick  # noqa: SLF001 - engine-internal state sync
        self.demand_reads = self.demand_writes = 0
        self.read_hits = self.read_misses = 0
        self.write_hits = self.write_misses = 0
        self.fills = self.evictions = self.dirty_evictions = 0
        self.data_way_writes = 0
        self.accesses = 0

    def _materialise(self, set_index: int) -> list:
        blocks = self.cache.cache_set(set_index).blocks
        tag_map = {}
        for way, block in enumerate(blocks):
            if block.valid:
                tag_map[block.tag] = way
        state = [
            [b.tag for b in blocks],
            [b.valid for b in blocks],
            [b.dirty for b in blocks],
            [b.fills for b in blocks],
            [b.last_access_tick for b in blocks],
            tag_map,
            self.policy.export_set_state(set_index),
        ]
        self.states[set_index] = state
        return state

    def access(self, set_index: int, tag: int, is_write: bool) -> int | None:
        """One demand access; ``None`` on a hit, else the dirty-victim tag
        (or ``-1`` when the miss evicted nothing dirty)."""
        state = self.states.get(set_index)
        if state is None:
            state = self._materialise(set_index)
        blk_tag, blk_valid, blk_dirty, blk_fills, blk_tick, tag_map, pstate = state
        self.tick += 1
        tick = self.tick
        self.accesses += 1
        if is_write:
            self.demand_writes += 1
        else:
            self.demand_reads += 1
        hit_way = tag_map.get(tag)
        if hit_way is not None:
            if is_write:
                self.write_hits += 1
                blk_dirty[hit_way] = True
                blk_tick[hit_way] = tick
                self.data_way_writes += 1
            else:
                self.read_hits += 1
            self.pol_access(self.pol_globals, pstate, hit_way)
            return None

        if is_write:
            self.write_misses += 1
        else:
            self.read_misses += 1
        victim = -1
        for way in range(self.assoc):
            if not blk_valid[way]:
                victim = way
                break
        evicted_dirty_tag = -1
        if victim < 0:
            victim = self.pol_victim(self.pol_globals, pstate, self.zeros)
            self.evictions += 1
            if blk_dirty[victim]:
                self.dirty_evictions += 1
                evicted_dirty_tag = blk_tag[victim]
            del tag_map[blk_tag[victim]]
        else:
            blk_valid[victim] = True

        blk_tag[victim] = tag
        blk_fills[victim] += 1
        blk_tick[victim] = tick
        tag_map[tag] = victim
        self.fills += 1
        self.data_way_writes += 1
        # Write-allocate: the incoming store dirties the freshly filled line.
        blk_dirty[victim] = is_write
        self.pol_fill(self.pol_globals, pstate, victim)
        return evicted_dirty_tag

    def finalize(self) -> None:
        """Fold counters and state back into the substrate cache."""
        stats = self.cache.stats
        stats.demand_reads += self.demand_reads
        stats.demand_writes += self.demand_writes
        stats.read_hits += self.read_hits
        stats.read_misses += self.read_misses
        stats.write_hits += self.write_hits
        stats.write_misses += self.write_misses
        stats.fills += self.fills
        stats.evictions += self.evictions
        stats.dirty_evictions += self.dirty_evictions
        stats.data_way_writes += self.data_way_writes
        stats.tag_comparisons += self.accesses * self.assoc
        for set_index, state in self.states.items():
            blocks = self.cache.cache_set(set_index).blocks
            for way, block in enumerate(blocks):
                block.tag = state[0][way]
                block.valid = state[1][way]
                block.dirty = state[2][way]
                block.fills = state[3][way]
                block.last_access_tick = state[4][way]
            self.policy.import_set_state(set_index, state[6])
        self.cache._tick = self.tick  # noqa: SLF001 - engine-internal state sync


def _filter_through_l1(
    hierarchy: CacheHierarchy, trace: Trace
) -> tuple[list[int], list[int]]:
    """Run the CPU stream through compact L1 models; return the L2 stream.

    Returns:
        ``(l2_codes, l2_addresses)`` where code 0 is a demand read and 1 a
        write-back, in the exact order the reference hierarchy would issue
        them to the L2.
    """
    codes, addresses = _decode_cpu(trace)
    count = len(codes)
    l1i, l1d = hierarchy.l1i, hierarchy.l1d
    is_ifetch = codes == 0
    i_batch = l1i.mapper.decompose_batch(addresses[is_ifetch])
    d_batch = l1d.mapper.decompose_batch(addresses[~is_ifetch])
    set_indices = np.empty(count, dtype=np.int64)
    tags = np.empty(count, dtype=np.int64)
    set_indices[is_ifetch] = i_batch.indices
    set_indices[~is_ifetch] = d_batch.indices
    tags[is_ifetch] = i_batch.tags
    tags[~is_ifetch] = d_batch.tags

    i_replay = _L1Replay(l1i)
    d_replay = _L1Replay(l1d)
    i_access = i_replay.access
    d_access = d_replay.access
    d_config = l1d.config
    d_offset_bits = d_config.offset_bits
    d_tag_shift = d_offset_bits + d_config.index_bits

    code_list = codes.tolist()
    set_list = set_indices.tolist()
    tag_list = tags.tolist()
    address_list = addresses.tolist()

    instruction_fetches = data_reads = data_writes = 0
    l2_reads = l2_writebacks = 0
    l2_codes: list[int] = []
    l2_addresses: list[int] = []

    for i in range(count):
        code = code_list[i]
        if code == 0:
            instruction_fetches += 1
            if i_access(set_list[i], tag_list[i], False) is not None:
                # L1I victims are never dirty; nothing to write back.
                l2_reads += 1
                l2_codes.append(0)
                l2_addresses.append(address_list[i])
            continue
        if code == 1:
            data_reads += 1
            writeback = d_access(set_list[i], tag_list[i], False)
        else:
            data_writes += 1
            # Fetch-on-write: the block is read from the L2 before the store.
            writeback = d_access(set_list[i], tag_list[i], True)
        if writeback is not None:
            l2_reads += 1
            l2_codes.append(0)
            l2_addresses.append(address_list[i])
            if writeback >= 0:
                l2_writebacks += 1
                l2_codes.append(1)
                l2_addresses.append(
                    (writeback << d_tag_shift) | (set_list[i] << d_offset_bits)
                )

    i_replay.finalize()
    d_replay.finalize()
    stats = hierarchy.stats
    stats.instruction_fetches += instruction_fetches
    stats.data_reads += data_reads
    stats.data_writes += data_writes
    stats.l2_reads += l2_reads
    stats.l2_writebacks += l2_writebacks
    return l2_codes, l2_addresses


def _replay(
    cache: ProtectedCache,
    codes: np.ndarray,
    set_indices: np.ndarray,
    tags: np.ndarray,
) -> None:
    """Drive the cache state through the decoded access stream."""
    count = len(codes)
    if count == 0:
        return

    mode = _SCHEME_MODES[type(cache)]
    restore = type(cache) is RestoreCache
    scrubbing = type(cache) is ScrubbingCache
    substrate = cache.cache
    assoc = substrate.associativity
    policy = substrate.replacement
    engine = cache.engine
    rel_stats = engine.stats
    stats = substrate.stats
    totals = cache.energy
    model = cache.energy_model
    sample = cache.data_profile.sample
    count_writebacks = cache.count_writeback_checks

    # Per-event energies, computed once; the reference accountant recomputes
    # them per event but they are pure functions of the model, so every
    # addend below is bit-identical to the reference sequence.
    tag_e = model.tag_lookup_energy_pj()
    way_e = model.way_read_energy_pj()
    dec_e = model.ecc_decode_energy_pj()
    mux_e = model.mux_energy_pj()
    write_breakdown = model.write_access_energy()
    wtag_e = write_breakdown.tag_pj
    wdata_e = write_breakdown.data_array_pj
    wecc_e = write_breakdown.ecc_pj
    way_write_e = model.way_write_energy_pj()
    enc_e = model.ecc_encode_energy_pj()

    # Energy accumulators, continued from the cache's current totals.
    e_tag = totals.tag_pj
    e_dread = totals.data_read_pj
    e_dwrite = totals.data_write_pj
    e_dec = totals.ecc_decode_pj
    e_enc = totals.ecc_encode_pj
    e_mux = totals.mux_pj

    # Tick counters (scheme-level and substrate-level both advance once per
    # access; they are tracked separately in case the cache was pre-driven).
    scheme_tick = cache._tick  # noqa: SLF001 - engine-internal state sync
    substrate_tick = substrate._tick  # noqa: SLF001 - engine-internal state sync

    # Replacement transitions: the policy's compact-state protocol, bound to
    # locals.  The globals list is the policy's own live store, so no
    # write-back is needed for it; per-set rows are exported on materialise
    # and imported at the end.
    pol_globals = policy.compact_globals()
    pol_access = policy.compact_on_access
    pol_fill = policy.compact_on_fill
    pol_victim = policy.compact_victim

    # Patrol-scrubber state (scrubbing scheme only).
    if scrubbing:
        scrub_rate = cache.scrub_rate
        scrub_credit, scrub_cursor, scrubbed_lines, total_frames = (
            cache.patrol_walk_state()
        )

    # Functional counters, folded into the statistics objects at the end.
    demand_reads = demand_writes = 0
    read_hits = read_misses = write_hits = write_misses = 0
    fills = evictions = dirty_evictions = 0
    data_way_reads = data_way_writes = ecc_decodes = 0
    concealed_events = scrub_events = 0

    # Deferred reliability events: one entry per expected-failure addend, in
    # trace order.  ``conc`` is the tracker's concealed-read sample for
    # deliveries and -1 for write-back checks (which record no sample).
    ef_kind: list[int] = []
    ef_ones: list[int] = []
    ef_pwin: list[int] = []
    ef_cwin: list[int] = []
    ef_conc: list[int] = []
    restore_ones: list[int] = []

    # Lazily materialised per-set state: 13 parallel per-way structures plus
    # the tag->way map, unpacked into locals once per same-set group.
    set_states: dict[int, list] = {}

    def materialise(set_index: int) -> list:
        blocks = substrate.cache_set(set_index).blocks
        tag_map = {}
        nvalid = 0
        for way, block in enumerate(blocks):
            if block.valid:
                tag_map[block.tag] = way
                nvalid += 1
        state = [
            [b.tag for b in blocks],
            [b.valid for b in blocks],
            [b.dirty for b in blocks],
            [b.ones_count for b in blocks],
            [b.unchecked_reads for b in blocks],
            [b.reads_since_demand for b in blocks],
            [b.total_reads for b in blocks],
            [b.total_concealed_reads for b in blocks],
            [b.total_checks for b in blocks],
            [b.fills for b in blocks],
            [b.last_access_tick for b in blocks],
            tag_map,
            policy.export_set_state(set_index),
            nvalid,
        ]
        set_states[set_index] = state
        return state

    # Group consecutive same-set accesses so the per-set state is bound once
    # per run of records rather than once per record.
    boundaries = np.flatnonzero(np.diff(set_indices)) + 1
    group_starts = np.concatenate(([0], boundaries)).tolist()
    group_ends = np.concatenate((boundaries, [count])).tolist()
    group_sets = set_indices[np.concatenate(([0], boundaries))].tolist()

    code_list = codes.tolist()
    tag_list = tags.tolist()
    way_range = range(assoc)

    for set_index, start, end in zip(group_sets, group_starts, group_ends):
        state = set_states.get(set_index)
        if state is None:
            state = materialise(set_index)
        (
            blk_tag,
            blk_valid,
            blk_dirty,
            blk_ones,
            blk_unchecked,
            blk_rsd,
            blk_reads,
            blk_concealed,
            blk_checks,
            blk_fills,
            blk_tick,
            tag_map,
            pol_state,
            nvalid,
        ) = state

        for i in range(start, end):
            tag = tag_list[i]
            fill_ones = sample()
            scheme_tick += 1
            substrate_tick += 1
            hit_way = tag_map.get(tag)
            miss = True

            if code_list[i] == 0:  # demand read
                # -- read-path reliability events --------------------------------
                if mode == _CONVENTIONAL and not restore:
                    if hit_way is not None:
                        for way in way_range:
                            if blk_valid[way] and way != hit_way:
                                blk_unchecked[way] += 1
                                blk_rsd[way] += 1
                                blk_reads[way] += 1
                                blk_concealed[way] += 1
                        concealed_events += nvalid - 1
                        blk_reads[hit_way] += 1
                        window = blk_unchecked[hit_way] + 1
                        blk_unchecked[hit_way] = 0
                        blk_rsd[hit_way] = 0
                        blk_checks[hit_way] += 1
                        blk_tick[hit_way] = scheme_tick
                        ef_kind.append(_CONVENTIONAL)
                        ef_ones.append(blk_ones[hit_way])
                        ef_pwin.append(window)
                        ef_cwin.append(window)
                        ef_conc.append(window - 1)
                        ways_read, decodes = nvalid, 1
                    else:
                        for way in way_range:
                            if blk_valid[way]:
                                blk_unchecked[way] += 1
                                blk_rsd[way] += 1
                                blk_reads[way] += 1
                                blk_concealed[way] += 1
                        concealed_events += nvalid
                        ways_read, decodes = nvalid, 0
                elif mode == _REAP:
                    for way in way_range:
                        if not blk_valid[way]:
                            continue
                        blk_reads[way] += 1
                        blk_rsd[way] += 1
                        blk_checks[way] += 1
                        blk_tick[way] = scheme_tick
                        if way == hit_way:
                            window = blk_rsd[way]
                            conc = blk_unchecked[way]
                            blk_unchecked[way] = 0
                            blk_rsd[way] = 0
                            ef_kind.append(_REAP)
                            ef_ones.append(blk_ones[way])
                            ef_pwin.append(window)
                            ef_cwin.append(window)
                            ef_conc.append(conc)
                        else:
                            blk_unchecked[way] = 0
                            scrub_events += 1
                    ways_read = decodes = nvalid
                elif mode == _SERIAL:
                    if hit_way is not None:
                        blk_reads[hit_way] += 1
                        window = blk_unchecked[hit_way] + 1
                        blk_unchecked[hit_way] = 0
                        blk_rsd[hit_way] = 0
                        blk_checks[hit_way] += 1
                        blk_tick[hit_way] = scheme_tick
                        ef_kind.append(_SERIAL)
                        ef_ones.append(blk_ones[hit_way])
                        ef_pwin.append(1)
                        ef_cwin.append(window)
                        ef_conc.append(window - 1)
                        ways_read, decodes = 1, 1
                    else:
                        ways_read, decodes = 0, 0
                else:  # restore: every touched way is scrubbed and rewritten
                    for way in way_range:
                        if not blk_valid[way] or way == hit_way:
                            continue
                        blk_reads[way] += 1
                        blk_rsd[way] += 1
                        blk_unchecked[way] = 0
                        blk_checks[way] += 1
                        blk_tick[way] = scheme_tick
                        scrub_events += 1
                        restore_ones.append(blk_ones[way])
                        e_dwrite += way_write_e
                        e_enc += enc_e
                    if hit_way is not None:
                        blk_reads[hit_way] += 1
                        window = blk_unchecked[hit_way] + 1
                        blk_unchecked[hit_way] = 0
                        blk_rsd[hit_way] = 0
                        blk_checks[hit_way] += 1
                        blk_tick[hit_way] = scheme_tick
                        ef_kind.append(_CONVENTIONAL)
                        ef_ones.append(blk_ones[hit_way])
                        ef_pwin.append(window)
                        ef_cwin.append(window)
                        ef_conc.append(window - 1)
                        restore_ones.append(blk_ones[hit_way])
                        e_dwrite += way_write_e
                        e_enc += enc_e
                        ways_read, decodes = nvalid, 1
                    else:
                        ways_read, decodes = nvalid, 0

                # -- read-access energy and event statistics ---------------------
                e_tag += tag_e
                e_dread += ways_read * way_e
                e_dec += decodes * dec_e
                e_mux += mux_e
                data_way_reads += ways_read
                ecc_decodes += decodes

                # -- functional access -------------------------------------------
                demand_reads += 1
                if hit_way is not None:
                    read_hits += 1
                    pol_access(pol_globals, pol_state, hit_way)
                    miss = False
                else:
                    read_misses += 1
            else:  # demand write
                demand_writes += 1
                if hit_way is not None:
                    write_hits += 1
                    blk_dirty[hit_way] = True
                    blk_ones[hit_way] = fill_ones
                    blk_unchecked[hit_way] = 0
                    blk_rsd[hit_way] = 0
                    blk_tick[hit_way] = substrate_tick
                    data_way_writes += 1
                    pol_access(pol_globals, pol_state, hit_way)
                    e_tag += wtag_e
                    e_dwrite += wdata_e
                    e_enc += wecc_e
                    miss = False
                else:
                    write_misses += 1

            if miss:
                # -- shared miss path: victim selection, fill, eviction ----------
                victim = -1
                for way in way_range:
                    if not blk_valid[way]:
                        victim = way
                        break
                if victim < 0:
                    victim = pol_victim(pol_globals, pol_state, blk_unchecked)
                    evicted_dirty = blk_dirty[victim]
                    evicted_ones = blk_ones[victim]
                    evicted_unchecked = blk_unchecked[victim]
                    evictions += 1
                    if evicted_dirty:
                        dirty_evictions += 1
                    del tag_map[blk_tag[victim]]
                else:
                    evicted_dirty = False
                    blk_valid[victim] = True
                    nvalid += 1

                blk_tag[victim] = tag
                blk_ones[victim] = fill_ones
                blk_unchecked[victim] = 0
                blk_rsd[victim] = 0
                blk_fills[victim] += 1
                blk_tick[victim] = substrate_tick
                tag_map[tag] = victim
                fills += 1
                data_way_writes += 1
                pol_fill(pol_globals, pol_state, victim)

                # Write-allocate: a store dirties the fresh line; a read fill
                # does not.  Either way one write-access energy triple is
                # charged (the fill on a read, the demand store on a write).
                blk_dirty[victim] = code_list[i] != 0
                e_tag += wtag_e
                e_dwrite += wdata_e
                e_enc += wecc_e

                if evicted_dirty:
                    # Write-back read-out of the dirty victim: energy only.
                    e_tag += tag_e
                    e_dread += 1 * way_e
                    e_dec += 1 * dec_e
                    e_mux += mux_e
                    if count_writebacks and evicted_ones > 0:
                        ef_kind.append(_WRITEBACK)
                        ef_ones.append(evicted_ones)
                        ef_pwin.append(evicted_unchecked + 1)
                        ef_cwin.append(evicted_unchecked + 1)
                        ef_conc.append(-1)

            if scrubbing:
                # The patrol scrubber's share of work after each demand
                # access, mirroring ScrubbingCache._advance_scrubber: visit
                # the next resident line (any set) in round-robin frame
                # order.  Scrubs never change validity or replacement state,
                # so the current group's unpacked locals stay coherent even
                # when the scrubbed line is in the active set (the state
                # lists are aliased, not copied).
                scrub_credit += scrub_rate
                while scrub_credit >= 1.0:
                    scrub_credit -= 1.0
                    for _ in range(total_frames):
                        frame = scrub_cursor
                        scrub_cursor = (scrub_cursor + 1) % total_frames
                        s_set, s_way = divmod(frame, assoc)
                        target = set_states.get(s_set)
                        if target is not None:
                            s_valid = target[1][s_way]
                        else:
                            s_valid = substrate.cache_set(s_set).blocks[s_way].valid
                        if not s_valid:
                            continue
                        if target is None:
                            target = materialise(s_set)
                        # on_scrub_read: a checked, non-demand read.
                        target[4][s_way] = 0  # unchecked_reads
                        target[5][s_way] += 1  # reads_since_demand
                        target[6][s_way] += 1  # total_reads
                        target[8][s_way] += 1  # total_checks
                        target[10][s_way] = scheme_tick
                        scrub_events += 1
                        e_tag += tag_e
                        e_dread += 1 * way_e
                        e_dec += 1 * dec_e
                        e_mux += mux_e
                        scrubbed_lines += 1
                        break

        state[13] = nvalid

    # -- resolve deferred probabilities and fold everything back --------------
    probabilities = _resolve_probabilities(engine, ef_kind, ef_ones, ef_pwin)
    rel_stats.record_check_batch(ef_cwin, probabilities)
    rel_stats.record_concealed(concealed_events)
    rel_stats.scrub_events += scrub_events
    tracker = engine.tracker
    if tracker is not None and ef_conc:
        tracker.record_batch(
            [conc for conc in ef_conc if conc >= 0],
            [ones for ones, conc in zip(ef_ones, ef_conc) if conc >= 0],
        )
    if restore and restore_ones:
        failure_by_ones: dict[int, float] = {}
        write_model = cache.write_error_model
        for ones in set(restore_ones):
            failure_by_ones[ones] = write_model.block_write_failure_probability(ones)
        cache.record_restore_batch([failure_by_ones[ones] for ones in restore_ones])
    if scrubbing:
        cache.import_scrub_state(scrub_credit, scrub_cursor, scrubbed_lines)

    stats.demand_reads += demand_reads
    stats.demand_writes += demand_writes
    stats.read_hits += read_hits
    stats.read_misses += read_misses
    stats.write_hits += write_hits
    stats.write_misses += write_misses
    stats.fills += fills
    stats.evictions += evictions
    stats.dirty_evictions += dirty_evictions
    stats.data_way_reads += data_way_reads
    stats.data_way_writes += data_way_writes
    stats.ecc_decodes += ecc_decodes
    stats.tag_comparisons += count * assoc

    totals.tag_pj = e_tag
    totals.data_read_pj = e_dread
    totals.data_write_pj = e_dwrite
    totals.ecc_decode_pj = e_dec
    totals.ecc_encode_pj = e_enc
    totals.mux_pj = e_mux

    for set_index, state in set_states.items():
        blocks = substrate.cache_set(set_index).blocks
        for way, block in enumerate(blocks):
            block.tag = state[0][way]
            block.valid = state[1][way]
            block.dirty = state[2][way]
            block.ones_count = state[3][way]
            block.unchecked_reads = state[4][way]
            block.reads_since_demand = state[5][way]
            block.total_reads = state[6][way]
            block.total_concealed_reads = state[7][way]
            block.total_checks = state[8][way]
            block.fills = state[9][way]
            block.last_access_tick = state[10][way]
        policy.import_set_state(set_index, state[12])

    cache._tick = scheme_tick  # noqa: SLF001 - engine-internal state sync
    substrate._tick = substrate_tick  # noqa: SLF001 - engine-internal state sync


def _resolve_probabilities(
    engine, ef_kind: list[int], ef_ones: list[int], ef_pwin: list[int]
) -> list[float]:
    """Evaluate the deferred failure probabilities, in trace order.

    The unique ``(kind, ones, window)`` keys are evaluated once each with
    the vectorised binomial math (falling back to the engine's memoised
    scalar lookups for interleaved multi-lane codes, whose REAP expression
    differs) and scattered back over the per-event records.
    """
    if not ef_kind:
        return []
    keys = np.array([ef_kind, ef_ones, ef_pwin], dtype=np.int64).T
    unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)  # numpy >= 2.1 keeps the axis shape
    kinds = unique_keys[:, 0]
    ones = unique_keys[:, 1]
    windows = unique_keys[:, 2]
    p_cell = engine.p_cell
    correctable = engine.correctable_errors
    lanes = engine.interleaving_lanes
    unique_probs = np.zeros(len(unique_keys), dtype=float)

    nonzero = ones > 0
    if lanes > 1:
        lane_ones = np.maximum(1, np.round(ones / lanes)).astype(np.int64)
    else:
        lane_ones = ones

    for kind_code in (_CONVENTIONAL, _SERIAL, _WRITEBACK):
        mask = (kinds == kind_code) & nonzero
        if not mask.any():
            continue
        if kind_code == _WRITEBACK:
            # Write-back checks use the raw Eq. (3) tail, with no lane
            # adjustment (mirroring ProtectedCache._handle_eviction).
            unique_probs[mask] = accumulated_failure_probabilities(
                p_cell, ones[mask], windows[mask], correctable
            )
        else:
            if kind_code == _CONVENTIONAL:
                per_lane = accumulated_failure_probabilities(
                    p_cell, lane_ones[mask], windows[mask], correctable
                )
            else:
                per_lane = block_failure_probabilities(
                    p_cell, lane_ones[mask], correctable
                )
            unique_probs[mask] = (
                np.minimum(1.0, lanes * per_lane) if lanes > 1 else per_lane
            )

    reap_mask = (kinds == _REAP) & nonzero
    if reap_mask.any():
        if lanes == 1:
            unique_probs[reap_mask] = reap_failure_probabilities(
                p_cell, ones[reap_mask], windows[reap_mask], correctable
            )
        else:
            # The multi-lane REAP expression goes through the engine's
            # memoised per-key scalar path; unique keys keep this cheap.
            indices = np.flatnonzero(reap_mask)
            for index in indices:
                unique_probs[index] = engine.reap_probability(
                    int(ones[index]), int(windows[index])
                )

    return unique_probs[inverse].tolist()
