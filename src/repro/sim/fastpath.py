"""Batched fast-path execution of L2-level traces.

:func:`run_l2_trace_fast` replays an L2 trace against a protected cache and
produces the *same* end state as the reference per-record loop in
:mod:`repro.sim.engine` — same :class:`~repro.sim.results.SchemeRunResult`
snapshot, same :class:`~repro.reliability.AccumulationTracker` samples, same
cache/reliability/energy statistics, same per-block state — while running
several times faster.  It gets there in three phases:

1. **Decode** — the whole trace is pre-decoded into NumPy arrays (access
   kind, set index, tag) with one vectorised
   :meth:`repro.cache.AddressMapper.decompose_batch` call, and consecutive
   accesses to the same set are grouped so per-set state is bound once per
   run instead of once per record.
2. **Replay** — an allocation-free loop over the grouped records updates
   compact per-set state (plain Python lists, lazily materialised for
   touched sets only) and defers every failure-probability evaluation by
   recording its integer key ``(delivery kind, ones count, window)``.
3. **Resolve** — the recorded keys are reduced to their unique values and
   evaluated with the vectorised binomial-tail math of
   :mod:`repro.reliability.binomial`, then scattered back and folded into
   the reliability statistics in trace order.

Numerical equivalence is by construction, not by tolerance: every floating
point accumulator (energy components, expected failures) receives the same
addends in the same order as the reference loop, and the vectorised
binomial functions are element-for-element identical to the scalar ones the
:class:`~repro.core.engine.ReliabilityEngine` memoises.  The differential
harness in ``tests/sim/test_engine_equivalence.py`` asserts this field by
field for every scheme.

The fast path intentionally supports the configurations the paper's
evaluation uses — the conventional, REAP, serial and restore schemes over
an LRU-replaced cache.  :func:`supports_fast_path` reports whether a cache
qualifies; :func:`repro.sim.run_l2_trace` with ``engine="auto"`` falls back
to the reference loop when it does not.

One deliberate behavioural difference: the reference loop validates records
as it consumes them, so a malformed trace leaves the cache partially
mutated; the fast path validates the whole trace during decode and raises
*before* touching any state.
"""

from __future__ import annotations

import numpy as np

from ..cache.replacement import LRUPolicy
from ..config import SimulationConfig
from ..core.conventional import ConventionalCache
from ..core.protected import ProtectedCache
from ..core.reap import REAPCache
from ..core.restore import RestoreCache
from ..core.serial import SerialAccessCache
from ..errors import SimulationError
from ..reliability.binomial import (
    accumulated_failure_probabilities,
    block_failure_probabilities,
    reap_failure_probabilities,
)
from ..workloads.trace import AccessKind, Trace
from .results import SchemeRunResult

#: Delivery-kind codes used by the deferred probability records.
_CONVENTIONAL, _REAP, _SERIAL, _WRITEBACK = 0, 1, 2, 3

#: Scheme classes the fast path replays (exact types: a subclass may change
#: behaviour the batched loop does not know about).
_SCHEME_MODES = {
    ConventionalCache: _CONVENTIONAL,
    REAPCache: _REAP,
    SerialAccessCache: _SERIAL,
    RestoreCache: _CONVENTIONAL,  # restore delivers through the Eq. (3) path
}


def supports_fast_path(cache: ProtectedCache) -> tuple[bool, str]:
    """Whether the batched engine can replay traces for ``cache``.

    Returns:
        ``(supported, reason)``; ``reason`` is empty when supported and
        names the unsupported feature otherwise.
    """
    if type(cache) not in _SCHEME_MODES:
        return False, f"scheme {cache.scheme_name()!r} ({type(cache).__name__})"
    if type(cache.cache.replacement) is not LRUPolicy:
        return False, f"replacement policy {type(cache.cache.replacement).__name__}"
    return True, ""


def run_l2_trace_fast(
    cache: ProtectedCache,
    trace: Trace,
    config: SimulationConfig | None = None,
    add_leakage: bool = True,
) -> SchemeRunResult:
    """Batched equivalent of the reference :func:`repro.sim.run_l2_trace`.

    Args:
        cache: The protected cache to drive (mutated in place, exactly as
            the reference loop would mutate it).
        trace: L2-level trace (``L2_READ`` / ``L2_WRITE`` records).
        config: Simulation configuration for the time base.
        add_leakage: Whether to add leakage energy for the simulated time.

    Returns:
        A :class:`SchemeRunResult` snapshot taken after the whole trace ran.

    Raises:
        SimulationError: if the cache is not fast-path capable or the trace
            contains CPU-level records (checked before any state mutation).
    """
    from .engine import _snapshot, simulated_time_for

    supported, reason = supports_fast_path(cache)
    if not supported:
        raise SimulationError(f"fast path does not support {reason}")
    config = config or SimulationConfig()
    codes, set_indices, tags = _decode(cache, trace)
    _replay(cache, codes, set_indices, tags)
    simulated_time = simulated_time_for(len(trace), config)
    if add_leakage:
        cache.add_leakage(simulated_time)
    return _snapshot(cache, trace.name, len(trace), simulated_time)


def _decode(
    cache: ProtectedCache, trace: Trace
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pre-decode a trace into (kind code, set index, tag) arrays."""
    records = trace.records
    count = len(records)
    kind_codes = {AccessKind.L2_READ: 0, AccessKind.L2_WRITE: 1}
    codes = np.fromiter(
        (kind_codes.get(record.kind, 2) for record in records),
        dtype=np.int8,
        count=count,
    )
    bad = np.flatnonzero(codes == 2)
    if bad.size:
        raise SimulationError(
            f"run_l2_trace expects L2-level records, got {records[bad[0]].kind}"
        )
    addresses = np.fromiter(
        (record.address for record in records), dtype=np.int64, count=count
    )
    batch = cache.cache.mapper.decompose_batch(addresses)
    return codes, batch.indices, batch.tags


def _replay(
    cache: ProtectedCache,
    codes: np.ndarray,
    set_indices: np.ndarray,
    tags: np.ndarray,
) -> None:
    """Drive the cache state through the decoded access stream."""
    count = len(codes)
    if count == 0:
        return

    mode = _SCHEME_MODES[type(cache)]
    restore = type(cache) is RestoreCache
    substrate = cache.cache
    assoc = substrate.associativity
    policy = substrate.replacement
    engine = cache.engine
    rel_stats = engine.stats
    stats = substrate.stats
    totals = cache.energy
    model = cache.energy_model
    sample = cache.data_profile.sample
    count_writebacks = cache.count_writeback_checks

    # Per-event energies, computed once; the reference accountant recomputes
    # them per event but they are pure functions of the model, so every
    # addend below is bit-identical to the reference sequence.
    tag_e = model.tag_lookup_energy_pj()
    way_e = model.way_read_energy_pj()
    dec_e = model.ecc_decode_energy_pj()
    mux_e = model.mux_energy_pj()
    write_breakdown = model.write_access_energy()
    wtag_e = write_breakdown.tag_pj
    wdata_e = write_breakdown.data_array_pj
    wecc_e = write_breakdown.ecc_pj
    way_write_e = model.way_write_energy_pj()
    enc_e = model.ecc_encode_energy_pj()

    # Energy accumulators, continued from the cache's current totals.
    e_tag = totals.tag_pj
    e_dread = totals.data_read_pj
    e_dwrite = totals.data_write_pj
    e_dec = totals.ecc_decode_pj
    e_enc = totals.ecc_encode_pj
    e_mux = totals.mux_pj

    # Tick counters (scheme-level and substrate-level both advance once per
    # access; they are tracked separately in case the cache was pre-driven).
    scheme_tick = cache._tick  # noqa: SLF001 - engine-internal state sync
    substrate_tick = substrate._tick  # noqa: SLF001 - engine-internal state sync
    lru_tick = policy._tick  # noqa: SLF001 - engine-internal state sync
    lru_rows = policy._last_use  # noqa: SLF001 - engine-internal state sync

    # Functional counters, folded into the statistics objects at the end.
    demand_reads = demand_writes = 0
    read_hits = read_misses = write_hits = write_misses = 0
    fills = evictions = dirty_evictions = 0
    data_way_reads = data_way_writes = ecc_decodes = 0
    concealed_events = scrub_events = 0

    # Deferred reliability events: one entry per expected-failure addend, in
    # trace order.  ``conc`` is the tracker's concealed-read sample for
    # deliveries and -1 for write-back checks (which record no sample).
    ef_kind: list[int] = []
    ef_ones: list[int] = []
    ef_pwin: list[int] = []
    ef_cwin: list[int] = []
    ef_conc: list[int] = []
    restore_ones: list[int] = []

    # Lazily materialised per-set state: 13 parallel per-way structures plus
    # the tag->way map, unpacked into locals once per same-set group.
    set_states: dict[int, list] = {}

    def materialise(set_index: int) -> list:
        blocks = substrate.cache_set(set_index).blocks
        tag_map = {}
        nvalid = 0
        for way, block in enumerate(blocks):
            if block.valid:
                tag_map[block.tag] = way
                nvalid += 1
        state = [
            [b.tag for b in blocks],
            [b.valid for b in blocks],
            [b.dirty for b in blocks],
            [b.ones_count for b in blocks],
            [b.unchecked_reads for b in blocks],
            [b.reads_since_demand for b in blocks],
            [b.total_reads for b in blocks],
            [b.total_concealed_reads for b in blocks],
            [b.total_checks for b in blocks],
            [b.fills for b in blocks],
            [b.last_access_tick for b in blocks],
            tag_map,
            lru_rows[set_index].tolist(),
            nvalid,
        ]
        set_states[set_index] = state
        return state

    # Group consecutive same-set accesses so the per-set state is bound once
    # per run of records rather than once per record.
    boundaries = np.flatnonzero(np.diff(set_indices)) + 1
    group_starts = np.concatenate(([0], boundaries)).tolist()
    group_ends = np.concatenate((boundaries, [count])).tolist()
    group_sets = set_indices[np.concatenate(([0], boundaries))].tolist()

    code_list = codes.tolist()
    tag_list = tags.tolist()
    way_range = range(assoc)

    for set_index, start, end in zip(group_sets, group_starts, group_ends):
        state = set_states.get(set_index)
        if state is None:
            state = materialise(set_index)
        (
            blk_tag,
            blk_valid,
            blk_dirty,
            blk_ones,
            blk_unchecked,
            blk_rsd,
            blk_reads,
            blk_concealed,
            blk_checks,
            blk_fills,
            blk_tick,
            tag_map,
            last_use,
            nvalid,
        ) = state

        for i in range(start, end):
            tag = tag_list[i]
            fill_ones = sample()
            scheme_tick += 1
            substrate_tick += 1
            hit_way = tag_map.get(tag)

            if code_list[i] == 0:  # demand read
                # -- read-path reliability events --------------------------------
                if mode == _CONVENTIONAL and not restore:
                    if hit_way is not None:
                        for way in way_range:
                            if blk_valid[way] and way != hit_way:
                                blk_unchecked[way] += 1
                                blk_rsd[way] += 1
                                blk_reads[way] += 1
                                blk_concealed[way] += 1
                        concealed_events += nvalid - 1
                        blk_reads[hit_way] += 1
                        window = blk_unchecked[hit_way] + 1
                        blk_unchecked[hit_way] = 0
                        blk_rsd[hit_way] = 0
                        blk_checks[hit_way] += 1
                        blk_tick[hit_way] = scheme_tick
                        ef_kind.append(_CONVENTIONAL)
                        ef_ones.append(blk_ones[hit_way])
                        ef_pwin.append(window)
                        ef_cwin.append(window)
                        ef_conc.append(window - 1)
                        ways_read, decodes = nvalid, 1
                    else:
                        for way in way_range:
                            if blk_valid[way]:
                                blk_unchecked[way] += 1
                                blk_rsd[way] += 1
                                blk_reads[way] += 1
                                blk_concealed[way] += 1
                        concealed_events += nvalid
                        ways_read, decodes = nvalid, 0
                elif mode == _REAP:
                    for way in way_range:
                        if not blk_valid[way]:
                            continue
                        blk_reads[way] += 1
                        blk_rsd[way] += 1
                        blk_checks[way] += 1
                        blk_tick[way] = scheme_tick
                        if way == hit_way:
                            window = blk_rsd[way]
                            conc = blk_unchecked[way]
                            blk_unchecked[way] = 0
                            blk_rsd[way] = 0
                            ef_kind.append(_REAP)
                            ef_ones.append(blk_ones[way])
                            ef_pwin.append(window)
                            ef_cwin.append(window)
                            ef_conc.append(conc)
                        else:
                            blk_unchecked[way] = 0
                            scrub_events += 1
                    ways_read = decodes = nvalid
                elif mode == _SERIAL:
                    if hit_way is not None:
                        blk_reads[hit_way] += 1
                        window = blk_unchecked[hit_way] + 1
                        blk_unchecked[hit_way] = 0
                        blk_rsd[hit_way] = 0
                        blk_checks[hit_way] += 1
                        blk_tick[hit_way] = scheme_tick
                        ef_kind.append(_SERIAL)
                        ef_ones.append(blk_ones[hit_way])
                        ef_pwin.append(1)
                        ef_cwin.append(window)
                        ef_conc.append(window - 1)
                        ways_read, decodes = 1, 1
                    else:
                        ways_read, decodes = 0, 0
                else:  # restore: every touched way is scrubbed and rewritten
                    for way in way_range:
                        if not blk_valid[way] or way == hit_way:
                            continue
                        blk_reads[way] += 1
                        blk_rsd[way] += 1
                        blk_unchecked[way] = 0
                        blk_checks[way] += 1
                        blk_tick[way] = scheme_tick
                        scrub_events += 1
                        restore_ones.append(blk_ones[way])
                        e_dwrite += way_write_e
                        e_enc += enc_e
                    if hit_way is not None:
                        blk_reads[hit_way] += 1
                        window = blk_unchecked[hit_way] + 1
                        blk_unchecked[hit_way] = 0
                        blk_rsd[hit_way] = 0
                        blk_checks[hit_way] += 1
                        blk_tick[hit_way] = scheme_tick
                        ef_kind.append(_CONVENTIONAL)
                        ef_ones.append(blk_ones[hit_way])
                        ef_pwin.append(window)
                        ef_cwin.append(window)
                        ef_conc.append(window - 1)
                        restore_ones.append(blk_ones[hit_way])
                        e_dwrite += way_write_e
                        e_enc += enc_e
                        ways_read, decodes = nvalid, 1
                    else:
                        ways_read, decodes = nvalid, 0

                # -- read-access energy and event statistics ---------------------
                e_tag += tag_e
                e_dread += ways_read * way_e
                e_dec += decodes * dec_e
                e_mux += mux_e
                data_way_reads += ways_read
                ecc_decodes += decodes

                # -- functional access -------------------------------------------
                demand_reads += 1
                if hit_way is not None:
                    read_hits += 1
                    lru_tick += 1
                    last_use[hit_way] = lru_tick
                    continue
                read_misses += 1
            else:  # demand write
                demand_writes += 1
                if hit_way is not None:
                    write_hits += 1
                    blk_dirty[hit_way] = True
                    blk_ones[hit_way] = fill_ones
                    blk_unchecked[hit_way] = 0
                    blk_rsd[hit_way] = 0
                    blk_tick[hit_way] = substrate_tick
                    data_way_writes += 1
                    lru_tick += 1
                    last_use[hit_way] = lru_tick
                    e_tag += wtag_e
                    e_dwrite += wdata_e
                    e_enc += wecc_e
                    continue
                write_misses += 1

            # -- shared miss path: victim selection, fill, eviction --------------
            victim = -1
            for way in way_range:
                if not blk_valid[way]:
                    victim = way
                    break
            if victim < 0:
                victim = min(way_range, key=last_use.__getitem__)
                evicted_dirty = blk_dirty[victim]
                evicted_ones = blk_ones[victim]
                evicted_unchecked = blk_unchecked[victim]
                evictions += 1
                if evicted_dirty:
                    dirty_evictions += 1
                del tag_map[blk_tag[victim]]
            else:
                evicted_dirty = False
                blk_valid[victim] = True
                nvalid += 1

            blk_tag[victim] = tag
            blk_ones[victim] = fill_ones
            blk_unchecked[victim] = 0
            blk_rsd[victim] = 0
            blk_fills[victim] += 1
            blk_tick[victim] = substrate_tick
            tag_map[tag] = victim
            fills += 1
            data_way_writes += 1
            lru_tick += 1
            last_use[victim] = lru_tick

            # Write-allocate: a store dirties the fresh line; a read fill
            # does not.  Either way one write-access energy triple is
            # charged (the fill on a read, the demand store on a write).
            blk_dirty[victim] = code_list[i] != 0
            e_tag += wtag_e
            e_dwrite += wdata_e
            e_enc += wecc_e

            if evicted_dirty:
                # Write-back read-out of the dirty victim: energy only.
                e_tag += tag_e
                e_dread += 1 * way_e
                e_dec += 1 * dec_e
                e_mux += mux_e
                if count_writebacks and evicted_ones > 0:
                    ef_kind.append(_WRITEBACK)
                    ef_ones.append(evicted_ones)
                    ef_pwin.append(evicted_unchecked + 1)
                    ef_cwin.append(evicted_unchecked + 1)
                    ef_conc.append(-1)

        state[13] = nvalid

    # -- resolve deferred probabilities and fold everything back --------------
    probabilities = _resolve_probabilities(engine, ef_kind, ef_ones, ef_pwin)
    rel_stats.record_check_batch(ef_cwin, probabilities)
    rel_stats.record_concealed(concealed_events)
    rel_stats.scrub_events += scrub_events
    tracker = engine.tracker
    if tracker is not None and ef_conc:
        tracker.record_batch(
            [conc for conc in ef_conc if conc >= 0],
            [ones for ones, conc in zip(ef_ones, ef_conc) if conc >= 0],
        )
    if restore and restore_ones:
        failure_by_ones: dict[int, float] = {}
        write_model = cache.write_error_model
        for ones in set(restore_ones):
            failure_by_ones[ones] = write_model.block_write_failure_probability(ones)
        cache.record_restore_batch([failure_by_ones[ones] for ones in restore_ones])

    stats.demand_reads += demand_reads
    stats.demand_writes += demand_writes
    stats.read_hits += read_hits
    stats.read_misses += read_misses
    stats.write_hits += write_hits
    stats.write_misses += write_misses
    stats.fills += fills
    stats.evictions += evictions
    stats.dirty_evictions += dirty_evictions
    stats.data_way_reads += data_way_reads
    stats.data_way_writes += data_way_writes
    stats.ecc_decodes += ecc_decodes
    stats.tag_comparisons += count * assoc

    totals.tag_pj = e_tag
    totals.data_read_pj = e_dread
    totals.data_write_pj = e_dwrite
    totals.ecc_decode_pj = e_dec
    totals.ecc_encode_pj = e_enc
    totals.mux_pj = e_mux

    for set_index, state in set_states.items():
        blocks = substrate.cache_set(set_index).blocks
        for way, block in enumerate(blocks):
            block.tag = state[0][way]
            block.valid = state[1][way]
            block.dirty = state[2][way]
            block.ones_count = state[3][way]
            block.unchecked_reads = state[4][way]
            block.reads_since_demand = state[5][way]
            block.total_reads = state[6][way]
            block.total_concealed_reads = state[7][way]
            block.total_checks = state[8][way]
            block.fills = state[9][way]
            block.last_access_tick = state[10][way]
        lru_rows[set_index] = state[12]

    policy._tick = lru_tick  # noqa: SLF001 - engine-internal state sync
    cache._tick = scheme_tick  # noqa: SLF001 - engine-internal state sync
    substrate._tick = substrate_tick  # noqa: SLF001 - engine-internal state sync


def _resolve_probabilities(
    engine, ef_kind: list[int], ef_ones: list[int], ef_pwin: list[int]
) -> list[float]:
    """Evaluate the deferred failure probabilities, in trace order.

    The unique ``(kind, ones, window)`` keys are evaluated once each with
    the vectorised binomial math (falling back to the engine's memoised
    scalar lookups for interleaved multi-lane codes, whose REAP expression
    differs) and scattered back over the per-event records.
    """
    if not ef_kind:
        return []
    keys = np.array([ef_kind, ef_ones, ef_pwin], dtype=np.int64).T
    unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)  # numpy >= 2.1 keeps the axis shape
    kinds = unique_keys[:, 0]
    ones = unique_keys[:, 1]
    windows = unique_keys[:, 2]
    p_cell = engine.p_cell
    correctable = engine.correctable_errors
    lanes = engine.interleaving_lanes
    unique_probs = np.zeros(len(unique_keys), dtype=float)

    nonzero = ones > 0
    if lanes > 1:
        lane_ones = np.maximum(1, np.round(ones / lanes)).astype(np.int64)
    else:
        lane_ones = ones

    for kind_code in (_CONVENTIONAL, _SERIAL, _WRITEBACK):
        mask = (kinds == kind_code) & nonzero
        if not mask.any():
            continue
        if kind_code == _WRITEBACK:
            # Write-back checks use the raw Eq. (3) tail, with no lane
            # adjustment (mirroring ProtectedCache._handle_eviction).
            unique_probs[mask] = accumulated_failure_probabilities(
                p_cell, ones[mask], windows[mask], correctable
            )
        else:
            if kind_code == _CONVENTIONAL:
                per_lane = accumulated_failure_probabilities(
                    p_cell, lane_ones[mask], windows[mask], correctable
                )
            else:
                per_lane = block_failure_probabilities(
                    p_cell, lane_ones[mask], correctable
                )
            unique_probs[mask] = (
                np.minimum(1.0, lanes * per_lane) if lanes > 1 else per_lane
            )

    reap_mask = (kinds == _REAP) & nonzero
    if reap_mask.any():
        if lanes == 1:
            unique_probs[reap_mask] = reap_failure_probabilities(
                p_cell, ones[reap_mask], windows[reap_mask], correctable
            )
        else:
            # The multi-lane REAP expression goes through the engine's
            # memoised per-key scalar path; unique keys keep this cheap.
            indices = np.flatnonzero(reap_mask)
            for index in indices:
                unique_probs[index] = engine.reap_probability(
                    int(ones[index]), int(windows[index])
                )

    return unique_probs[inverse].tolist()
