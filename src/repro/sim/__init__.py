"""Trace-driven simulation engine, experiment orchestration and results.

Public surface:

* :func:`run_l2_trace` / :func:`run_cpu_trace` — drive a protected cache or
  the full hierarchy with a trace.  Both accept an ``engine`` argument
  selecting the per-record reference loop or the batched fast path
  (:mod:`repro.sim.fastpath`), and a ``kernel`` argument selecting the fast
  path's tier (the grouped ``"loop"`` kernel or the structure-of-arrays
  ``"soa"`` kernel in :mod:`repro.sim.soa`); all combinations are
  numerically identical.
* :func:`run_l2_trace_fast` / :func:`run_cpu_trace_fast` /
  :func:`supports_fast_path` — the batched engines and their capability
  probe.
* :func:`compare_schemes`, :class:`ExperimentRunner`, :func:`sweep`,
  :class:`ExperimentSettings` — experiment orchestration.
* :class:`SchemeRunResult`, :class:`WorkloadComparison`, :func:`format_table`
  — results and console tables.
"""

from .engine import (
    ENGINE_CHOICES,
    deduplicate_fallback_warnings,
    run_cpu_trace,
    run_l2_trace,
    simulated_time_for,
)
from .experiment import (
    ExperimentRunner,
    ExperimentSettings,
    compare_schemes,
    run_workload,
    sweep,
)
from .fastpath import (
    KERNEL_CHOICES,
    replay_l2_segments,
    run_cpu_trace_fast,
    run_l2_trace_fast,
    supports_fast_path,
)
from .results import SchemeRunResult, WorkloadComparison, format_table

__all__ = [
    "run_l2_trace",
    "run_l2_trace_fast",
    "replay_l2_segments",
    "supports_fast_path",
    "run_cpu_trace",
    "run_cpu_trace_fast",
    "simulated_time_for",
    "ENGINE_CHOICES",
    "KERNEL_CHOICES",
    "deduplicate_fallback_warnings",
    "ExperimentRunner",
    "ExperimentSettings",
    "compare_schemes",
    "run_workload",
    "sweep",
    "SchemeRunResult",
    "WorkloadComparison",
    "format_table",
]
