"""Trace-driven simulation engine, experiment orchestration and results.

Public surface:

* :func:`run_l2_trace` / :func:`run_cpu_trace` — drive a protected cache or
  the full hierarchy with a trace.
* :func:`compare_schemes`, :class:`ExperimentRunner`, :func:`sweep`,
  :class:`ExperimentSettings` — experiment orchestration.
* :class:`SchemeRunResult`, :class:`WorkloadComparison`, :func:`format_table`
  — results and console tables.
"""

from .engine import run_cpu_trace, run_l2_trace, simulated_time_for
from .experiment import (
    ExperimentRunner,
    ExperimentSettings,
    compare_schemes,
    run_workload,
    sweep,
)
from .results import SchemeRunResult, WorkloadComparison, format_table

__all__ = [
    "run_l2_trace",
    "run_cpu_trace",
    "simulated_time_for",
    "ExperimentRunner",
    "ExperimentSettings",
    "compare_schemes",
    "run_workload",
    "sweep",
    "SchemeRunResult",
    "WorkloadComparison",
    "format_table",
]
