"""Structure-of-arrays (SoA) replay kernel for the batched engines.

This module is the second kernel tier of :mod:`repro.sim.fastpath`.  The
first tier (the *loop* kernel, ``fastpath._replay``) already avoids the
object path, but it still dispatches Python bytecode per access — and, for
the multi-way schemes, per way.  The SoA kernel removes that by splitting
the replay into two passes:

1. **Functional pass** (sequential, minimal): one lean Python loop decides
   hit/miss, victim and eviction for every access — the only genuinely
   order-dependent work — while *deferring* everything else.  Replacement
   transitions are deferred through the policy's SoA protocol
   (:attr:`repro.cache.replacement.ReplacementPolicy.soa_mode`): timestamp
   policies collapse to one "last touch position" store per access,
   tree/stateless policies to a queued way, and unknown compact-capable
   policies fall back to exact scalar calls.
2. **Reliability/energy pass** (vectorised): with the per-access
   ``(way, miss, valid-count)`` columns known, every remaining quantity is
   closed-form over NumPy arrays.  Per-set read ranks turn the exposure
   windows into differences of a counter sampled at consecutive events of
   the same cache frame; per-frame event streams (accesses plus patrol
   scrubs, sorted by frame then time) yield the delivery windows, the
   evicted-block exposures, the final per-block counters and the recency
   ticks without touching Python per access.

Bit-identical by construction, like the loop kernel:

* the per-access ones-count samples are drawn with
  :meth:`repro.core.DataValueProfile.sample_many`, which consumes the
  generator exactly as the per-access ``sample()`` calls would;
* every floating-point accumulator receives the same addends in the same
  order — the per-access addend sequences are reconstructed per accumulator
  and reduced with a seeded ``np.cumsum``, whose accumulation is
  sequential, so the final value is bitwise equal to the scalar loop's;
* the deferred failure probabilities go through the same vectorised
  binomial evaluation as the loop kernel (packed-key deduplication via
  :func:`repro.reliability.binomial.resolve_unique_keys`).

The CPU-level entry (:func:`filter_through_l1_soa`) additionally
run-length-encodes the L1 streams: consecutive references of one L1 to the
same block are guaranteed hits after the first, so each run costs one
Python iteration instead of one per record, and the realised L2 stream is
merged back in global order for the L2 replay above.

The differential harness in ``tests/sim/test_engine_equivalence.py`` sweeps
``kernel="loop"`` against ``kernel="soa"`` across every scheme, replacement
policy and trace level to enforce all of this field by field.
"""

from __future__ import annotations

import numpy as np

from ..cache import CacheHierarchy
from ..cache.cache import SetAssociativeCache
from ..cache.replacement import (
    FIFOPolicy,
    LERPolicy,
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
)
from ..core.restore import RestoreCache
from ..core.scrubbing import ScrubbingCache
from ..reliability.binomial import (
    accumulated_failure_probabilities,
    block_failure_probabilities,
    reap_failure_probabilities,
    resolve_unique_keys,
    sequential_float_sum,
)
from ..telemetry import span as telemetry_span

#: Delivery-kind codes shared with the loop kernel.
_CONVENTIONAL, _REAP, _SERIAL, _WRITEBACK = 0, 1, 2, 3

#: Policies whose SoA-mode shortcuts are maintained together with their
#: compact transitions; exact types only (a subclass may override either).
_BUILTIN_SOA_POLICIES = (
    LRUPolicy,
    LERPolicy,
    FIFOPolicy,
    RandomPolicy,
    TreePLRUPolicy,
)


def effective_soa_scheduling(policy) -> tuple[str, bool]:
    """The (soa_mode, victim_uses_exposure) pair the kernel may trust.

    A non-``"immediate"`` mode lets the kernel replace the scalar compact
    transitions with mode-specific shortcuts (position arithmetic, no-op
    accesses, deferred ordered replay).  That is only sound when the policy
    is an exact built-in — whose shortcuts are maintained in lockstep with
    its transitions — or when the policy's *own* class declares
    ``soa_mode``, vouching for the combination deliberately.  A subclass
    that overrides a compact transition while merely inheriting its
    parent's mode would otherwise have the override silently bypassed, so
    everything else degrades to exact scalar replay.  The exposure flag is
    widened to ``True`` (always hand the victim hook real exposures) under
    the same rule.
    """
    mode = policy.soa_mode
    exposure = policy.victim_uses_exposure
    if type(policy) in _BUILTIN_SOA_POLICIES:
        return mode, exposure
    own = type(policy).__dict__
    if "soa_mode" not in own:
        mode = "immediate"
    if "victim_uses_exposure" not in own:
        exposure = True
    return mode, exposure


def _patrol_visit_schedule(
    credit: float, rate: float, count: int
) -> tuple[np.ndarray, float]:
    """Per-access patrol visit counts under the exact credit arithmetic.

    Replicates :meth:`repro.core.scrubbing.ScrubbingCache._advance_scrubber`
    bit for bit: per access one float add of ``rate``, then one visit per
    whole unit of credit.  Subtracting ``1.0`` from a float ``>= 1`` is
    exact, so the post-access credit equals ``fl(credit + rate) - visits``
    computed in one step, and the credit trajectory is a deterministic map
    on the fractional part.  Because the rate is constant, that map cycles
    quickly for typical rates (e.g. period 4 at ``rate=0.25``); the closed
    form detects the cycle and tiles the visit counts instead of iterating
    all ``count`` accesses.

    Returns:
        ``(visits_per_access, final_credit)`` with ``final_credit`` bitwise
        equal to the scalar loop's.
    """
    visits = np.zeros(count, dtype=np.int64)
    if rate == 0.0 or count == 0:
        return visits, credit
    seen: dict[float, int] = {}
    credits: list[float] = []
    index = 0
    current = credit
    while index < count:
        cycle_start = seen.get(current)
        if cycle_start is not None:
            period = index - cycle_start
            pattern = visits[cycle_start:index].copy()
            remaining = count - index
            repeats, tail = divmod(remaining, period)
            if repeats:
                visits[index : index + repeats * period] = np.tile(pattern, repeats)
            if tail:
                visits[count - tail :] = pattern[:tail]
            final = credits[cycle_start + (count - cycle_start) % period]
            return visits, final
        seen[current] = index
        credits.append(current)
        topped = current + rate
        whole = int(topped)  # == floor: credit is never negative
        visits[index] = whole
        current = topped - whole  # exact (see docstring)
        index += 1
    return visits, current


def _patrol_visit_frames(
    visits_per_access: np.ndarray,
    fill_positions: list[int],
    fill_frames: list[int],
    init_valid_frames: np.ndarray,
    cursor: int,
    total_frames: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Reconstruct the patrol visit log from the monotone valid-frame sets.

    During a replay frames only ever *become* valid (a fill into a free way;
    evictions replace in place), so the round-robin walk sees a fixed sorted
    valid-frame array between consecutive free fills.  Within such a
    segment, consecutive visits simply walk consecutive valid frames
    cyclically, starting from the first valid frame at or after the cursor —
    one ``searchsorted`` plus modular index arithmetic per segment instead
    of a per-visit Python scan over the whole cache.  Visits finding no
    valid frame (a cold cache) consume credit, record nothing, and leave the
    cursor where it was, exactly like the scalar walk that wraps fully
    around.

    Args:
        visits_per_access: Per-access visit counts from
            :func:`_patrol_visit_schedule`.
        fill_positions: Access positions of free fills, ascending; a fill at
            position ``i`` is visible to that access's own patrol visits.
        fill_frames: The frame each free fill made valid.
        init_valid_frames: Frames valid before the replay (whole cache).
        cursor: Patrol cursor at replay start.
        total_frames: Cache frame count (cursor modulus).

    Returns:
        ``(positions, frames, final_cursor)`` of the recorded visits, in
        chronological order.
    """
    total = int(visits_per_access.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, cursor
    cumulative = np.cumsum(visits_per_access)
    # Access position of the j-th visit overall (0-based j).
    visit_pos = np.searchsorted(
        cumulative, np.arange(1, total + 1, dtype=np.int64), side="left"
    )
    valid = np.sort(np.asarray(init_valid_frames, dtype=np.int64))
    out_positions: list[np.ndarray] = []
    out_frames: list[np.ndarray] = []
    consumed = 0

    def consume(n_visits: int) -> None:
        nonlocal consumed, cursor
        if n_visits <= 0:
            return
        if valid.size:
            start = np.searchsorted(valid, cursor, side="left")
            indices = (start + np.arange(n_visits, dtype=np.int64)) % valid.size
            frames_segment = valid[indices]
            out_positions.append(visit_pos[consumed : consumed + n_visits])
            out_frames.append(frames_segment)
            cursor = (int(frames_segment[-1]) + 1) % total_frames
        consumed += n_visits

    for position, frame in zip(fill_positions, fill_frames):
        # Visits strictly before this fill's access see the old valid set.
        boundary = int(np.searchsorted(visit_pos, position, side="left"))
        consume(boundary - consumed)
        valid = np.insert(valid, np.searchsorted(valid, frame), frame)
    consume(total - consumed)
    if out_frames:
        return np.concatenate(out_positions), np.concatenate(out_frames), cursor
    empty = np.zeros(0, dtype=np.int64)
    return empty, empty, cursor


def _initial_valid_frames(substrate, num_sets: int, assoc: int) -> np.ndarray:
    """Frames holding a valid block before the replay, across the whole cache.

    Unmaterialised substrate sets are all-invalid by construction and are
    skipped without materialising them (:meth:`SetAssociativeCache.peek_set`).
    """
    frames = []
    for set_index in range(num_sets):
        cache_set = substrate.peek_set(set_index)
        if cache_set is None:
            continue
        base = set_index * assoc
        for way, block in enumerate(cache_set.blocks):
            if block.valid:
                frames.append(base + way)
    return np.asarray(frames, dtype=np.int64)


def _sequential_total(initial: float, values: np.ndarray, counts: np.ndarray) -> float:
    """Left-to-right sum of ``counts`` repeats of each addend, from ``initial``.

    ``values``/``counts`` are (accesses x slots) matrices whose row-major
    order is the exact per-access addend order of the scalar loop; the
    reduction goes through :func:`sequential_float_sum`, whose seeded
    cumulative sum performs the identical sequential float additions.
    """
    return sequential_float_sum(initial, np.repeat(values.ravel(), counts.ravel()))


def _segment_last_where(flags: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per segment, the last index where ``flags`` is set (-1 if none).

    ``starts`` are the segment start offsets into ``flags`` (ascending,
    first element 0).
    """
    marked = np.where(flags, np.arange(len(flags), dtype=np.int64), -1)
    if starts.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.maximum.reduceat(marked, starts)


def resolve_probability_keys(
    engine, kinds: np.ndarray, ones: np.ndarray, windows: np.ndarray
) -> np.ndarray:
    """Evaluate deferred failure probabilities for aligned key columns.

    The unique ``(kind, ones, window)`` keys are deduplicated with the
    packed-key helper and evaluated once each with the vectorised binomial
    math (falling back to the engine's memoised scalar lookups for
    multi-lane REAP, whose expression differs), then scattered back.
    """
    if len(kinds) == 0:
        return np.zeros(0, dtype=float)
    (u_kinds, u_ones, u_windows), inverse = resolve_unique_keys(kinds, ones, windows)
    p_cell = engine.p_cell
    correctable = engine.correctable_errors
    lanes = engine.interleaving_lanes
    unique_probs = np.zeros(len(u_kinds), dtype=float)

    nonzero = u_ones > 0
    if lanes > 1:
        lane_ones = np.maximum(1, np.round(u_ones / lanes)).astype(np.int64)
    else:
        lane_ones = u_ones

    for kind_code in (_CONVENTIONAL, _SERIAL, _WRITEBACK):
        mask = (u_kinds == kind_code) & nonzero
        if not mask.any():
            continue
        if kind_code == _WRITEBACK:
            # Write-back checks use the raw Eq. (3) tail, with no lane
            # adjustment (mirroring ProtectedCache._handle_eviction).
            unique_probs[mask] = accumulated_failure_probabilities(
                p_cell, u_ones[mask], u_windows[mask], correctable
            )
        else:
            if kind_code == _CONVENTIONAL:
                per_lane = accumulated_failure_probabilities(
                    p_cell, lane_ones[mask], u_windows[mask], correctable
                )
            else:
                per_lane = block_failure_probabilities(
                    p_cell, lane_ones[mask], correctable
                )
            unique_probs[mask] = (
                np.minimum(1.0, lanes * per_lane) if lanes > 1 else per_lane
            )

    reap_mask = (u_kinds == _REAP) & nonzero
    if reap_mask.any():
        if lanes == 1:
            unique_probs[reap_mask] = reap_failure_probabilities(
                p_cell, u_ones[reap_mask], u_windows[reap_mask], correctable
            )
        else:
            # The multi-lane REAP expression goes through the engine's
            # memoised per-key scalar path; unique keys keep this cheap.
            for index in np.flatnonzero(reap_mask):
                unique_probs[index] = engine.reap_probability(
                    int(u_ones[index]), int(u_windows[index])
                )

    return unique_probs[inverse]


def replay_l2_soa(
    cache,
    codes: np.ndarray,
    set_indices: np.ndarray,
    tags: np.ndarray,
    scheme_mode: int,
) -> None:
    """Drive ``cache`` through the decoded stream with the SoA kernel.

    Same contract as the loop kernel's ``_replay``: the cache ends in the
    exact state the reference per-record loop would leave it in.

    Args:
        cache: A fast-path-capable :class:`~repro.core.ProtectedCache`.
        codes: Per-access kind codes (0 read, 1 write).
        set_indices: Per-access set indices.
        tags: Per-access tags.
        scheme_mode: The loop kernel's delivery-kind code for the scheme.
    """
    count = len(codes)
    if count == 0:
        return

    restore = type(cache) is RestoreCache
    scrubbing = type(cache) is ScrubbingCache
    substrate = cache.cache
    assoc = substrate.associativity
    policy = substrate.replacement
    engine = cache.engine
    rel_stats = engine.stats
    stats = substrate.stats
    totals = cache.energy

    # One ones-count sample per access, consumed in trace order exactly as
    # the per-access sample() calls of the scalar loops.
    samples = np.asarray(cache.data_profile.sample_many(count), dtype=np.int64)

    # -- policy scheduling --------------------------------------------------------
    soa_mode, uses_exposure = effective_soa_scheduling(policy)
    pol_globals = policy.compact_globals()
    pol_access = policy.compact_on_access
    pol_fill = policy.compact_on_fill
    pol_victim = policy.compact_victim
    position_mode = soa_mode == "position"
    ordered_mode = soa_mode == "ordered"
    fill_only_mode = soa_mode == "fill-only"
    tick_base = policy.soa_tick_base() if position_mode else 0
    # Exposure bookkeeping (only when a policy's victim choice reads it):
    # under the accumulating schemes the live unchecked count of a way is
    # the set's read rank minus the rank at the way's last reset; under the
    # self-scrubbing schemes it is the initial exposure until any reset.
    exp_is_rr = scheme_mode == _CONVENTIONAL and not restore
    exp_reads_reset = restore or scheme_mode == _REAP

    # -- pass 1: functional replay ------------------------------------------------
    # Phase spans use the explicit start()/finish() pair: reindenting the
    # two ~300-line passes under ``with`` blocks would obscure the kernel.
    scheme_name = cache.scheme_name()
    pass1_span = telemetry_span(
        "kernel.pass1", scheme=scheme_name, accesses=count
    ).start()
    # Per-set state lives in flat, frame-indexed Python lists (frame id =
    # set * associativity + way), materialised lazily per touched set.  All
    # resident lines share one dict keyed by the packed (tag, set) address
    # and valued with the frame id, so the hit path is a single dict probe
    # plus a couple of flat-list stores.
    num_sets = substrate.num_sets
    index_bits = num_sets.bit_length() - 1
    materialised = [False] * num_sets
    rows: list = [None] * num_sets
    nvalid_l = [0] * num_sets
    total_frame_count = num_sets * assoc
    tags_l = [0] * total_frame_count
    valid_l = [False] * total_frame_count
    dirty_l = [False] * total_frame_count
    pend_l = [-1] * total_frame_count if position_mode else None
    queues: list = [None] * num_sets if ordered_mode else None
    exp_l = [0] * total_frame_count if uses_exposure else None
    rr_l = [0] * num_sets if uses_exposure else None
    touched_sets: list[int] = []
    zeros_exposure = [0] * assoc
    apply_positions = (
        policy.soa_apply_last_positions if position_mode else None
    )
    victim_positions = (
        policy.soa_victim_positions if position_mode else None
    )
    resident: dict[int, int] = {}

    init_nvalid = [0] * num_sets

    def materialise(set_index: int) -> None:
        blocks = substrate.cache_set(set_index).blocks
        base = set_index * assoc
        nvalid = 0
        for way, block in enumerate(blocks):
            f = base + way
            tags_l[f] = block.tag
            if block.valid:
                valid_l[f] = True
                resident[(block.tag << index_bits) | set_index] = f
                nvalid += 1
            dirty_l[f] = block.dirty
            if uses_exposure:
                exp_l[f] = -block.unchecked_reads
        nvalid_l[set_index] = nvalid
        init_nvalid[set_index] = nvalid
        rows[set_index] = policy.export_set_state(set_index)
        if ordered_mode:
            queues[set_index] = []
        materialised[set_index] = True
        touched_sets.append(set_index)

    way_arr = [0] * count
    miss_positions: list[int] = []
    evicted_flags: list[bool] = []
    evict_dirty_flags: list[bool] = []
    vis_pos: list[int] = []
    vis_set: list[int] = []
    vis_way: list[int] = []

    if scrubbing:
        scrub_rate = cache.scrub_rate
        scrub_credit, scrub_cursor, scrubbed_lines, total_frames = (
            cache.patrol_walk_state()
        )
    # The patrol scrubber only interacts with the functional replay through
    # the exposure counters some policies' victim choice reads (LER).  For
    # every other policy the patrol rate is constant and the valid-frame set
    # grows monotonically, so the whole visit log has a closed form and is
    # reconstructed vectorised after the loop instead of walking frames
    # per access inside it.
    patrol_inline = scrubbing and uses_exposure
    patrol_closed_form = scrubbing and not uses_exposure
    fill_log_pos: list[int] = []
    fill_log_frame: list[int] = []

    code_list = codes.tolist()
    set_list = set_indices.tolist()
    # Packed (tag, set) keys for the shared residency dict.
    key_list = ((tags << index_bits) | set_indices).tolist()
    way_range = range(assoc)
    fast_loop = position_mode and not uses_exposure

    def handle_miss(i: int, set_index: int, key: int, code: int) -> None:
        """Shared miss path: victim choice, eviction bookkeeping, fill."""
        base = set_index * assoc
        nvalid = nvalid_l[set_index]
        miss_positions.append(i)
        if nvalid < assoc:
            for way in way_range:
                if not valid_l[base + way]:
                    victim = base + way
                    break
            valid_l[victim] = True
            nvalid_l[set_index] = nvalid + 1
            evicted_flags.append(False)
            evict_dirty_flags.append(False)
            if patrol_closed_form:
                # Free fills are the only events that grow the patrol's
                # valid-frame set; log them for the closed-form replay.
                fill_log_pos.append(i)
                fill_log_frame.append(victim)
        else:
            row = rows[set_index]
            if ordered_mode:
                queue = queues[set_index]
                if queue:
                    policy.compact_on_access_batch(pol_globals, row, queue)
                    queue.clear()
            if uses_exposure:
                if exp_is_rr:
                    rank = rr_l[set_index]
                    exposure = [
                        rank - exp_base for exp_base in exp_l[base : base + assoc]
                    ]
                elif exp_reads_reset and rr_l[set_index] > 0:
                    exposure = zeros_exposure
                else:
                    exposure = [
                        -exp_base for exp_base in exp_l[base : base + assoc]
                    ]
            else:
                exposure = zeros_exposure
            if position_mode:
                # No flush: the policy picks a victim over the mixed stored
                # and deferred timestamps directly.
                victim = base + victim_positions(
                    pol_globals, row, pend_l[base : base + assoc], tick_base, exposure
                )
            else:
                victim = base + pol_victim(pol_globals, row, exposure)
            evicted_flags.append(True)
            evict_dirty_flags.append(dirty_l[victim])
            del resident[(tags_l[victim] << index_bits) | set_index]
        tags_l[victim] = key >> index_bits
        dirty_l[victim] = code != 0
        resident[key] = victim
        way_arr[i] = victim
        if uses_exposure:
            exp_l[victim] = rr_l[set_index] if exp_is_rr else 0
        if position_mode:
            pend_l[victim] = i
        elif ordered_mode:
            queues[set_index].append(victim - base)
        else:
            pol_fill(pol_globals, rows[set_index], victim - base)

    if fast_loop:
        # The common case (LRU-family policy, no patrol scrubber): the hit
        # path is one dict probe plus two flat stores, with the replacement
        # transition deferred as a last-touch position.  All touched sets
        # are materialised up front so the loop never branches on it.
        for set_index in np.flatnonzero(
            np.bincount(set_indices, minlength=num_sets)
        ).tolist():
            materialise(set_index)
        resident_get = resident.get
        for i, (key, code) in enumerate(zip(key_list, code_list)):
            hit_frame = resident_get(key)
            if hit_frame is not None:
                way_arr[i] = hit_frame
                pend_l[hit_frame] = i
                if code:
                    dirty_l[hit_frame] = True
            else:
                handle_miss(i, set_list[i], key, code)
    else:
        resident_get = resident.get
        for i, (set_index, key, code) in enumerate(
            zip(set_list, key_list, code_list)
        ):
            if not materialised[set_index]:
                materialise(set_index)
            if uses_exposure and code == 0:
                rr_l[set_index] += 1
            hit_frame = resident_get(key)
            if hit_frame is not None:
                way_arr[i] = hit_frame
                if code:
                    dirty_l[hit_frame] = True
                if uses_exposure:
                    exp_l[hit_frame] = rr_l[set_index] if exp_is_rr else 0
                if position_mode:
                    pend_l[hit_frame] = i
                elif ordered_mode:
                    queues[set_index].append(hit_frame - set_index * assoc)
                elif not fill_only_mode:
                    pol_access(
                        pol_globals, rows[set_index], hit_frame - set_index * assoc
                    )
            else:
                handle_miss(i, set_index, key, code)

            if patrol_inline:
                scrub_credit += scrub_rate
                while scrub_credit >= 1.0:
                    scrub_credit -= 1.0
                    for _ in range(total_frames):
                        patrol_frame = scrub_cursor
                        scrub_cursor = (scrub_cursor + 1) % total_frames
                        s_set, s_way = divmod(patrol_frame, assoc)
                        if materialised[s_set]:
                            s_valid = valid_l[patrol_frame]
                        else:
                            s_valid = (
                                substrate.cache_set(s_set).blocks[s_way].valid
                            )
                            if s_valid:
                                materialise(s_set)
                        if not s_valid:
                            continue
                        vis_pos.append(i)
                        vis_set.append(s_set)
                        vis_way.append(s_way)
                        scrubbed_lines += 1
                        if uses_exposure:
                            # A patrol check scrubs the visited way's exposure.
                            exp_l[patrol_frame] = (
                                rr_l[s_set] if exp_is_rr else 0
                            )
                        break

    if patrol_closed_form:
        # Closed-form patrol replay: the constant rate fixes the per-access
        # visit counts (exact credit arithmetic, cycle-detected) and the
        # monotone valid-frame intervals fix which frame each visit lands
        # on; both reconstruct vectorised, bit-identical to the inline walk.
        visits_per_access, scrub_credit = _patrol_visit_schedule(
            scrub_credit, scrub_rate, count
        )
        vis_pos, vis_frames, scrub_cursor = _patrol_visit_frames(
            visits_per_access,
            fill_log_pos,
            fill_log_frame,
            _initial_valid_frames(substrate, num_sets, assoc),
            scrub_cursor,
            total_frames,
        )
        scrubbed_lines += len(vis_frames)
        vis_set = vis_frames // assoc
        vis_way = vis_frames - vis_set * assoc
        # Patrol-visited sets join the touched set for pass 2's write-back,
        # exactly as the inline walk materialises them on first visit.
        for set_index in np.unique(vis_set).tolist():
            if not materialised[set_index]:
                materialise(set_index)

    # Flush deferred replacement transitions and write the policy state back.
    for set_index in touched_sets:
        row = rows[set_index]
        if position_mode:
            base = set_index * assoc
            apply_positions(row, pend_l[base : base + assoc], tick_base)
        elif ordered_mode and queues[set_index]:
            policy.compact_on_access_batch(pol_globals, row, queues[set_index])
        policy.import_set_state(set_index, row)
    if position_mode:
        policy.soa_commit(tick_base, count)
    pass1_span.finish()

    # -- pass 2: vectorised reliability, energy and block state -------------------
    pass2_span = telemetry_span(
        "kernel.pass2", scheme=scheme_name, accesses=count
    ).start()
    frame = np.array(way_arr, dtype=np.int64)
    num_frames = total_frame_count

    is_read = np.asarray(codes) == 0
    miss_mask = np.zeros(count, dtype=bool)
    if miss_positions:
        miss_idx = np.array(miss_positions, dtype=np.int64)
        miss_mask[miss_idx] = True
        evicted = np.zeros(count, dtype=bool)
        evicted[miss_idx] = np.array(evicted_flags, dtype=bool)
        evict_dirty = np.zeros(count, dtype=bool)
        evict_dirty[miss_idx] = np.array(evict_dirty_flags, dtype=bool)
    else:
        evicted = np.zeros(count, dtype=bool)
        evict_dirty = np.zeros(count, dtype=bool)
    hit_mask = ~miss_mask
    delivery = is_read & hit_mask
    write_hit = ~is_read & hit_mask

    # Per-set read ranks: RR[i] = number of reads to set(i) at positions <= i.
    order_by_set = np.argsort(set_indices, kind="stable")
    sorted_read = is_read[order_by_set]
    set_counts = np.bincount(set_indices, minlength=num_sets)
    set_starts = np.concatenate(([0], np.cumsum(set_counts)[:-1]))
    # Sets with no accesses (e.g. materialised only by patrol visits) have
    # out-of-range start offsets; clip them and mask their values out below.
    safe_starts = np.minimum(set_starts, max(count - 1, 0))
    read_cum = np.cumsum(sorted_read)
    seg_base = np.where(
        set_counts > 0, read_cum[safe_starts] - sorted_read[safe_starts], 0
    )
    rank_sorted = read_cum - np.repeat(seg_base, set_counts)
    rr = np.empty(count, dtype=np.int64)
    rr[order_by_set] = rank_sorted
    # Valid-way count seen by each access (before its own fill): the set's
    # initial occupancy plus the free (non-evicting) fills strictly before.
    free_fill_sorted = (miss_mask & ~evicted)[order_by_set].astype(np.int64)
    ff_cum = np.cumsum(free_fill_sorted)
    ff_base = np.where(
        set_counts > 0, ff_cum[safe_starts] - free_fill_sorted[safe_starts], 0
    )
    nvb_sorted = (ff_cum - np.repeat(ff_base, set_counts)) - free_fill_sorted
    nvb = np.empty(count, dtype=np.int64)
    nvb[order_by_set] = nvb_sorted
    nvb += np.asarray(init_nvalid, dtype=np.int64)[set_indices]

    reads_per_set = np.bincount(set_indices[is_read], minlength=num_sets)
    # Read positions in (set, position) order, with per-set offsets; the
    # last read of a set is the final entry of its span (-1 when none).
    read_positions = order_by_set[sorted_read]
    read_offsets = np.concatenate(([0], np.cumsum(reads_per_set)))
    if read_positions.size:
        last_read_pos = np.where(
            reads_per_set > 0,
            read_positions[np.maximum(read_offsets[1:] - 1, 0)],
            -1,
        )
    else:
        # No reads at all (possible for short streaming segments): every
        # set's last-read position is the "none" sentinel.
        last_read_pos = np.full(num_sets, -1, dtype=np.int64)

    # Scrub-visit read ranks via one packed searchsorted over read positions
    # sorted by (set, position).
    num_visits = len(vis_pos)
    if num_visits:
        visits_pos = np.array(vis_pos, dtype=np.int64)
        visits_set = np.array(vis_set, dtype=np.int64)
        visits_frame = visits_set * assoc + np.array(vis_way, dtype=np.int64)
        read_keys_sorted = set_indices[read_positions] * (count + 1) + read_positions
        visits_rank = (
            np.searchsorted(
                read_keys_sorted, visits_set * (count + 1) + visits_pos, side="right"
            )
            - read_offsets[visits_set]
        )
    else:
        visits_pos = np.zeros(0, dtype=np.int64)
        visits_frame = np.zeros(0, dtype=np.int64)
        visits_rank = np.zeros(0, dtype=np.int64)

    # Initial (pre-replay) per-frame state, read from the untouched blocks.
    init_ones = np.zeros(num_frames, dtype=np.int64)
    init_unch = np.zeros(num_frames, dtype=np.int64)
    init_rsd = np.zeros(num_frames, dtype=np.int64)
    init_reads = np.zeros(num_frames, dtype=np.int64)
    init_conc = np.zeros(num_frames, dtype=np.int64)
    init_checks = np.zeros(num_frames, dtype=np.int64)
    init_fills = np.zeros(num_frames, dtype=np.int64)
    init_tick = np.zeros(num_frames, dtype=np.int64)
    init_valid = np.zeros(num_frames, dtype=bool)
    final_valid = np.zeros(num_frames, dtype=bool)
    for set_index in touched_sets:
        base = set_index * assoc
        blocks = substrate.cache_set(set_index).blocks
        for way_index, block in enumerate(blocks):
            f = base + way_index
            init_ones[f] = block.ones_count
            init_unch[f] = block.unchecked_reads
            init_rsd[f] = block.reads_since_demand
            init_reads[f] = block.total_reads
            init_conc[f] = block.total_concealed_reads
            init_checks[f] = block.total_checks
            init_fills[f] = block.fills
            init_tick[f] = block.last_access_tick
            init_valid[f] = block.valid
            final_valid[f] = valid_l[f]

    # -- frame-chronological event streams ----------------------------------------
    # Own events: one per access (kind 0 delivery, 1 write hit, 2 fill).
    # Scrub events (kind 3) happen after the access at the same position.
    access_kind = np.where(delivery, 0, np.where(write_hit, 1, 2)).astype(np.int64)
    serial_scheme = scheme_mode == _SERIAL
    reap_like = restore or scheme_mode == _REAP
    own_R = np.zeros(count, dtype=np.int64) if serial_scheme else rr
    if num_visits:
        evt_frame = np.concatenate((frame, visits_frame))
        evt_pos = np.concatenate((np.arange(count, dtype=np.int64), visits_pos))
        evt_sub = np.concatenate(
            (np.zeros(count, dtype=np.int64), np.ones(num_visits, dtype=np.int64))
        )
        evt_R = np.concatenate((own_R, visits_rank))
        evt_kind = np.concatenate((access_kind, np.full(num_visits, 3, np.int64)))
        evt_access = np.concatenate(
            (np.arange(count, dtype=np.int64), np.full(num_visits, -1, np.int64))
        )
    else:
        evt_frame, evt_pos, evt_sub = frame, np.arange(count, dtype=np.int64), None
        evt_R, evt_kind, evt_access = own_R, access_kind, evt_pos
    if evt_sub is not None:
        perm = np.lexsort((evt_sub, evt_pos, evt_frame))
    else:
        perm = np.lexsort((evt_pos, evt_frame))
    f_s = evt_frame[perm]
    pos_s = evt_pos[perm]
    R_s = evt_R[perm]
    kind_s = evt_kind[perm]
    ai_s = evt_access[perm]
    num_events = len(f_s)

    new_frame = np.empty(num_events, dtype=bool)
    new_frame[0] = True
    new_frame[1:] = f_s[1:] != f_s[:-1]
    seg_starts = np.flatnonzero(new_frame)
    seg_frames = f_s[seg_starts]
    seg_counts = np.diff(np.concatenate((seg_starts, [num_events])))
    seg_last = seg_starts + seg_counts - 1

    # Window deltas: read rank at each event minus the rank at the previous
    # event of the same frame; the first event of a frame is seeded with the
    # initial exposure so warm-cache windows continue exactly.
    if scheme_mode == _REAP:
        first_seed = -init_rsd[seg_frames]
    else:
        first_seed = -init_unch[seg_frames]
    prev_R = np.empty(num_events, dtype=np.int64)
    prev_R[1:] = R_s[:-1]
    prev_R[seg_starts] = first_seed
    delta = R_s - prev_R

    # Ones value just before each event (forward-filled setter values).
    setter = (kind_s == 1) | (kind_s == 2)
    setter_ones = np.where(setter, samples[np.maximum(ai_s, 0)], 0)
    setter_idx = np.where(setter, np.arange(num_events, dtype=np.int64), -1)
    ffill_idx = np.maximum.accumulate(setter_idx)
    seg_first_of = np.repeat(seg_starts, seg_counts)
    has_setter = ffill_idx >= seg_first_of
    ones_after = np.where(
        has_setter, setter_ones[np.maximum(ffill_idx, 0)], init_ones[f_s]
    )
    ones_before = np.empty(num_events, dtype=np.int64)
    ones_before[1:] = ones_after[:-1]
    ones_before[seg_starts] = init_ones[seg_frames]

    first_event = new_frame
    # Delivery windows and concealed counts per scheme family.
    if scheme_mode == _CONVENTIONAL and not restore:
        win_evt = delta
        conc_evt = delta - 1
    elif scheme_mode == _SERIAL:
        win_evt = delta + 1
        conc_evt = delta
    elif scheme_mode == _REAP:
        win_evt = delta
        conc_evt = np.where(
            first_event & (R_s == 1) & init_valid[f_s], init_unch[f_s], 0
        )
    else:  # restore
        residual = np.where(
            first_event & (R_s == 1) & init_valid[f_s], init_unch[f_s], 0
        )
        win_evt = residual + 1
        conc_evt = residual

    # Evicted-block exposure at fill events (the fill closes the previous
    # occupant's accumulation window).
    if reap_like:
        evicted_unch_evt = np.where(
            first_event & (R_s == 0) & init_valid[f_s], init_unch[f_s], 0
        )
    else:
        evicted_unch_evt = delta

    # Scatter the event columns back to access order (own events only).
    own_mask_s = kind_s < 3
    own_ai = ai_s[own_mask_s]
    win_acc = np.zeros(count, dtype=np.int64)
    conc_acc = np.zeros(count, dtype=np.int64)
    ones_at_acc = np.zeros(count, dtype=np.int64)
    evicted_unch_acc = np.zeros(count, dtype=np.int64)
    win_acc[own_ai] = win_evt[own_mask_s]
    conc_acc[own_ai] = conc_evt[own_mask_s]
    ones_at_acc[own_ai] = ones_before[own_mask_s]
    evicted_unch_acc[own_ai] = evicted_unch_evt[own_mask_s]

    # -- deferred probability events, statistics and tracker ----------------------
    wb_mask = (
        evicted & evict_dirty & (ones_at_acc > 0)
        if cache.count_writeback_checks
        else np.zeros(count, dtype=bool)
    )
    delivery_kind = (
        _REAP
        if scheme_mode == _REAP
        else (_SERIAL if serial_scheme else _CONVENTIONAL)
    )
    ef_mask = delivery | wb_mask
    ef_kind = np.where(delivery, delivery_kind, _WRITEBACK)[ef_mask]
    ef_ones = ones_at_acc[ef_mask]
    ef_pwin = np.where(
        delivery, 1 if serial_scheme else win_acc, evicted_unch_acc + 1
    )[ef_mask]
    ef_cwin = np.where(delivery, win_acc, evicted_unch_acc + 1)[ef_mask]

    probabilities = resolve_probability_keys(engine, ef_kind, ef_ones, ef_pwin)
    rel_stats.record_check_array(ef_cwin, probabilities)
    if scheme_mode == _CONVENTIONAL and not restore:
        concealed_events = int(nvb[is_read].sum() - np.count_nonzero(delivery))
        rel_stats.record_concealed(concealed_events)
    if reap_like:
        rel_stats.scrub_events += int(
            nvb[is_read].sum() - np.count_nonzero(delivery)
        )
    elif scrubbing:
        rel_stats.scrub_events += num_visits
    tracker = engine.tracker
    if tracker is not None:
        tracker.record_sample_arrays(conc_acc[delivery], ones_at_acc[delivery])

    # -- restore: per-way rewrite probabilities, in (access, way) order -----------
    if restore:
        _record_restores(
            cache,
            count,
            assoc,
            order_by_set,
            sorted_read,
            reads_per_set,
            rr,
            seg_frames,
            seg_starts,
            f_s,
            pos_s,
            kind_s,
            setter,
            setter_ones,
            init_ones,
            init_valid,
            frame,
            hit_mask,
        )

    # -- energy: reconstruct the per-access addend sequences ----------------------
    model = cache.energy_model
    tag_e = model.tag_lookup_energy_pj()
    way_e = model.way_read_energy_pj()
    dec_e = model.ecc_decode_energy_pj()
    mux_e = model.mux_energy_pj()
    write_breakdown = model.write_access_energy()
    wtag_e = write_breakdown.tag_pj
    wdata_e = write_breakdown.data_array_pj
    wecc_e = write_breakdown.ecc_pj
    way_write_e = model.way_write_energy_pj()
    enc_e = model.ecc_encode_energy_pj()

    if scheme_mode == _REAP:
        ways_read = np.where(is_read, nvb, 0)
        decodes = ways_read
    elif serial_scheme:
        ways_read = np.where(delivery, 1, 0)
        decodes = ways_read
    else:
        ways_read = np.where(is_read, nvb, 0)
        decodes = np.where(delivery, 1, 0)
    data_way_reads = int(ways_read.sum())
    ecc_decodes = int(decodes.sum())

    read_count = is_read.astype(np.int64)
    wh_or_miss = (write_hit | miss_mask).astype(np.int64)
    dirty_evt = evict_dirty.astype(np.int64)
    visit_counts = (
        np.bincount(visits_pos, minlength=count)
        if num_visits
        else np.zeros(count, dtype=np.int64)
    )
    restore_counts = np.where(is_read, nvb, 0) if restore else None

    ones_f = np.ones(count, dtype=float)
    totals.tag_pj = _sequential_total(
        totals.tag_pj,
        np.stack(
            (tag_e * ones_f, wtag_e * ones_f, tag_e * ones_f, tag_e * ones_f), axis=1
        ),
        np.stack((read_count, wh_or_miss, dirty_evt, visit_counts), axis=1),
    )
    totals.data_read_pj = _sequential_total(
        totals.data_read_pj,
        np.stack((ways_read * way_e, way_e * ones_f, way_e * ones_f), axis=1),
        np.stack((read_count, dirty_evt, visit_counts), axis=1),
    )
    if restore:
        totals.data_write_pj = _sequential_total(
            totals.data_write_pj,
            np.stack((way_write_e * ones_f, wdata_e * ones_f), axis=1),
            np.stack((restore_counts, wh_or_miss), axis=1),
        )
        totals.ecc_encode_pj = _sequential_total(
            totals.ecc_encode_pj,
            np.stack((enc_e * ones_f, wecc_e * ones_f), axis=1),
            np.stack((restore_counts, wh_or_miss), axis=1),
        )
    else:
        totals.data_write_pj = _sequential_total(
            totals.data_write_pj, wdata_e * ones_f, wh_or_miss
        )
        totals.ecc_encode_pj = _sequential_total(
            totals.ecc_encode_pj, wecc_e * ones_f, wh_or_miss
        )
    totals.ecc_decode_pj = _sequential_total(
        totals.ecc_decode_pj,
        np.stack((decodes * dec_e, dec_e * ones_f, dec_e * ones_f), axis=1),
        np.stack((read_count, dirty_evt, visit_counts), axis=1),
    )
    totals.mux_pj = _sequential_total(
        totals.mux_pj,
        np.stack((mux_e * ones_f, mux_e * ones_f, mux_e * ones_f), axis=1),
        np.stack((read_count, dirty_evt, visit_counts), axis=1),
    )

    # -- functional statistics ----------------------------------------------------
    num_reads = int(np.count_nonzero(is_read))
    num_deliveries = int(np.count_nonzero(delivery))
    num_write_hits = int(np.count_nonzero(write_hit))
    num_misses = count - num_deliveries - num_write_hits
    stats.demand_reads += num_reads
    stats.demand_writes += count - num_reads
    stats.read_hits += num_deliveries
    stats.read_misses += num_reads - num_deliveries
    stats.write_hits += num_write_hits
    stats.write_misses += (count - num_reads) - num_write_hits
    stats.fills += num_misses
    stats.evictions += int(np.count_nonzero(evicted))
    stats.dirty_evictions += int(np.count_nonzero(evict_dirty))
    stats.data_way_reads += data_way_reads
    stats.data_way_writes += num_misses + num_write_hits
    stats.ecc_decodes += ecc_decodes
    stats.tag_comparisons += count * assoc

    # -- final per-frame block state ----------------------------------------------
    scheme_tick0 = cache._tick  # noqa: SLF001 - engine-internal state sync
    substrate_tick0 = substrate._tick  # noqa: SLF001 - engine-internal state sync

    # Per-frame aggregates over the event segments.
    last_any = np.full(num_frames, -1, dtype=np.int64)
    last_any[seg_frames] = seg_last
    last_own_seg = _segment_last_where(own_mask_s, seg_starts)
    last_own = np.full(num_frames, -1, dtype=np.int64)
    last_own[seg_frames] = last_own_seg
    first_fill_seg = np.full(len(seg_frames), -1, dtype=np.int64)
    fill_flags = kind_s == 2
    if fill_flags.any():
        first_idx = np.where(
            fill_flags, np.arange(num_events, dtype=np.int64), num_events
        )
        first_fill_seg = np.minimum.reduceat(first_idx, seg_starts)
        first_fill_seg = np.where(first_fill_seg == num_events, -1, first_fill_seg)
    first_fill = np.full(num_frames, -1, dtype=np.int64)
    first_fill[seg_frames] = first_fill_seg

    deliveries_per_frame = np.bincount(frame[delivery], minlength=num_frames)
    fills_per_frame = np.bincount(frame[miss_mask], minlength=num_frames)
    scrubs_per_frame = (
        np.bincount(visits_frame, minlength=num_frames)
        if num_visits
        else np.zeros(num_frames, dtype=np.int64)
    )

    set_of_frame = np.arange(num_frames, dtype=np.int64) // assoc
    r_end = reads_per_set[set_of_frame]
    has_own = last_own >= 0
    has_any = last_any >= 0
    r_at_last_own = np.where(has_own, R_s[np.maximum(last_own, 0)], -init_rsd)
    r_at_last_any = np.where(has_any, R_s[np.maximum(last_any, 0)], -init_unch)
    # Reads counted while the frame was resident: from the start for
    # initially valid frames, from the first fill otherwise.
    valid_from_r = np.where(
        init_valid, 0, np.where(first_fill >= 0, R_s[np.maximum(first_fill, 0)], 0)
    )
    resident_mask = final_valid
    reads_while_valid = np.where(resident_mask, r_end - valid_from_r, 0)

    # Patrol scrubs on a frame after its last demand (own) event: they keep
    # incrementing reads_since_demand, which only demand events reset.
    if num_visits:
        seg_start_of_frame = np.full(num_frames, 0, dtype=np.int64)
        seg_start_of_frame[seg_frames] = seg_starts
        exclusive_scrubs = np.concatenate(([0], np.cumsum(kind_s == 3)))
        range_low = np.where(has_own, last_own + 1, seg_start_of_frame)
        scrubs_after_own = np.where(
            has_any,
            exclusive_scrubs[last_any + 1] - exclusive_scrubs[range_low],
            0,
        )
    else:
        scrubs_after_own = np.zeros(num_frames, dtype=np.int64)

    final_ones = np.where(
        has_any, ones_after[np.maximum(last_any, 0)], init_ones
    )
    if scheme_mode == _CONVENTIONAL and not restore:
        final_unch = np.where(resident_mask, r_end - r_at_last_any, init_unch)
        final_rsd = (
            np.where(resident_mask, r_end - r_at_last_own, init_rsd)
            + scrubs_after_own
        )
        reads_gain = reads_while_valid + scrubs_per_frame
        conc_gain = reads_while_valid - deliveries_per_frame
        checks_gain = deliveries_per_frame + scrubs_per_frame
    elif serial_scheme:
        final_unch = np.where(has_own, 0, init_unch)
        final_rsd = np.where(has_own, 0, init_rsd)
        reads_gain = deliveries_per_frame
        conc_gain = np.zeros(num_frames, dtype=np.int64)
        checks_gain = deliveries_per_frame
    else:  # REAP and restore
        touched = has_own | (resident_mask & (reads_while_valid > 0))
        final_unch = np.where(touched, 0, init_unch)
        final_rsd = np.where(resident_mask, r_end - r_at_last_own, init_rsd)
        reads_gain = reads_while_valid
        conc_gain = np.zeros(num_frames, dtype=np.int64)
        checks_gain = reads_while_valid

    # Recency ticks: the last writer wins.  For the accumulating schemes
    # every event on a frame writes a tick (deliveries and patrol scrubs use
    # the scheme counter, write hits and fills the substrate counter); for
    # REAP and restore every set read additionally ticks all resident ways,
    # with own events taking precedence at equal positions because the
    # fill/write happens after the scheme's way loop.
    own_pos = np.where(has_own, pos_s[np.maximum(last_own, 0)], -1)
    own_kind = np.where(has_own, kind_s[np.maximum(last_own, 0)], -1)
    if reap_like:
        first_fill_pos = np.where(
            first_fill >= 0, pos_s[np.maximum(first_fill, 0)], -1
        )
        candidate = last_read_pos[set_of_frame]
        candidate = np.where(
            resident_mask & (candidate >= first_fill_pos), candidate, -1
        )
        own_key = np.where(has_own, own_pos * 2 + 1, -1)
        read_key = np.where(candidate >= 0, candidate * 2, -1)
        use_own = own_key >= read_key
        tick_pos = np.where(use_own, own_pos, candidate)
        tick_scheme_base = np.where(use_own, own_kind == 0, True)
        has_tick = (own_key >= 0) | (read_key >= 0)
    else:
        last_any_kind = np.where(has_any, kind_s[np.maximum(last_any, 0)], -1)
        tick_pos = np.where(has_any, pos_s[np.maximum(last_any, 0)], -1)
        tick_scheme_base = (last_any_kind == 0) | (last_any_kind == 3)
        has_tick = has_any
    final_tick = np.where(
        has_tick,
        np.where(tick_scheme_base, scheme_tick0, substrate_tick0) + tick_pos + 1,
        init_tick,
    )

    # -- write everything back (touched frames only) ------------------------------
    touched_arr = np.asarray(touched_sets, dtype=np.int64)
    touched_frames = np.repeat(touched_arr * assoc, assoc) + np.tile(
        np.arange(assoc, dtype=np.int64), len(touched_sets)
    )
    final_ones_l = final_ones[touched_frames].tolist()
    final_unch_l = final_unch[touched_frames].tolist()
    final_rsd_l = final_rsd[touched_frames].tolist()
    reads_l = (init_reads + reads_gain)[touched_frames].tolist()
    conc_l = (init_conc + conc_gain)[touched_frames].tolist()
    checks_l = (init_checks + checks_gain)[touched_frames].tolist()
    fills_l = (init_fills + fills_per_frame)[touched_frames].tolist()
    tick_l = final_tick[touched_frames].tolist()
    for touch_index, set_index in enumerate(touched_sets):
        base = set_index * assoc
        compact_base = touch_index * assoc
        blocks = substrate.cache_set(set_index).blocks
        for way_index, block in enumerate(blocks):
            f = compact_base + way_index
            block.tag = tags_l[base + way_index]
            block.valid = valid_l[base + way_index]
            block.dirty = dirty_l[base + way_index]
            block.ones_count = final_ones_l[f]
            block.unchecked_reads = final_unch_l[f]
            block.reads_since_demand = final_rsd_l[f]
            block.total_reads = reads_l[f]
            block.total_concealed_reads = conc_l[f]
            block.total_checks = checks_l[f]
            block.fills = fills_l[f]
            block.last_access_tick = tick_l[f]

    if scrubbing:
        cache.import_scrub_state(scrub_credit, scrub_cursor, scrubbed_lines)
    cache._tick = scheme_tick0 + count  # noqa: SLF001 - engine-internal state sync
    substrate._tick = substrate_tick0 + count  # noqa: SLF001
    pass2_span.finish()


class _L1ReplaySoA:
    """Two-pass, run-length-aware replay of one functional (SRAM) L1 cache.

    Equivalent to the loop kernel's per-record ``_L1Replay`` — same counters,
    same block fields, same replacement transitions — but mirrors the L2
    kernel's pass split:

    * **Pass 1** (:meth:`replay`, sequential) extracts runs of consecutive
      same-block references vectorised, then walks them with a lean loop
      that resolves only the genuinely order-dependent work — residency (one
      shared dict keyed by the packed (tag, set) address), victim choice and
      eviction bookkeeping — while deferring replacement transitions through
      the policy's SoA protocol.  A hit run costs one dict probe plus one
      flat store.
    * **Pass 2** (:meth:`finalize`, vectorised) reconstructs every counter
      and per-block field closed-form from the run columns: hit/miss
      counters are mask sums, per-frame fill counts a ``bincount``, and the
      final recency tick of each frame the last tick-updating run that
      touched it.

    Bit-identical to the old per-run loop: pass 1 performs the identical
    policy calls at the identical points in the stream, and every pass-2
    quantity is an integer reconstruction of the same arithmetic.
    """

    __slots__ = (
        "cache",
        "assoc",
        "num_sets",
        "index_bits",
        "num_frames",
        "policy",
        "pol_globals",
        "pol_access",
        "pol_fill",
        "pol_victim",
        "position_mode",
        "ordered_mode",
        "fill_only_mode",
        "tick_base",
        "zeros",
        "tick0",
        "acc",
        "tags_f",
        "valid_f",
        "dirty_f",
        "pend_f",
        "rows",
        "queues",
        "touched_sets",
        "evictions",
        "dirty_evictions",
        "_runs",
    )

    def __init__(self, cache: SetAssociativeCache) -> None:
        self.cache = cache
        self.assoc = cache.associativity
        self.num_sets = cache.num_sets
        self.index_bits = self.num_sets.bit_length() - 1
        self.num_frames = self.num_sets * self.assoc
        self.policy = cache.replacement
        self.pol_globals = self.policy.compact_globals()
        self.pol_access = self.policy.compact_on_access
        self.pol_fill = self.policy.compact_on_fill
        self.pol_victim = self.policy.compact_victim
        soa_mode, _ = effective_soa_scheduling(self.policy)
        self.position_mode = soa_mode == "position"
        self.ordered_mode = soa_mode == "ordered"
        self.fill_only_mode = soa_mode == "fill-only"
        self.tick_base = self.policy.soa_tick_base() if self.position_mode else 0
        # The L1s never record reads on their blocks, so the per-way
        # unchecked-read exposure seen by victim selection is always zero.
        self.zeros = [0] * self.assoc
        self.tick0 = cache._tick  # noqa: SLF001 - engine-internal state sync
        self.acc = 0
        # Flat frame-indexed state (frame id = set * associativity + way),
        # filled lazily per touched set, exactly like the L2 kernel.
        self.tags_f = [0] * self.num_frames
        self.valid_f = [False] * self.num_frames
        self.dirty_f = [False] * self.num_frames
        self.pend_f = [-1] * self.num_frames if self.position_mode else None
        self.rows: list = [None] * self.num_sets
        self.queues: list = [None] * self.num_sets if self.ordered_mode else None
        self.touched_sets: list[int] = []
        self.evictions = self.dirty_evictions = 0
        self._runs: tuple | None = None

    def _materialise(self, set_index: int, resident: dict[int, int]) -> None:
        blocks = self.cache.cache_set(set_index).blocks
        base = set_index * self.assoc
        for way, block in enumerate(blocks):
            f = base + way
            self.tags_f[f] = block.tag
            if block.valid:
                self.valid_f[f] = True
                resident[(block.tag << self.index_bits) | set_index] = f
            self.dirty_f[f] = block.dirty
        self.rows[set_index] = self.policy.export_set_state(set_index)
        if self.ordered_mode:
            self.queues[set_index] = []
        self.touched_sets.append(set_index)

    def replay(
        self,
        sub_positions: np.ndarray,
        sets: np.ndarray,
        tags: np.ndarray,
        stores: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pass 1: replay the cache's whole substream.

        Args:
            sub_positions: Global trace positions of this cache's records.
            sets: Per-record set indices.
            tags: Per-record tags.
            stores: Per-record store flags.

        Returns:
            ``(miss_positions, miss_sets, miss_wb_tags)`` — the global
            position and set of every missing run's first reference, and
            the evicted dirty victim's tag (-1 when nothing dirty was
            evicted), in stream order.
        """
        n = int(len(sub_positions))
        self.acc = n
        empty = np.zeros(0, dtype=np.int64)
        if n == 0:
            return empty, empty, empty

        # Run extraction: maximal runs of consecutive same-(set, tag)
        # references collapse to one pass-1 iteration each.
        change = np.empty(n, dtype=bool)
        change[0] = True
        change[1:] = (sets[1:] != sets[:-1]) | (tags[1:] != tags[:-1])
        run_starts = np.flatnonzero(change)
        run_ends = np.concatenate((run_starts[1:], [n]))
        store_cum = np.concatenate(([0], np.cumsum(stores)))
        last_store = np.maximum.accumulate(
            np.where(stores, np.arange(n, dtype=np.int64), -1)
        )
        run_sets = sets[run_starts]
        n_stores_r = store_cum[run_ends] - store_cum[run_starts]
        last_off_r = last_store[run_ends - 1] - run_starts
        first_store_r = stores[run_starts]
        keys = (tags[run_starts].astype(np.int64) << self.index_bits) | run_sets

        resident: dict[int, int] = {}
        for set_index in np.unique(run_sets).tolist():
            self._materialise(set_index, resident)

        key_list = keys.tolist()
        ends_l = run_ends.tolist()
        nst_l = n_stores_r.tolist()
        sets_l = run_sets.tolist()

        num_runs = len(key_list)
        way_l = [0] * num_runs
        miss_runs: list[int] = []
        miss_wb: list[int] = []

        assoc = self.assoc
        index_bits = self.index_bits
        tags_f = self.tags_f
        valid_f = self.valid_f
        dirty_f = self.dirty_f
        pend_f = self.pend_f
        rows = self.rows
        queues = self.queues
        resident_get = resident.get
        way_range = range(assoc)

        def handle_miss(r: int, key: int, end: int) -> int:
            """Shared miss path: victim choice, eviction bookkeeping, fill."""
            set_index = sets_l[r]
            base = set_index * assoc
            frame = -1
            for candidate in way_range:
                if not valid_f[base + candidate]:
                    frame = base + candidate
                    break
            wb_tag = -1
            if frame < 0:
                row = rows[set_index]
                if self.position_mode:
                    frame = base + self.policy.soa_victim_positions(
                        self.pol_globals,
                        row,
                        pend_f[base : base + assoc],
                        self.tick_base,
                        self.zeros,
                    )
                else:
                    if self.ordered_mode:
                        queue = queues[set_index]
                        if queue:
                            self.policy.compact_on_access_batch(
                                self.pol_globals, row, queue
                            )
                            queue.clear()
                    frame = base + self.pol_victim(self.pol_globals, row, self.zeros)
                self.evictions += 1
                if dirty_f[frame]:
                    self.dirty_evictions += 1
                    wb_tag = tags_f[frame]
                del resident[(tags_f[frame] << index_bits) | set_index]
            else:
                valid_f[frame] = True
            tags_f[frame] = key >> index_bits
            # Write-allocate: an incoming store dirties the fresh line.
            dirty_f[frame] = bool(first_store_l[r])
            resident[key] = frame
            way_l[r] = frame
            miss_runs.append(r)
            miss_wb.append(wb_tag)
            return frame

        first_store_l = first_store_r.tolist()
        if self.position_mode:
            # The common case (LRU-family policy): a hit run is one dict
            # probe plus one deferred last-touch position store.
            for r, (key, end, nst) in enumerate(zip(key_list, ends_l, nst_l)):
                frame = resident_get(key)
                if frame is None:
                    frame = handle_miss(r, key, end)
                else:
                    way_l[r] = frame
                pend_f[frame] = end - 1
                if nst:
                    dirty_f[frame] = True
        else:
            starts_l = run_starts.tolist()
            for r, (key, end, nst) in enumerate(zip(key_list, ends_l, nst_l)):
                frame = resident_get(key)
                hit = frame is not None
                if not hit:
                    frame = handle_miss(r, key, end)
                else:
                    way_l[r] = frame
                if nst:
                    dirty_f[frame] = True
                set_index = sets_l[r]
                way = frame - set_index * assoc
                if self.ordered_mode:
                    queue = queues[set_index]
                    if not queue or queue[-1] != way:
                        queue.append(way)
                elif self.fill_only_mode:
                    if not hit:
                        self.pol_fill(self.pol_globals, rows[set_index], way)
                else:
                    row = rows[set_index]
                    if hit:
                        self.pol_access(self.pol_globals, row, way)
                    else:
                        self.pol_fill(self.pol_globals, row, way)
                    tail = end - starts_l[r] - 1
                    if tail:
                        self.policy.compact_on_access_batch(
                            self.pol_globals, row, [way] * tail
                        )

        miss_idx = np.array(miss_runs, dtype=np.int64)
        self._runs = (
            np.array(way_l, dtype=np.int64),
            run_starts,
            run_ends,
            n_stores_r,
            last_off_r,
            first_store_r,
            miss_idx,
        )
        miss_starts = run_starts[miss_idx]
        return (
            sub_positions[miss_starts],
            run_sets[miss_idx],
            np.array(miss_wb, dtype=np.int64),
        )

    def finalize(self) -> None:
        """Pass 2: vectorised counters/fields, folded back into the cache."""
        policy = self.policy
        assoc = self.assoc
        tick_map: dict[int, int] = {}
        fills_l: list[int] | None = None
        stats = self.cache.stats

        if self._runs is not None:
            (
                run_frame,
                run_starts,
                run_ends,
                n_stores_r,
                last_off_r,
                first_store_r,
                miss_idx,
            ) = self._runs
            num_runs = len(run_frame)
            miss_mask = np.zeros(num_runs, dtype=bool)
            miss_mask[miss_idx] = True
            run_len = run_ends - run_starts
            n_loads_r = run_len - n_stores_r

            demand_reads = int(n_loads_r.sum())
            demand_writes = int(n_stores_r.sum())
            n_miss = int(miss_idx.size)
            write_misses = int(np.count_nonzero(first_store_r[miss_idx]))
            read_misses = n_miss - write_misses
            stats.demand_reads += demand_reads
            stats.demand_writes += demand_writes
            stats.read_hits += demand_reads - read_misses
            stats.read_misses += read_misses
            stats.write_hits += demand_writes - write_misses
            stats.write_misses += write_misses
            stats.fills += n_miss
            # One data-array write per fill plus one per store, minus the
            # store folded into a write-allocate fill (same arithmetic as
            # the loop kernel, summed instead of accumulated).
            stats.data_way_writes += demand_writes + n_miss - write_misses

            fills_l = np.bincount(
                run_frame[miss_mask], minlength=self.num_frames
            ).tolist()

            # Final recency tick per frame: the last run that updated it —
            # a fill stamps start+1, a store run stamps the last store's
            # position+1, a store run over a fill overwrites the fill stamp.
            has_store_r = n_stores_r > 0
            upd = miss_mask | has_store_r
            if upd.any():
                frames_u = run_frame[upd]
                tick_vals = (
                    self.tick0
                    + run_starts[upd]
                    + np.where(has_store_r[upd], last_off_r[upd] + 1, 1)
                )
                rev = frames_u[::-1]
                uniq_f, first_idx = np.unique(rev, return_index=True)
                tick_map = dict(
                    zip(uniq_f.tolist(), tick_vals[::-1][first_idx].tolist())
                )

        for set_index in self.touched_sets:
            row = self.rows[set_index]
            if self.position_mode:
                base = set_index * assoc
                policy.soa_apply_last_positions(
                    row, self.pend_f[base : base + assoc], self.tick_base
                )
            elif self.ordered_mode and self.queues[set_index]:
                policy.compact_on_access_batch(
                    self.pol_globals, row, self.queues[set_index]
                )
            policy.import_set_state(set_index, row)
            blocks = self.cache.cache_set(set_index).blocks
            base = set_index * assoc
            for way, block in enumerate(blocks):
                f = base + way
                block.tag = self.tags_f[f]
                block.valid = self.valid_f[f]
                block.dirty = self.dirty_f[f]
                if fills_l is not None:
                    block.fills += fills_l[f]
                tick = tick_map.get(f)
                if tick is not None:
                    block.last_access_tick = tick
        if self.position_mode:
            policy.soa_commit(self.tick_base, self.acc)
        stats.evictions += self.evictions
        stats.dirty_evictions += self.dirty_evictions
        stats.tag_comparisons += self.acc * self.assoc
        self.cache._tick = self.tick0 + self.acc  # noqa: SLF001


def filter_through_l1_soa(
    hierarchy: CacheHierarchy, codes: np.ndarray, addresses: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Run the CPU stream through run-length-encoded two-pass L1 models.

    Args:
        hierarchy: The cache hierarchy whose L1s are replayed (mutated).
        codes: Per-record CPU kind codes (0 ifetch, 1 load, 2 store).
        addresses: Per-record addresses.

    Returns:
        ``(l2_codes, l2_addresses)`` arrays — code 0 demand read, 1
        write-back, in the exact order the reference hierarchy would issue
        them to the L2.
    """
    l1i, l1d = hierarchy.l1i, hierarchy.l1d
    is_ifetch = codes == 0
    i_batch = l1i.mapper.decompose_batch(addresses[is_ifetch])
    d_batch = l1d.mapper.decompose_batch(addresses[~is_ifetch])
    d_config = l1d.config
    d_offset_bits = d_config.offset_bits
    d_tag_shift = d_offset_bits + d_config.index_bits

    i_positions = np.flatnonzero(is_ifetch)
    d_positions = np.flatnonzero(~is_ifetch)
    instruction_fetches = int(i_positions.size)
    d_codes = codes[d_positions]
    d_stores = d_codes == 2
    data_writes = int(np.count_nonzero(d_stores))
    data_reads = int(d_positions.size) - data_writes

    i_replay = _L1ReplaySoA(l1i)
    d_replay = _L1ReplaySoA(l1d)
    i_pos, _, i_wb_tag = i_replay.replay(
        i_positions, i_batch.indices, i_batch.tags, np.zeros(i_positions.size, dtype=bool)
    )
    d_pos, d_sets, d_wb_tag = d_replay.replay(
        d_positions, d_batch.indices, d_batch.tags, d_stores
    )
    i_replay.finalize()
    d_replay.finalize()
    # Only the data side can evict dirty lines (the instruction stream
    # never stores), which the assert pins down.
    assert not i_wb_tag.size or int(i_wb_tag.max()) < 0, "L1I emitted a write-back"

    # Compose write-back addresses with the L1D geometry, then merge the
    # two miss streams back into global order (each is already ascending).
    d_wb = np.where(
        d_wb_tag >= 0,
        (d_wb_tag << d_tag_shift) | (d_sets.astype(np.int64) << d_offset_bits),
        -1,
    )
    miss_pos = np.concatenate((i_pos, d_pos))
    miss_wb = np.concatenate((np.full(i_pos.size, -1, dtype=np.int64), d_wb))
    order = np.argsort(miss_pos, kind="stable")
    pos_o = miss_pos[order]
    wb_o = miss_wb[order]
    has_wb = wb_o >= 0
    l2_reads = int(pos_o.size)
    l2_writebacks = int(np.count_nonzero(has_wb))
    # Each miss emits its demand read, immediately followed by its
    # write-back when one exists: slot = rank + write-backs seen so far.
    out_idx = np.arange(l2_reads, dtype=np.int64) + (np.cumsum(has_wb) - has_wb)
    l2_codes = np.zeros(l2_reads + l2_writebacks, dtype=np.int8)
    l2_addresses = np.empty(l2_reads + l2_writebacks, dtype=np.int64)
    l2_addresses[out_idx] = addresses[pos_o]
    wb_slots = out_idx[has_wb] + 1
    l2_codes[wb_slots] = 1
    l2_addresses[wb_slots] = wb_o[has_wb]

    stats = hierarchy.stats
    stats.instruction_fetches += instruction_fetches
    stats.data_reads += data_reads
    stats.data_writes += data_writes
    stats.l2_reads += l2_reads
    stats.l2_writebacks += l2_writebacks
    return l2_codes, l2_addresses


def _record_restores(
    cache,
    count,
    assoc,
    order_by_set,
    sorted_read,
    reads_per_set,
    rr,
    seg_frames,
    seg_starts,
    f_s,
    pos_s,
    kind_s,
    setter,
    setter_ones,
    init_ones,
    init_valid,
    frame,
    hit_mask,
) -> None:
    """Rebuild the restore scheme's per-(read, way) rewrite stream.

    Every demand read restores all currently valid ways of its set — the
    non-hit ways in ascending order, then the hit way.  The loop kernel
    appends one ones count per restored way; this reconstructs the exact
    same sequence from the frame event streams and records the write-failure
    probabilities in one batch.
    """
    num_frames = len(init_ones)
    # Each frame is restored by every read of its slot from the moment it is
    # resident: rank > R(first fill) for frames filled during the replay,
    # every read for initially valid frames.
    first_fill_rank = np.zeros(num_frames, dtype=np.int64)
    fill_flags = kind_s == 2
    num_events = len(kind_s)
    filled_frames = np.zeros(num_frames, dtype=bool)
    if fill_flags.any():
        first_idx = np.where(
            fill_flags, np.arange(num_events, dtype=np.int64), num_events
        )
        first_fill_seg = np.minimum.reduceat(first_idx, seg_starts)
        valid_seg = first_fill_seg < num_events
        rr_evt = rr[pos_s]
        first_fill_rank[seg_frames[valid_seg]] = rr_evt[
            first_fill_seg[valid_seg]
        ]
        filled_frames[np.unique(f_s[fill_flags])] = True
    start_rank = np.where(init_valid, 0, first_fill_rank)
    resident_frames = init_valid | filled_frames

    set_of_frame = np.arange(num_frames, dtype=np.int64) // assoc
    pair_counts = np.where(
        resident_frames, reads_per_set[set_of_frame] - start_rank, 0
    )
    pair_counts = np.maximum(pair_counts, 0)
    total_pairs = int(pair_counts.sum())
    restore_model = cache.write_error_model
    if total_pairs == 0:
        return

    # Read positions sorted by (slot, position), with per-slot offsets.
    read_positions = order_by_set[sorted_read]
    read_offsets = np.concatenate(([0], np.cumsum(reads_per_set)))
    frames_idx = np.flatnonzero(pair_counts > 0)
    counts_nz = pair_counts[frames_idx]
    starts_flat = read_offsets[set_of_frame[frames_idx]] + start_rank[frames_idx]
    setter_sel = np.flatnonzero(setter)
    setter_keys = (
        f_s[setter_sel] * (2 * count + 2) + pos_s[setter_sel] * 2
        if setter_sel.size
        else None
    )

    # Single-value fast path: when every ones count a restore could observe
    # — a frame's initial value (only reachable before its first setter
    # event) or any setter event's value — is one and the same, the whole
    # rewrite stream collapses to a single (probability, total_pairs) run
    # and none of the per-pair arrays are needed.  This is the common case:
    # the default data profile installs a constant ones count everywhere.
    first_pos = read_positions[starts_flat]
    if setter_keys is not None:
        query0 = frames_idx * (2 * count + 2) + first_pos * 2
        found0 = np.searchsorted(setter_keys, query0, side="left") - 1
        found0_frame = np.where(
            found0 >= 0, f_s[setter_sel[np.maximum(found0, 0)]], -1
        )
        fallback0 = found0_frame != frames_idx
        candidates = np.concatenate(
            (init_ones[frames_idx[fallback0]], setter_ones[setter_sel])
        )
    else:
        candidates = init_ones[frames_idx]
    unique_candidates = np.unique(candidates)
    if unique_candidates.size == 1:
        probability = restore_model.block_write_failure_probability(
            int(unique_candidates[0])
        )
        cache.record_restore_runs([probability], [total_pairs])
        return

    excl = np.concatenate(([0], np.cumsum(counts_nz)[:-1]))
    ragged = np.arange(total_pairs, dtype=np.int64) - np.repeat(excl, counts_nz)
    pair_read_idx = np.repeat(starts_flat, counts_nz) + ragged
    pair_pos = read_positions[pair_read_idx]
    pair_frame = np.repeat(frames_idx, counts_nz)
    pair_way = pair_frame % assoc

    # Ones value of the frame at the read position: the last setter event
    # strictly before the read (the miss-path fill happens after the
    # restore pass of the same access).
    if setter_keys is not None:
        query = pair_frame * (2 * count + 2) + pair_pos * 2
        found = np.searchsorted(setter_keys, query, side="left") - 1
        found_frame = np.where(found >= 0, f_s[setter_sel[np.maximum(found, 0)]], -1)
        pair_ones = np.where(
            found_frame == pair_frame,
            setter_ones[setter_sel[np.maximum(found, 0)]],
            init_ones[pair_frame],
        )
    else:
        pair_ones = init_ones[pair_frame]

    # Exact loop order: by access position, non-hit ways ascending, hit last.
    pair_hit = (frame[pair_pos] == pair_frame) & hit_mask[pair_pos]
    order = np.lexsort((pair_way, pair_hit, pair_pos))
    ordered_ones = pair_ones[order]

    unique_ones, inverse = np.unique(ordered_ones, return_inverse=True)
    unique_probs = np.array(
        [
            restore_model.block_write_failure_probability(int(ones))
            for ones in unique_ones
        ],
        dtype=float,
    )
    flat_inverse = inverse.reshape(-1)

    # Run-length encode the ordered stream: consecutive equal probabilities
    # fold through the bit-identical chunked accumulator, so long stretches
    # of one data value cost O(runs) instead of O(pairs).  Short mean runs
    # would make the per-run folding slower than the flat array, so fall
    # back when the encoding does not compress.
    change = np.empty(total_pairs, dtype=bool)
    change[0] = True
    change[1:] = flat_inverse[1:] != flat_inverse[:-1]
    run_starts = np.flatnonzero(change)
    if run_starts.size * 4 <= total_pairs:
        run_counts = np.diff(np.concatenate((run_starts, [total_pairs])))
        cache.record_restore_runs(unique_probs[flat_inverse[run_starts]], run_counts)
    else:
        cache.record_restore_array(unique_probs[flat_inverse])
