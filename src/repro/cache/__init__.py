"""Set-associative cache substrate: addressing, blocks, replacement, read paths.

Public surface:

* :class:`AddressMapper` / :class:`DecomposedAddress` — address decomposition.
* :class:`CacheBlock`, :class:`CacheSet` — per-line and per-set state.
* :class:`SetAssociativeCache`, :class:`AccessResult`, :class:`EvictedBlock` —
  the functional cache model.
* replacement policies (:func:`build_replacement_policy` and classes).
* read-path organisations (:func:`build_read_path` and classes) — the
  mechanism behind concealed reads and their elimination.
* :class:`CacheHierarchy` — the Table I two-level front end.
* :class:`CacheStatistics`, :class:`ReliabilityStatistics`.
"""

from .address import AddressMapper, DecomposedAddress, DecomposedAddressBatch
from .block import CacheBlock, ReadExposure
from .cache import AccessResult, EvictedBlock, SetAssociativeCache
from .cache_set import CacheSet
from .hierarchy import CacheHierarchy, HierarchyStatistics, NextLevel
from .readpath import (
    ParallelReadPath,
    REAPReadPath,
    ReadPathEvents,
    ReadPathModel,
    ReadPathTiming,
    SerialReadPath,
    build_read_path,
)
from .replacement import (
    FIFOPolicy,
    LERPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
    build_replacement_policy,
)
from .statistics import CacheStatistics, ReliabilityStatistics

__all__ = [
    "AddressMapper",
    "DecomposedAddress",
    "DecomposedAddressBatch",
    "CacheBlock",
    "ReadExposure",
    "CacheSet",
    "SetAssociativeCache",
    "AccessResult",
    "EvictedBlock",
    "CacheHierarchy",
    "HierarchyStatistics",
    "NextLevel",
    "ReadPathModel",
    "ReadPathEvents",
    "ReadPathTiming",
    "ParallelReadPath",
    "SerialReadPath",
    "REAPReadPath",
    "build_read_path",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "LERPolicy",
    "build_replacement_policy",
    "CacheStatistics",
    "ReliabilityStatistics",
]
