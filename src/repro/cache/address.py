"""Physical-address decomposition into tag / set-index / block-offset fields.

This mirrors step 1 of the paper's Fig. 2 / Fig. 4 read sequence: the index
part of the incoming address selects the target set, the tag part is compared
against the stored tags of all ways, and the offset selects bytes within the
block (the offset plays no role in the reliability model but is preserved for
completeness and for trace round-tripping).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheLevelConfig
from ..errors import AddressError


@dataclass(frozen=True)
class DecomposedAddress:
    """An address split into its cache-indexing fields.

    Attributes:
        tag: Tag field (upper address bits).
        index: Set index.
        offset: Byte offset within the block.
        block_address: The address with the offset bits cleared.
    """

    tag: int
    index: int
    offset: int
    block_address: int


class AddressMapper:
    """Maps physical addresses to (tag, index, offset) for one cache level."""

    def __init__(self, config: CacheLevelConfig) -> None:
        """Create a mapper for the given cache geometry."""
        self._config = config
        self._offset_bits = config.offset_bits
        self._index_bits = config.index_bits
        self._offset_mask = (1 << self._offset_bits) - 1
        self._index_mask = (1 << self._index_bits) - 1
        self._max_address = (1 << config.address_bits) - 1

    @property
    def config(self) -> CacheLevelConfig:
        """The cache geometry this mapper serves."""
        return self._config

    @property
    def num_sets(self) -> int:
        """Number of sets addressable by the index field."""
        return self._config.num_sets

    def decompose(self, address: int) -> DecomposedAddress:
        """Split an address into tag / index / offset.

        Args:
            address: Physical byte address.

        Raises:
            AddressError: if the address is negative or wider than the
                configured address width.
        """
        if address < 0:
            raise AddressError(f"address must be non-negative, got {address}")
        if address > self._max_address:
            raise AddressError(
                f"address {address:#x} exceeds the {self._config.address_bits}-bit "
                "address space"
            )
        offset = address & self._offset_mask
        index = (address >> self._offset_bits) & self._index_mask
        tag = address >> (self._offset_bits + self._index_bits)
        block_address = address & ~self._offset_mask
        return DecomposedAddress(
            tag=tag, index=index, offset=offset, block_address=block_address
        )

    def compose(self, tag: int, index: int, offset: int = 0) -> int:
        """Rebuild a physical address from its fields.

        Raises:
            AddressError: if any field is out of range for the geometry.
        """
        if tag < 0 or tag >= (1 << self._config.tag_bits):
            raise AddressError(f"tag {tag} out of range")
        if index < 0 or index >= self.num_sets:
            raise AddressError(f"index {index} out of range")
        if offset < 0 or offset > self._offset_mask:
            raise AddressError(f"offset {offset} out of range")
        return (
            (tag << (self._offset_bits + self._index_bits))
            | (index << self._offset_bits)
            | offset
        )

    def block_address(self, address: int) -> int:
        """Return the address of the block containing ``address``."""
        return self.decompose(address).block_address

    def set_index(self, address: int) -> int:
        """Return the set index selected by ``address``."""
        return self.decompose(address).index
