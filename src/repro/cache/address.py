"""Physical-address decomposition into tag / set-index / block-offset fields.

This mirrors step 1 of the paper's Fig. 2 / Fig. 4 read sequence: the index
part of the incoming address selects the target set, the tag part is compared
against the stored tags of all ways, and the offset selects bytes within the
block (the offset plays no role in the reliability model but is preserved for
completeness and for trace round-tripping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CacheLevelConfig
from ..errors import AddressError


@dataclass(frozen=True)
class DecomposedAddress:
    """An address split into its cache-indexing fields.

    Attributes:
        tag: Tag field (upper address bits).
        index: Set index.
        offset: Byte offset within the block.
        block_address: The address with the offset bits cleared.
    """

    tag: int
    index: int
    offset: int
    block_address: int


@dataclass(frozen=True)
class DecomposedAddressBatch:
    """Many addresses split into their cache-indexing fields, as arrays.

    Attributes:
        tags: Tag field of each address.
        indices: Set index of each address.
        offsets: Byte offset of each address.
        block_addresses: Each address with the offset bits cleared.
    """

    tags: np.ndarray
    indices: np.ndarray
    offsets: np.ndarray
    block_addresses: np.ndarray

    def __len__(self) -> int:
        return len(self.tags)


class AddressMapper:
    """Maps physical addresses to (tag, index, offset) for one cache level."""

    def __init__(self, config: CacheLevelConfig) -> None:
        """Create a mapper for the given cache geometry."""
        self._config = config
        self._offset_bits = config.offset_bits
        self._index_bits = config.index_bits
        self._offset_mask = (1 << self._offset_bits) - 1
        self._index_mask = (1 << self._index_bits) - 1
        self._max_address = (1 << config.address_bits) - 1

    @property
    def config(self) -> CacheLevelConfig:
        """The cache geometry this mapper serves."""
        return self._config

    @property
    def num_sets(self) -> int:
        """Number of sets addressable by the index field."""
        return self._config.num_sets

    def decompose(self, address: int) -> DecomposedAddress:
        """Split an address into tag / index / offset.

        Args:
            address: Physical byte address.

        Raises:
            AddressError: if the address is negative or wider than the
                configured address width.
        """
        if address < 0:
            raise AddressError(f"address must be non-negative, got {address}")
        if address > self._max_address:
            raise AddressError(
                f"address {address:#x} exceeds the {self._config.address_bits}-bit "
                "address space"
            )
        offset = address & self._offset_mask
        index = (address >> self._offset_bits) & self._index_mask
        tag = address >> (self._offset_bits + self._index_bits)
        block_address = address & ~self._offset_mask
        return DecomposedAddress(
            tag=tag, index=index, offset=offset, block_address=block_address
        )

    def decompose_batch(self, addresses) -> DecomposedAddressBatch:
        """Split many addresses into tag / index / offset arrays at once.

        Accepts any integer sequence or array; all field extractions are
        vectorised, and each output entry equals the corresponding
        :meth:`decompose` result field-for-field.

        Raises:
            AddressError: if any address is negative or wider than the
                configured address width (checked before any extraction, so
                the batch either fully decomposes or fails as a whole).
        """
        try:
            array = np.asarray(addresses, dtype=np.int64)
        except OverflowError as exc:
            raise AddressError(
                f"address exceeds the {self._config.address_bits}-bit address space"
            ) from exc
        if array.size:
            lowest = int(array.min())
            if lowest < 0:
                raise AddressError(f"address must be non-negative, got {lowest}")
            highest = int(array.max())
            if highest > self._max_address:
                raise AddressError(
                    f"address {highest:#x} exceeds the "
                    f"{self._config.address_bits}-bit address space"
                )
        offsets = array & self._offset_mask
        indices = (array >> self._offset_bits) & self._index_mask
        tags = array >> (self._offset_bits + self._index_bits)
        block_addresses = array & ~np.int64(self._offset_mask)
        return DecomposedAddressBatch(
            tags=tags, indices=indices, offsets=offsets, block_addresses=block_addresses
        )

    def compose(self, tag: int, index: int, offset: int = 0) -> int:
        """Rebuild a physical address from its fields.

        Raises:
            AddressError: if any field is out of range for the geometry.
        """
        if tag < 0 or tag >= (1 << self._config.tag_bits):
            raise AddressError(f"tag {tag} out of range")
        if index < 0 or index >= self.num_sets:
            raise AddressError(f"index {index} out of range")
        if offset < 0 or offset > self._offset_mask:
            raise AddressError(f"offset {offset} out of range")
        return (
            (tag << (self._offset_bits + self._index_bits))
            | (index << self._offset_bits)
            | offset
        )

    def block_address(self, address: int) -> int:
        """Return the address of the block containing ``address``."""
        return self.decompose(address).block_address

    def set_index(self, address: int) -> int:
        """Return the set index selected by ``address``."""
        return self.decompose(address).index
