"""Replacement policies for the set-associative cache model.

The paper's evaluation uses a conventional cache (gem5's default LRU); the
extra policies here serve the ablation benches:

* :class:`LRUPolicy` — least recently used (default).
* :class:`FIFOPolicy` — first in, first out.
* :class:`RandomPolicy` — uniform random victim.
* :class:`TreePLRUPolicy` — tree pseudo-LRU, the usual hardware-cheap
  approximation of LRU.
* :class:`LERPolicy` — "least error rate" replacement from the paper's
  reference [13]: prefer evicting the block with the largest accumulated
  unchecked-read exposure, so the most error-prone data leaves the cache.

All policies are driven through the same three hooks (`on_fill`, `on_access`,
`victim`) and keep their own per-set metadata, indexed by (set index, way).
"""

from __future__ import annotations

import abc

import numpy as np

from ..config import ReplacementPolicyName
from ..errors import ReplacementError
from .block import CacheBlock


class ReplacementPolicy(abc.ABC):
    """Interface shared by all replacement policies."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ReplacementError("num_sets and associativity must be positive")
        self._num_sets = num_sets
        self._associativity = associativity

    @property
    def num_sets(self) -> int:
        """Number of sets tracked."""
        return self._num_sets

    @property
    def associativity(self) -> int:
        """Ways per set."""
        return self._associativity

    def _check(self, set_index: int, way: int | None = None) -> None:
        if not 0 <= set_index < self._num_sets:
            raise ReplacementError(f"set index {set_index} out of range")
        if way is not None and not 0 <= way < self._associativity:
            raise ReplacementError(f"way {way} out of range")

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """A block was accessed (hit)."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """A block was filled (miss handling installed a new line)."""

    @abc.abstractmethod
    def victim(self, set_index: int, blocks: list[CacheBlock]) -> int:
        """Choose the way to evict; invalid ways must be preferred."""

    def _first_invalid(self, blocks: list[CacheBlock]) -> int | None:
        for way, block in enumerate(blocks):
            if not block.valid:
                return way
        return None


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used replacement."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._tick = 0
        self._last_use = np.zeros((num_sets, associativity), dtype=np.int64)

    def on_access(self, set_index: int, way: int) -> None:
        """Record a use timestamp."""
        self._check(set_index, way)
        self._tick += 1
        self._last_use[set_index, way] = self._tick

    def on_fill(self, set_index: int, way: int) -> None:
        """A fill counts as a use."""
        self.on_access(set_index, way)

    def victim(self, set_index: int, blocks: list[CacheBlock]) -> int:
        """Evict an invalid way if any, otherwise the least recently used."""
        self._check(set_index)
        invalid = self._first_invalid(blocks)
        if invalid is not None:
            return invalid
        return int(np.argmin(self._last_use[set_index]))


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement: evict the oldest fill."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._tick = 0
        self._fill_time = np.zeros((num_sets, associativity), dtype=np.int64)

    def on_access(self, set_index: int, way: int) -> None:
        """Accesses do not affect FIFO order."""
        self._check(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        """Record the fill timestamp."""
        self._check(set_index, way)
        self._tick += 1
        self._fill_time[set_index, way] = self._tick

    def victim(self, set_index: int, blocks: list[CacheBlock]) -> int:
        """Evict an invalid way if any, otherwise the oldest fill."""
        self._check(set_index)
        invalid = self._first_invalid(blocks)
        if invalid is not None:
            return invalid
        return int(np.argmin(self._fill_time[set_index]))


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection."""

    def __init__(self, num_sets: int, associativity: int, seed: int = 1) -> None:
        super().__init__(num_sets, associativity)
        self._rng = np.random.default_rng(seed)

    def on_access(self, set_index: int, way: int) -> None:
        """Random replacement keeps no access state."""
        self._check(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        """Random replacement keeps no fill state."""
        self._check(set_index, way)

    def victim(self, set_index: int, blocks: list[CacheBlock]) -> int:
        """Evict an invalid way if any, otherwise a uniformly random way."""
        self._check(set_index)
        invalid = self._first_invalid(blocks)
        if invalid is not None:
            return invalid
        return int(self._rng.integers(0, self._associativity))


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU (the common hardware approximation).

    Requires a power-of-two associativity; each set keeps ``ways - 1`` tree
    bits.  On an access the bits along the path to the accessed way are set
    to point *away* from it; the victim is found by following the bits.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        if associativity & (associativity - 1):
            raise ReplacementError("tree PLRU requires a power-of-two associativity")
        self._tree = np.zeros((num_sets, max(associativity - 1, 1)), dtype=np.int8)

    def _update_path(self, set_index: int, way: int) -> None:
        node = 0
        low, high = 0, self._associativity
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                self._tree[set_index, node] = 1  # point to the upper half
                node = 2 * node + 1
                high = mid
            else:
                self._tree[set_index, node] = 0  # point to the lower half
                node = 2 * node + 2
                low = mid

    def on_access(self, set_index: int, way: int) -> None:
        """Flip the tree bits along the accessed way's path."""
        self._check(set_index, way)
        if self._associativity > 1:
            self._update_path(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        """A fill counts as a use."""
        self.on_access(set_index, way)

    def victim(self, set_index: int, blocks: list[CacheBlock]) -> int:
        """Follow the tree bits to the pseudo-LRU way."""
        self._check(set_index)
        invalid = self._first_invalid(blocks)
        if invalid is not None:
            return invalid
        if self._associativity == 1:
            return 0
        node = 0
        low, high = 0, self._associativity
        while high - low > 1:
            mid = (low + high) // 2
            if self._tree[set_index, node]:
                # The bit points away from the lower half: victim is above.
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        return low


class LERPolicy(ReplacementPolicy):
    """Least-error-rate replacement (paper reference [13]).

    Evicts the valid block with the largest accumulated unchecked-read
    exposure — the block most likely to hold an uncorrectable error — with
    recency (tracked like LRU) as the tie-breaker.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._tick = 0
        self._last_use = np.zeros((num_sets, associativity), dtype=np.int64)

    def on_access(self, set_index: int, way: int) -> None:
        """Record a use timestamp for tie-breaking."""
        self._check(set_index, way)
        self._tick += 1
        self._last_use[set_index, way] = self._tick

    def on_fill(self, set_index: int, way: int) -> None:
        """A fill counts as a use."""
        self.on_access(set_index, way)

    def victim(self, set_index: int, blocks: list[CacheBlock]) -> int:
        """Evict an invalid way, else the most disturbance-exposed block."""
        self._check(set_index)
        invalid = self._first_invalid(blocks)
        if invalid is not None:
            return invalid
        best_way = 0
        best_key: tuple[int, int] | None = None
        for way, block in enumerate(blocks):
            # Higher exposure first; older (smaller timestamp) breaks ties.
            key = (block.unchecked_reads, -int(self._last_use[set_index, way]))
            if best_key is None or key > best_key:
                best_key = key
                best_way = way
        return best_way


def build_replacement_policy(
    name: ReplacementPolicyName, num_sets: int, associativity: int, seed: int = 1
) -> ReplacementPolicy:
    """Instantiate a replacement policy by configuration name."""
    if name is ReplacementPolicyName.LRU:
        return LRUPolicy(num_sets, associativity)
    if name is ReplacementPolicyName.FIFO:
        return FIFOPolicy(num_sets, associativity)
    if name is ReplacementPolicyName.RANDOM:
        return RandomPolicy(num_sets, associativity, seed=seed)
    if name is ReplacementPolicyName.PLRU:
        return TreePLRUPolicy(num_sets, associativity)
    if name is ReplacementPolicyName.LER:
        return LERPolicy(num_sets, associativity)
    raise ReplacementError(f"unknown replacement policy: {name}")
