"""Replacement policies for the set-associative cache model.

The paper's evaluation uses a conventional cache (gem5's default LRU); the
extra policies here serve the ablation benches:

* :class:`LRUPolicy` — least recently used (default).
* :class:`FIFOPolicy` — first in, first out.
* :class:`RandomPolicy` — uniform random victim.
* :class:`TreePLRUPolicy` — tree pseudo-LRU, the usual hardware-cheap
  approximation of LRU.
* :class:`LERPolicy` — "least error rate" replacement from the paper's
  reference [13]: prefer evicting the block with the largest accumulated
  unchecked-read exposure, so the most error-prone data leaves the cache.

Every policy is expressed through a *compact state* protocol that is the
single source of truth for its behaviour:

* per-set state is a small array (one row per set) exported and imported as
  a plain list (:meth:`ReplacementPolicy.export_set_state` /
  :meth:`ReplacementPolicy.import_set_state`);
* policy-global scalars (the recency tick, the random generator) live in a
  small mutable list returned by
  :meth:`ReplacementPolicy.compact_globals`, and can be snapshotted and
  restored with :meth:`ReplacementPolicy.export_global_state` /
  :meth:`ReplacementPolicy.import_global_state`;
* all transitions are the three pure-compact hooks
  :meth:`ReplacementPolicy.compact_on_access`,
  :meth:`ReplacementPolicy.compact_on_fill` and
  :meth:`ReplacementPolicy.compact_victim`, which operate on (globals,
  set state) and nothing else.

The classic object hooks (`on_fill`, `on_access`, `victim`) are implemented
*in terms of* the compact transitions by the base class, so the
:class:`~repro.cache.cache.SetAssociativeCache` object path and the batched
engine in :mod:`repro.sim.fastpath` (which replays the compact state
directly) can never disagree.  A subclass that overrides the object hooks
directly opts out of that guarantee and is rejected by the fast path —
unless it sets :attr:`ReplacementPolicy.supports_compact_state` to ``True``,
promising that its overrides still route every state change through the
compact transitions.

Two batched layers sit on top of the scalar transitions for the
structure-of-arrays kernel in :mod:`repro.sim.soa`:

* :meth:`ReplacementPolicy.compact_on_access_batch` /
  :meth:`ReplacementPolicy.compact_on_fill_batch` apply a *sequence* of
  transitions to one set.  The defaults loop over the scalar hooks (so any
  compact-capable policy is batchable); the built-ins override them with
  true vector forms where the policy's math allows (e.g. LRU collapses a
  batch to one tick bump plus a last-touch scatter).
* The ``soa_*`` protocol describes how the SoA kernel may defer transitions
  across interleaved sets (see :attr:`ReplacementPolicy.soa_mode`).  For
  timestamp policies whose tick advances exactly once per access the
  deferred form is *position arithmetic*: the timestamp written by the
  transition at global access position ``p`` is ``base + p + 1``, so the
  kernel only has to remember each way's last touch position.
"""

from __future__ import annotations

import abc

import numpy as np

from ..config import ReplacementPolicyName
from ..errors import ReplacementError
from .block import CacheBlock


class ReplacementPolicy(abc.ABC):
    """Interface shared by all replacement policies.

    Concrete policies implement the compact-state protocol (`_set_row`,
    `compact_on_access`, `compact_on_fill`, `compact_victim`); the object
    hooks below delegate to it.
    """

    #: Third-party subclasses that override the object hooks may set this to
    #: ``True`` to promise that every state change still flows through the
    #: compact transitions; :func:`repro.sim.supports_fast_path` then accepts
    #: them instead of rejecting the override.
    supports_compact_state = False

    #: How the structure-of-arrays kernel may schedule this policy's
    #: transitions relative to the interleaved access stream:
    #:
    #: * ``"immediate"`` — apply every transition scalar, in trace order
    #:   (always correct; the safe default for opt-in third-party policies).
    #: * ``"position"`` — the tick advances exactly once per access (hit or
    #:   fill), so the timestamp written at global access position ``p`` is
    #:   ``soa_tick_base() + p + 1``; transitions may be deferred per set and
    #:   realised from each way's *last* touch position
    #:   (:meth:`soa_apply_last_positions`), victims chosen over the mixed
    #:   stored/deferred timestamps (:meth:`soa_victim_positions`, whose
    #:   base implementation delegates to :meth:`compact_victim`), and
    #:   :meth:`soa_commit` settles the global tick once at the end.
    #: * ``"ordered"`` — transitions touch no policy-global state,
    #:   ``compact_on_fill`` is equivalent to ``compact_on_access``, and
    #:   consecutive duplicate transitions are idempotent (applying a run
    #:   of same-way touches once equals applying it N times); the kernel
    #:   may defer a set's transitions, collapse consecutive duplicates,
    #:   and replay the rest in order via :meth:`compact_on_access_batch`
    #:   before a victim decision or export.
    #: * ``"fill-only"`` — ``compact_on_access`` is a no-op; only fills (and,
    #:   for random policies, victim draws) mutate state, and both are
    #:   applied scalar in trace order.
    soa_mode = "immediate"

    #: Whether :meth:`compact_victim` reads the per-way unchecked-read
    #: exposure argument.  When ``False`` the SoA kernel may skip computing
    #: live exposures at victim time.  Kept ``True`` in the base class so
    #: opt-in third-party policies are always handed real values.
    victim_uses_exposure = True

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ReplacementError("num_sets and associativity must be positive")
        self._num_sets = num_sets
        self._associativity = associativity
        #: Live policy-global state shared by the object path and the batched
        #: engine; mutated in place by the compact transition functions.
        self._globals: list = []

    @property
    def num_sets(self) -> int:
        """Number of sets tracked."""
        return self._num_sets

    @property
    def associativity(self) -> int:
        """Ways per set."""
        return self._associativity

    def _check(self, set_index: int, way: int | None = None) -> None:
        if not 0 <= set_index < self._num_sets:
            raise ReplacementError(f"set index {set_index} out of range")
        if way is not None and not 0 <= way < self._associativity:
            raise ReplacementError(f"way {way} out of range")

    # -- compact-state protocol ------------------------------------------------

    @abc.abstractmethod
    def _set_row(self, set_index: int):
        """The mutable per-set state row backing ``set_index``."""

    def compact_globals(self) -> list:
        """The live policy-global state list (mutated in place by transitions).

        The batched engine passes this list to the compact transition
        functions; because it is the policy's own backing store, no
        write-back step is needed after a batched run.
        """
        return self._globals

    def export_global_state(self) -> list:
        """Snapshot the policy-global state as a plain list."""
        return list(self._globals)

    def import_global_state(self, state: list) -> None:
        """Restore a policy-global snapshot taken by :meth:`export_global_state`."""
        self._globals[:] = list(state)

    def export_set_state(self, set_index: int) -> list:
        """Snapshot one set's compact state as a plain list.

        The returned list is detached from the policy: the batched engine
        mutates it through the compact transitions and writes it back with
        :meth:`import_set_state` when the run finishes.
        """
        self._check(set_index)
        row = self._set_row(set_index)
        return row.tolist() if hasattr(row, "tolist") else list(row)

    def import_set_state(self, set_index: int, state: list) -> None:
        """Write one set's compact state back into the policy's backing store."""
        self._check(set_index)
        row = self._set_row(set_index)
        if len(state) != len(row):
            raise ReplacementError(
                f"set state length {len(state)} != expected {len(row)}"
            )
        row[:] = state

    @abc.abstractmethod
    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Transition for a hit on ``way``, on compact state only."""

    @abc.abstractmethod
    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """Transition for a fill into ``way``, on compact state only."""

    @abc.abstractmethod
    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """Choose a victim among all-valid ways, on compact state only.

        Args:
            global_state: The policy-global state list.
            set_state: The set's compact state row.
            unchecked_reads: Per-way accumulated unchecked-read exposure
                (used by exposure-aware policies such as LER).
        """

    # -- batched transitions ----------------------------------------------------

    def compact_on_access_batch(self, global_state: list, set_state, ways) -> None:
        """Apply ``compact_on_access`` for every way in ``ways``, in order.

        The default is the literal loop over the scalar transition, so the
        batch form is exact for any compact-capable policy; built-ins
        override it with vector forms where their math collapses.
        """
        on_access = self.compact_on_access
        for way in ways:
            on_access(global_state, set_state, way)

    def compact_on_fill_batch(self, global_state: list, set_state, ways) -> None:
        """Apply ``compact_on_fill`` for every way in ``ways``, in order."""
        on_fill = self.compact_on_fill
        for way in ways:
            on_fill(global_state, set_state, way)

    # -- structure-of-arrays deferral protocol (mode "position") ----------------

    def soa_tick_base(self) -> int:
        """The tick base for position arithmetic (mode ``"position"`` only).

        A replay that starts when the policy's tick is ``base`` writes the
        timestamp ``base + p + 1`` at global access position ``p``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not use position-based transitions"
        )

    def soa_apply_last_positions(self, set_state, last_positions, base: int) -> None:
        """Realise deferred transitions from per-way last touch positions.

        Args:
            set_state: The set's compact state row.
            last_positions: Per-way global access position of the way's most
                recent (deferred) transition, or ``-1`` for untouched ways.
            base: The tick base returned by :meth:`soa_tick_base`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not use position-based transitions"
        )

    def soa_commit(self, base: int, num_accesses: int) -> None:
        """Settle the policy-global tick after a position-based replay.

        Args:
            base: The tick base returned by :meth:`soa_tick_base`.
            num_accesses: Accesses replayed (each one transition).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not use position-based transitions"
        )

    def soa_victim_positions(
        self, global_state: list, set_state, last_positions, base: int, unchecked_reads
    ) -> int:
        """Choose a victim without flushing deferred position transitions.

        Part of the ``"position"`` protocol: equivalent to applying
        ``last_positions`` via :meth:`soa_apply_last_positions` and then
        calling :meth:`compact_victim`.  This base implementation builds the
        effective timestamps — ``base + p + 1`` for a way with a deferred
        touch, the stored row value otherwise — and delegates to
        :meth:`compact_victim`, so any position-mode policy gets a correct
        victim for free; policies may override it with a fused form.
        """
        effective = [
            base + position + 1 if position >= 0 else set_state[way]
            for way, position in enumerate(last_positions)
        ]
        return self.compact_victim(global_state, effective, unchecked_reads)

    # -- object hooks (driven by SetAssociativeCache) --------------------------

    def on_access(self, set_index: int, way: int) -> None:
        """A block was accessed (hit)."""
        self._check(set_index, way)
        self.compact_on_access(self._globals, self._set_row(set_index), way)

    def on_fill(self, set_index: int, way: int) -> None:
        """A block was filled (miss handling installed a new line)."""
        self._check(set_index, way)
        self.compact_on_fill(self._globals, self._set_row(set_index), way)

    def victim(self, set_index: int, blocks: list[CacheBlock]) -> int:
        """Choose the way to evict; invalid ways are preferred."""
        self._check(set_index)
        invalid = self._first_invalid(blocks)
        if invalid is not None:
            return invalid
        return int(
            self.compact_victim(
                self._globals,
                self._set_row(set_index),
                [block.unchecked_reads for block in blocks],
            )
        )

    def _first_invalid(self, blocks: list[CacheBlock]) -> int | None:
        for way, block in enumerate(blocks):
            if not block.valid:
                return way
        return None


def _timestamp_batch(global_state: list, set_state, ways) -> None:
    """Vector form of a run of timestamp transitions (LRU/LER/FIFO ticks).

    A batch of ``n`` transitions advances the tick by ``n`` and leaves each
    touched way stamped with the tick of its *last* occurrence — exactly the
    result of the scalar loop, computed with one pass over the unique ways.
    """
    count = len(ways)
    if count == 0:
        return
    tick = global_state[0]
    global_state[0] = tick + count
    if count <= 8:
        for offset, way in enumerate(ways):
            set_state[way] = tick + offset + 1
        return
    arr = np.asarray(ways)
    unique_ways, reversed_first = np.unique(arr[::-1], return_index=True)
    last_offsets = count - 1 - reversed_first
    for way, offset in zip(unique_ways.tolist(), last_offsets.tolist()):
        set_state[way] = tick + offset + 1


class _PositionTickMixin:
    """Position-arithmetic deferral for policies that tick once per access."""

    soa_mode = "position"

    def soa_tick_base(self) -> int:
        """The current tick; position ``p`` maps to ``base + p + 1``."""
        return self._globals[0]

    def soa_apply_last_positions(self, set_state, last_positions, base: int) -> None:
        """Stamp each touched way with the tick of its last deferred touch."""
        for way, position in enumerate(last_positions):
            if position >= 0:
                set_state[way] = base + position + 1

    def soa_commit(self, base: int, num_accesses: int) -> None:
        """One transition per access: the final tick is ``base + n``."""
        self._globals[0] = base + num_accesses


class LRUPolicy(_PositionTickMixin, ReplacementPolicy):
    """True least-recently-used replacement.

    Compact state: per-set last-use timestamps; global state ``[tick]``.
    """

    victim_uses_exposure = False

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._globals = [0]
        self._last_use = np.zeros((num_sets, associativity), dtype=np.int64)

    def _set_row(self, set_index: int):
        return self._last_use[set_index]

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Record a use timestamp."""
        tick = global_state[0] + 1
        global_state[0] = tick
        set_state[way] = tick

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """A fill counts as a use."""
        self.compact_on_access(global_state, set_state, way)

    def compact_on_access_batch(self, global_state: list, set_state, ways) -> None:
        """Vector form: one tick bump plus a last-touch stamp per way."""
        _timestamp_batch(global_state, set_state, ways)

    def compact_on_fill_batch(self, global_state: list, set_state, ways) -> None:
        """Fills are uses, so the batch form is the same."""
        _timestamp_batch(global_state, set_state, ways)

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """The least recently used way (first one on timestamp ties)."""
        if type(set_state) is list:
            return set_state.index(min(set_state))
        return min(range(len(set_state)), key=set_state.__getitem__)

    def soa_victim_positions(
        self, global_state: list, set_state, last_positions, base: int, unchecked_reads
    ) -> int:
        """LRU victim over mixed stored/deferred timestamps, loop-fused.

        A way with a deferred touch is strictly newer than any way without
        one (every stored tick is at most ``base``), so the oldest untouched
        way wins when one exists; otherwise the oldest deferred touch does.
        """
        best = -1
        best_tick = 0
        for way, position in enumerate(last_positions):
            if position < 0:
                tick = set_state[way]
                if best < 0 or tick < best_tick:
                    best_tick = tick
                    best = way
        if best >= 0:
            return best
        return last_positions.index(min(last_positions))


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement: evict the oldest fill.

    Compact state: per-set fill timestamps; global state ``[tick]``.
    """

    soa_mode = "fill-only"
    victim_uses_exposure = False

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._globals = [0]
        self._fill_time = np.zeros((num_sets, associativity), dtype=np.int64)

    def _set_row(self, set_index: int):
        return self._fill_time[set_index]

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Accesses do not affect FIFO order."""

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """Record the fill timestamp."""
        tick = global_state[0] + 1
        global_state[0] = tick
        set_state[way] = tick

    def compact_on_access_batch(self, global_state: list, set_state, ways) -> None:
        """Vector form: accesses are no-ops, so a batch of them is too."""

    def compact_on_fill_batch(self, global_state: list, set_state, ways) -> None:
        """Vector form: one tick bump plus a last-fill stamp per way."""
        _timestamp_batch(global_state, set_state, ways)

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """The oldest fill (first one on timestamp ties)."""
        if type(set_state) is list:
            return set_state.index(min(set_state))
        return min(range(len(set_state)), key=set_state.__getitem__)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection.

    Compact state: none per set; the global state carries the live random
    generator (snapshotted/restored through its bit-generator state, so an
    export → import round-trip detaches the copy from the original stream).
    """

    soa_mode = "fill-only"
    victim_uses_exposure = False

    def __init__(self, num_sets: int, associativity: int, seed: int = 1) -> None:
        super().__init__(num_sets, associativity)
        self._globals = [np.random.default_rng(seed)]
        self._empty_row: list = []

    def _set_row(self, set_index: int):
        return self._empty_row

    def compact_on_access_batch(self, global_state: list, set_state, ways) -> None:
        """Vector form: random replacement keeps no access state."""

    def compact_on_fill_batch(self, global_state: list, set_state, ways) -> None:
        """Vector form: random replacement keeps no fill state."""

    def export_global_state(self) -> list:
        """Snapshot the generator's bit-generator state (a plain dict)."""
        return [self._globals[0].bit_generator.state]

    def import_global_state(self, state: list) -> None:
        """Restore a generator snapshot without sharing the stream."""
        self._globals[0].bit_generator.state = state[0]

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Random replacement keeps no access state."""

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """Random replacement keeps no fill state."""

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """A uniformly random way."""
        return int(global_state[0].integers(0, len(unchecked_reads)))


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU (the common hardware approximation).

    Requires a power-of-two associativity; each set keeps ``ways - 1`` tree
    bits (its compact state).  On an access the bits along the path to the
    accessed way are set to point *away* from it; the victim is found by
    following the bits.
    """

    soa_mode = "ordered"
    victim_uses_exposure = False

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        if associativity & (associativity - 1):
            raise ReplacementError("tree PLRU requires a power-of-two associativity")
        self._tree = np.zeros((num_sets, max(associativity - 1, 1)), dtype=np.int8)
        self._node_bit_by_way: np.ndarray | None = None

    def _set_row(self, set_index: int):
        return self._tree[set_index]

    def _path_table(self) -> np.ndarray:
        """``table[node][way]``: the bit an access to ``way`` writes at
        ``node`` (``-1`` when the way's path does not touch the node)."""
        if self._node_bit_by_way is None:
            associativity = self._associativity
            table = np.full(
                (max(associativity - 1, 1), associativity), -1, dtype=np.int8
            )
            for way in range(associativity):
                node, low, high = 0, 0, associativity
                while high - low > 1:
                    mid = (low + high) // 2
                    if way < mid:
                        table[node, way] = 1
                        node = 2 * node + 1
                        high = mid
                    else:
                        table[node, way] = 0
                        node = 2 * node + 2
                        low = mid
            self._node_bit_by_way = table
        return self._node_bit_by_way

    def compact_on_access_batch(self, global_state: list, set_state, ways) -> None:
        """Vector form: each tree bit ends at the value its *last* toucher set.

        Consecutive duplicate accesses are idempotent, and a batch leaves
        every node pointing away from the last way whose path crossed it —
        exactly the sequential result, computed per node instead of per way.
        """
        count = len(ways)
        if self._associativity <= 1 or count == 0:
            return
        if count <= 16:
            on_access = self.compact_on_access
            for way in ways:
                on_access(global_state, set_state, way)
            return
        table = self._path_table()
        arr = np.asarray(ways)
        for node in range(self._associativity - 1):
            bits = table[node][arr]
            touched = np.flatnonzero(bits >= 0)
            if touched.size:
                set_state[node] = bits[touched[-1]]

    def compact_on_fill_batch(self, global_state: list, set_state, ways) -> None:
        """Fills are uses, so the batch form is the same."""
        self.compact_on_access_batch(global_state, set_state, ways)

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Flip the tree bits along the accessed way's path."""
        associativity = self._associativity
        if associativity <= 1:
            return
        node = 0
        low, high = 0, associativity
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                set_state[node] = 1  # point to the upper half
                node = 2 * node + 1
                high = mid
            else:
                set_state[node] = 0  # point to the lower half
                node = 2 * node + 2
                low = mid

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """A fill counts as a use."""
        self.compact_on_access(global_state, set_state, way)

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """Follow the tree bits to the pseudo-LRU way."""
        associativity = self._associativity
        if associativity == 1:
            return 0
        node = 0
        low, high = 0, associativity
        while high - low > 1:
            mid = (low + high) // 2
            if set_state[node]:
                # The bit points away from the lower half: victim is above.
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        return low


class LERPolicy(_PositionTickMixin, ReplacementPolicy):
    """Least-error-rate replacement (paper reference [13]).

    Evicts the valid block with the largest accumulated unchecked-read
    exposure — the block most likely to hold an uncorrectable error — with
    recency (tracked like LRU) as the tie-breaker.
    """

    victim_uses_exposure = True

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._globals = [0]
        self._last_use = np.zeros((num_sets, associativity), dtype=np.int64)

    def _set_row(self, set_index: int):
        return self._last_use[set_index]

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Record a use timestamp for tie-breaking."""
        tick = global_state[0] + 1
        global_state[0] = tick
        set_state[way] = tick

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """A fill counts as a use."""
        self.compact_on_access(global_state, set_state, way)

    def compact_on_access_batch(self, global_state: list, set_state, ways) -> None:
        """Vector form: one tick bump plus a last-touch stamp per way."""
        _timestamp_batch(global_state, set_state, ways)

    def compact_on_fill_batch(self, global_state: list, set_state, ways) -> None:
        """Fills are uses, so the batch form is the same."""
        _timestamp_batch(global_state, set_state, ways)

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """The most disturbance-exposed way; older last use breaks ties."""
        best_way = 0
        best_key: tuple[int, int] | None = None
        for way, exposure in enumerate(unchecked_reads):
            # Higher exposure first; older (smaller timestamp) breaks ties.
            key = (exposure, -int(set_state[way]))
            if best_key is None or key > best_key:
                best_key = key
                best_way = way
        return best_way


def build_replacement_policy(
    name: ReplacementPolicyName, num_sets: int, associativity: int, seed: int = 1
) -> ReplacementPolicy:
    """Instantiate a replacement policy by configuration name."""
    if name is ReplacementPolicyName.LRU:
        return LRUPolicy(num_sets, associativity)
    if name is ReplacementPolicyName.FIFO:
        return FIFOPolicy(num_sets, associativity)
    if name is ReplacementPolicyName.RANDOM:
        return RandomPolicy(num_sets, associativity, seed=seed)
    if name is ReplacementPolicyName.PLRU:
        return TreePLRUPolicy(num_sets, associativity)
    if name is ReplacementPolicyName.LER:
        return LERPolicy(num_sets, associativity)
    raise ReplacementError(f"unknown replacement policy: {name}")
