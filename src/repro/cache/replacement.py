"""Replacement policies for the set-associative cache model.

The paper's evaluation uses a conventional cache (gem5's default LRU); the
extra policies here serve the ablation benches:

* :class:`LRUPolicy` — least recently used (default).
* :class:`FIFOPolicy` — first in, first out.
* :class:`RandomPolicy` — uniform random victim.
* :class:`TreePLRUPolicy` — tree pseudo-LRU, the usual hardware-cheap
  approximation of LRU.
* :class:`LERPolicy` — "least error rate" replacement from the paper's
  reference [13]: prefer evicting the block with the largest accumulated
  unchecked-read exposure, so the most error-prone data leaves the cache.

Every policy is expressed through a *compact state* protocol that is the
single source of truth for its behaviour:

* per-set state is a small array (one row per set) exported and imported as
  a plain list (:meth:`ReplacementPolicy.export_set_state` /
  :meth:`ReplacementPolicy.import_set_state`);
* policy-global scalars (the recency tick, the random generator) live in a
  small mutable list returned by
  :meth:`ReplacementPolicy.compact_globals`, and can be snapshotted and
  restored with :meth:`ReplacementPolicy.export_global_state` /
  :meth:`ReplacementPolicy.import_global_state`;
* all transitions are the three pure-compact hooks
  :meth:`ReplacementPolicy.compact_on_access`,
  :meth:`ReplacementPolicy.compact_on_fill` and
  :meth:`ReplacementPolicy.compact_victim`, which operate on (globals,
  set state) and nothing else.

The classic object hooks (`on_fill`, `on_access`, `victim`) are implemented
*in terms of* the compact transitions by the base class, so the
:class:`~repro.cache.cache.SetAssociativeCache` object path and the batched
engine in :mod:`repro.sim.fastpath` (which replays the compact state
directly) can never disagree.  A subclass that overrides the object hooks
directly opts out of that guarantee and is rejected by the fast path.
"""

from __future__ import annotations

import abc

import numpy as np

from ..config import ReplacementPolicyName
from ..errors import ReplacementError
from .block import CacheBlock


class ReplacementPolicy(abc.ABC):
    """Interface shared by all replacement policies.

    Concrete policies implement the compact-state protocol (`_set_row`,
    `compact_on_access`, `compact_on_fill`, `compact_victim`); the object
    hooks below delegate to it.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ReplacementError("num_sets and associativity must be positive")
        self._num_sets = num_sets
        self._associativity = associativity
        #: Live policy-global state shared by the object path and the batched
        #: engine; mutated in place by the compact transition functions.
        self._globals: list = []

    @property
    def num_sets(self) -> int:
        """Number of sets tracked."""
        return self._num_sets

    @property
    def associativity(self) -> int:
        """Ways per set."""
        return self._associativity

    def _check(self, set_index: int, way: int | None = None) -> None:
        if not 0 <= set_index < self._num_sets:
            raise ReplacementError(f"set index {set_index} out of range")
        if way is not None and not 0 <= way < self._associativity:
            raise ReplacementError(f"way {way} out of range")

    # -- compact-state protocol ------------------------------------------------

    @abc.abstractmethod
    def _set_row(self, set_index: int):
        """The mutable per-set state row backing ``set_index``."""

    def compact_globals(self) -> list:
        """The live policy-global state list (mutated in place by transitions).

        The batched engine passes this list to the compact transition
        functions; because it is the policy's own backing store, no
        write-back step is needed after a batched run.
        """
        return self._globals

    def export_global_state(self) -> list:
        """Snapshot the policy-global state as a plain list."""
        return list(self._globals)

    def import_global_state(self, state: list) -> None:
        """Restore a policy-global snapshot taken by :meth:`export_global_state`."""
        self._globals[:] = list(state)

    def export_set_state(self, set_index: int) -> list:
        """Snapshot one set's compact state as a plain list.

        The returned list is detached from the policy: the batched engine
        mutates it through the compact transitions and writes it back with
        :meth:`import_set_state` when the run finishes.
        """
        self._check(set_index)
        row = self._set_row(set_index)
        return row.tolist() if hasattr(row, "tolist") else list(row)

    def import_set_state(self, set_index: int, state: list) -> None:
        """Write one set's compact state back into the policy's backing store."""
        self._check(set_index)
        row = self._set_row(set_index)
        if len(state) != len(row):
            raise ReplacementError(
                f"set state length {len(state)} != expected {len(row)}"
            )
        row[:] = state

    @abc.abstractmethod
    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Transition for a hit on ``way``, on compact state only."""

    @abc.abstractmethod
    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """Transition for a fill into ``way``, on compact state only."""

    @abc.abstractmethod
    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """Choose a victim among all-valid ways, on compact state only.

        Args:
            global_state: The policy-global state list.
            set_state: The set's compact state row.
            unchecked_reads: Per-way accumulated unchecked-read exposure
                (used by exposure-aware policies such as LER).
        """

    # -- object hooks (driven by SetAssociativeCache) --------------------------

    def on_access(self, set_index: int, way: int) -> None:
        """A block was accessed (hit)."""
        self._check(set_index, way)
        self.compact_on_access(self._globals, self._set_row(set_index), way)

    def on_fill(self, set_index: int, way: int) -> None:
        """A block was filled (miss handling installed a new line)."""
        self._check(set_index, way)
        self.compact_on_fill(self._globals, self._set_row(set_index), way)

    def victim(self, set_index: int, blocks: list[CacheBlock]) -> int:
        """Choose the way to evict; invalid ways are preferred."""
        self._check(set_index)
        invalid = self._first_invalid(blocks)
        if invalid is not None:
            return invalid
        return int(
            self.compact_victim(
                self._globals,
                self._set_row(set_index),
                [block.unchecked_reads for block in blocks],
            )
        )

    def _first_invalid(self, blocks: list[CacheBlock]) -> int | None:
        for way, block in enumerate(blocks):
            if not block.valid:
                return way
        return None


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used replacement.

    Compact state: per-set last-use timestamps; global state ``[tick]``.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._globals = [0]
        self._last_use = np.zeros((num_sets, associativity), dtype=np.int64)

    def _set_row(self, set_index: int):
        return self._last_use[set_index]

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Record a use timestamp."""
        tick = global_state[0] + 1
        global_state[0] = tick
        set_state[way] = tick

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """A fill counts as a use."""
        self.compact_on_access(global_state, set_state, way)

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """The least recently used way (first one on timestamp ties)."""
        return min(range(len(set_state)), key=set_state.__getitem__)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement: evict the oldest fill.

    Compact state: per-set fill timestamps; global state ``[tick]``.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._globals = [0]
        self._fill_time = np.zeros((num_sets, associativity), dtype=np.int64)

    def _set_row(self, set_index: int):
        return self._fill_time[set_index]

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Accesses do not affect FIFO order."""

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """Record the fill timestamp."""
        tick = global_state[0] + 1
        global_state[0] = tick
        set_state[way] = tick

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """The oldest fill (first one on timestamp ties)."""
        return min(range(len(set_state)), key=set_state.__getitem__)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection.

    Compact state: none per set; the global state carries the live random
    generator (snapshotted/restored through its bit-generator state, so an
    export → import round-trip detaches the copy from the original stream).
    """

    def __init__(self, num_sets: int, associativity: int, seed: int = 1) -> None:
        super().__init__(num_sets, associativity)
        self._globals = [np.random.default_rng(seed)]
        self._empty_row: list = []

    def _set_row(self, set_index: int):
        return self._empty_row

    def export_global_state(self) -> list:
        """Snapshot the generator's bit-generator state (a plain dict)."""
        return [self._globals[0].bit_generator.state]

    def import_global_state(self, state: list) -> None:
        """Restore a generator snapshot without sharing the stream."""
        self._globals[0].bit_generator.state = state[0]

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Random replacement keeps no access state."""

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """Random replacement keeps no fill state."""

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """A uniformly random way."""
        return int(global_state[0].integers(0, len(unchecked_reads)))


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU (the common hardware approximation).

    Requires a power-of-two associativity; each set keeps ``ways - 1`` tree
    bits (its compact state).  On an access the bits along the path to the
    accessed way are set to point *away* from it; the victim is found by
    following the bits.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        if associativity & (associativity - 1):
            raise ReplacementError("tree PLRU requires a power-of-two associativity")
        self._tree = np.zeros((num_sets, max(associativity - 1, 1)), dtype=np.int8)

    def _set_row(self, set_index: int):
        return self._tree[set_index]

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Flip the tree bits along the accessed way's path."""
        associativity = self._associativity
        if associativity <= 1:
            return
        node = 0
        low, high = 0, associativity
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                set_state[node] = 1  # point to the upper half
                node = 2 * node + 1
                high = mid
            else:
                set_state[node] = 0  # point to the lower half
                node = 2 * node + 2
                low = mid

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """A fill counts as a use."""
        self.compact_on_access(global_state, set_state, way)

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """Follow the tree bits to the pseudo-LRU way."""
        associativity = self._associativity
        if associativity == 1:
            return 0
        node = 0
        low, high = 0, associativity
        while high - low > 1:
            mid = (low + high) // 2
            if set_state[node]:
                # The bit points away from the lower half: victim is above.
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        return low


class LERPolicy(ReplacementPolicy):
    """Least-error-rate replacement (paper reference [13]).

    Evicts the valid block with the largest accumulated unchecked-read
    exposure — the block most likely to hold an uncorrectable error — with
    recency (tracked like LRU) as the tie-breaker.
    """

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._globals = [0]
        self._last_use = np.zeros((num_sets, associativity), dtype=np.int64)

    def _set_row(self, set_index: int):
        return self._last_use[set_index]

    def compact_on_access(self, global_state: list, set_state, way: int) -> None:
        """Record a use timestamp for tie-breaking."""
        tick = global_state[0] + 1
        global_state[0] = tick
        set_state[way] = tick

    def compact_on_fill(self, global_state: list, set_state, way: int) -> None:
        """A fill counts as a use."""
        self.compact_on_access(global_state, set_state, way)

    def compact_victim(self, global_state: list, set_state, unchecked_reads) -> int:
        """The most disturbance-exposed way; older last use breaks ties."""
        best_way = 0
        best_key: tuple[int, int] | None = None
        for way, exposure in enumerate(unchecked_reads):
            # Higher exposure first; older (smaller timestamp) breaks ties.
            key = (exposure, -int(set_state[way]))
            if best_key is None or key > best_key:
                best_key = key
                best_way = way
        return best_way


def build_replacement_policy(
    name: ReplacementPolicyName, num_sets: int, associativity: int, seed: int = 1
) -> ReplacementPolicy:
    """Instantiate a replacement policy by configuration name."""
    if name is ReplacementPolicyName.LRU:
        return LRUPolicy(num_sets, associativity)
    if name is ReplacementPolicyName.FIFO:
        return FIFOPolicy(num_sets, associativity)
    if name is ReplacementPolicyName.RANDOM:
        return RandomPolicy(num_sets, associativity, seed=seed)
    if name is ReplacementPolicyName.PLRU:
        return TreePLRUPolicy(num_sets, associativity)
    if name is ReplacementPolicyName.LER:
        return LERPolicy(num_sets, associativity)
    raise ReplacementError(f"unknown replacement policy: {name}")
