"""Counters collected by the cache models.

Two kinds of statistics are kept:

* :class:`CacheStatistics` — the usual hit/miss/eviction counters of a cache
  level, plus the event counts the energy model needs (how many data ways
  were read per access, how many ECC decodes were performed, how many tag
  comparisons happened).
* :class:`ReliabilityStatistics` — the accumulation-specific counters used by
  the reliability engine (checked reads, concealed reads, expected failures).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStatistics:
    """Hit/miss and energy-relevant event counters for one cache level."""

    demand_reads: int = 0
    demand_writes: int = 0
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    data_way_reads: int = 0
    data_way_writes: int = 0
    ecc_decodes: int = 0
    ecc_encodes: int = 0
    tag_comparisons: int = 0

    @property
    def accesses(self) -> int:
        """Total demand accesses (reads + writes)."""
        return self.demand_reads + self.demand_writes

    @property
    def hits(self) -> int:
        """Total demand hits."""
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        """Total demand misses."""
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        """Demand hit rate (0.0 when no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        """Demand miss rate (0.0 when no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def read_fraction(self) -> float:
        """Fraction of demand accesses that are reads."""
        if self.accesses == 0:
            return 0.0
        return self.demand_reads / self.accesses

    @property
    def average_ways_read_per_read(self) -> float:
        """Average number of data ways read per demand read access."""
        if self.demand_reads == 0:
            return 0.0
        return self.data_way_reads / self.demand_reads

    @property
    def average_decodes_per_read(self) -> float:
        """Average number of ECC decodes per demand read access."""
        if self.demand_reads == 0:
            return 0.0
        return self.ecc_decodes / self.demand_reads

    def merge(self, other: "CacheStatistics") -> "CacheStatistics":
        """Return a new statistics object with the counters summed."""
        merged = CacheStatistics()
        for name in vars(merged):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def as_dict(self) -> dict[str, float]:
        """Counters plus derived rates as a flat dictionary."""
        data: dict[str, float] = dict(vars(self))
        data.update(
            accesses=self.accesses,
            hits=self.hits,
            misses=self.misses,
            hit_rate=self.hit_rate,
            miss_rate=self.miss_rate,
            read_fraction=self.read_fraction,
            average_ways_read_per_read=self.average_ways_read_per_read,
            average_decodes_per_read=self.average_decodes_per_read,
        )
        return data


@dataclass
class ReliabilityStatistics:
    """Accumulation and failure-probability counters for one protected cache."""

    checked_reads: int = 0
    concealed_reads: int = 0
    scrub_events: int = 0
    expected_failures: float = 0.0
    max_accumulated_reads: int = 0
    accumulated_reads_sum: int = 0

    @property
    def mean_accumulated_reads(self) -> float:
        """Average exposure (reads since last check) seen at check time."""
        if self.checked_reads == 0:
            return 0.0
        return self.accumulated_reads_sum / self.checked_reads

    @property
    def failure_probability_per_check(self) -> float:
        """Average uncorrectable-error probability per checked read."""
        if self.checked_reads == 0:
            return 0.0
        return self.expected_failures / self.checked_reads

    def record_check(self, exposure: int, failure_probability: float) -> None:
        """Record one ECC-checked delivery.

        Args:
            exposure: Reads accumulated since the previous check (>= 1).
            failure_probability: Uncorrectable-error probability of this
                delivery.
        """
        self.checked_reads += 1
        self.accumulated_reads_sum += exposure
        self.max_accumulated_reads = max(self.max_accumulated_reads, exposure)
        self.expected_failures += failure_probability

    def record_check_batch(self, exposures, failure_probabilities) -> None:
        """Record many ECC-checked deliveries at once.

        Totals match calling :meth:`record_check` once per event in order:
        the integer counters are summed exactly, and the expected-failure
        accumulator performs the same sequential float additions.

        Args:
            exposures: Per-check exposure windows, in delivery order.
            failure_probabilities: Per-check uncorrectable probabilities,
                aligned with ``exposures``.
        """
        exposure_list = list(exposures)
        self.checked_reads += len(exposure_list)
        if exposure_list:
            self.accumulated_reads_sum += sum(exposure_list)
            self.max_accumulated_reads = max(
                self.max_accumulated_reads, max(exposure_list)
            )
        total = self.expected_failures
        for probability in failure_probabilities:
            total += probability
        self.expected_failures = total

    def record_check_array(self, exposures, failure_probabilities) -> None:
        """Record many ECC-checked deliveries from aligned NumPy arrays.

        Same totals as :meth:`record_check_batch`: the integer counters sum
        exactly, and the expected-failure accumulator reproduces the same
        left-to-right float additions via
        :func:`repro.reliability.binomial.sequential_float_sum`.

        Args:
            exposures: Per-check exposure windows (int array), in delivery
                order.
            failure_probabilities: Per-check uncorrectable probabilities
                (float array), aligned with ``exposures``.
        """
        import numpy as np

        from ..reliability.binomial import sequential_float_sum

        exposures = np.asarray(exposures, dtype=np.int64)
        if exposures.size == 0:
            return
        self.checked_reads += int(exposures.size)
        self.accumulated_reads_sum += int(exposures.sum())
        self.max_accumulated_reads = max(
            self.max_accumulated_reads, int(exposures.max())
        )
        self.expected_failures = sequential_float_sum(
            self.expected_failures, failure_probabilities
        )

    def record_concealed(self, count: int = 1) -> None:
        """Record concealed (unchecked) reads."""
        self.concealed_reads += count

    def as_dict(self) -> dict[str, float]:
        """Counters plus derived values as a flat dictionary."""
        data: dict[str, float] = dict(vars(self))
        data.update(
            mean_accumulated_reads=self.mean_accumulated_reads,
            failure_probability_per_check=self.failure_probability_per_check,
        )
        return data
