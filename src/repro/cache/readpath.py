"""Read-path organisation models (paper Figs. 2 and 4).

A read-path model answers, for one demand read of a k-way set:

* which ways' data arrays are driven (speculatively or not),
* which of those reads go through an ECC decoder,
* which ways are left with an *unchecked* (concealed) read, and
* what the access critical path looks like, given component latencies.

Three organisations are modelled:

* :class:`ParallelReadPath` — the conventional fast-access cache of Fig. 2:
  all ways are read in parallel with tag comparison, one MUX-selected way is
  decoded, the remaining ``k-1`` reads are concealed.
* :class:`SerialReadPath` — tag comparison completes first and only the
  hitting way is read and decoded; no concealed reads, but the data access
  no longer overlaps the tag comparison.
* :class:`REAPReadPath` — the paper's proposal (Fig. 4): all ways are read in
  parallel *and* each is decoded by its own ECC decoder before the MUX; no
  read is ever concealed.

The timing model backs the paper's Section V-B argument that REAP does not
lengthen the access: with the decoder before the MUX, ECC decoding overlaps
the tag comparison instead of following it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..config import ReadPathMode
from ..errors import ConfigurationError


@dataclass(frozen=True)
class ReadPathEvents:
    """Per-demand-read event counts produced by a read-path model.

    Attributes:
        ways_read: Number of data ways whose arrays were driven.
        ecc_decodes: Number of ECC decoder activations.
        concealed_ways: Ways (other than the delivered one) that were read
            without an ECC check.
        checked_ways: Ways that were read *and* ECC-checked.
    """

    ways_read: int
    ecc_decodes: int
    concealed_ways: tuple[int, ...]
    checked_ways: tuple[int, ...]


@dataclass(frozen=True)
class ReadPathTiming:
    """Component latencies (in nanoseconds) of the cache read path.

    Attributes:
        tag_read_ns: Tag-array read latency.
        tag_compare_ns: Tag comparator latency.
        data_read_ns: Data-array read latency.
        ecc_decode_ns: ECC decoder latency.
        mux_ns: Way-selection MUX latency.
    """

    tag_read_ns: float = 0.8
    tag_compare_ns: float = 0.3
    data_read_ns: float = 1.2
    ecc_decode_ns: float = 0.4
    mux_ns: float = 0.1

    def __post_init__(self) -> None:
        for name in (
            "tag_read_ns",
            "tag_compare_ns",
            "data_read_ns",
            "ecc_decode_ns",
            "mux_ns",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


class ReadPathModel(abc.ABC):
    """Interface of a read-path organisation."""

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        self._associativity = associativity

    @property
    def associativity(self) -> int:
        """Number of ways driven by the organisation."""
        return self._associativity

    @property
    @abc.abstractmethod
    def mode(self) -> ReadPathMode:
        """The configuration enum value this model implements."""

    @property
    @abc.abstractmethod
    def ecc_decoder_instances(self) -> int:
        """How many physical ECC decoder units the organisation requires."""

    @abc.abstractmethod
    def read_events(self, hit_way: int, valid_ways: list[int]) -> ReadPathEvents:
        """Events for one demand read that hits ``hit_way``.

        Args:
            hit_way: The way that will be delivered.
            valid_ways: Ways of the set currently holding valid blocks.
        """

    @abc.abstractmethod
    def miss_events(self, valid_ways: list[int]) -> ReadPathEvents:
        """Events for one demand read that misses in the set."""

    @abc.abstractmethod
    def access_latency_ns(self, timing: ReadPathTiming) -> float:
        """Critical-path latency of a read hit under this organisation."""

    def _validate_ways(self, hit_way: int | None, valid_ways: list[int]) -> None:
        for way in valid_ways:
            if not 0 <= way < self._associativity:
                raise ConfigurationError(f"way {way} out of range")
        if hit_way is not None and hit_way not in valid_ways:
            raise ConfigurationError("hit way must be one of the valid ways")


class ParallelReadPath(ReadPathModel):
    """Conventional fast-access organisation (paper Fig. 2)."""

    @property
    def mode(self) -> ReadPathMode:
        """Parallel access."""
        return ReadPathMode.PARALLEL

    @property
    def ecc_decoder_instances(self) -> int:
        """A single decoder after the MUX."""
        return 1

    def read_events(self, hit_way: int, valid_ways: list[int]) -> ReadPathEvents:
        """All valid ways are read; only the hit way is decoded."""
        self._validate_ways(hit_way, valid_ways)
        concealed = tuple(w for w in valid_ways if w != hit_way)
        return ReadPathEvents(
            ways_read=len(valid_ways),
            ecc_decodes=1,
            concealed_ways=concealed,
            checked_ways=(hit_way,),
        )

    def miss_events(self, valid_ways: list[int]) -> ReadPathEvents:
        """All valid ways are read speculatively and then all discarded."""
        self._validate_ways(None, valid_ways)
        return ReadPathEvents(
            ways_read=len(valid_ways),
            ecc_decodes=0,
            concealed_ways=tuple(valid_ways),
            checked_ways=(),
        )

    def access_latency_ns(self, timing: ReadPathTiming) -> float:
        """max(tag path, data path) -> MUX -> ECC decode."""
        tag_path = timing.tag_read_ns + timing.tag_compare_ns
        data_path = timing.data_read_ns
        return max(tag_path, data_path) + timing.mux_ns + timing.ecc_decode_ns


class SerialReadPath(ReadPathModel):
    """Tag-first organisation: only the hitting way is read."""

    @property
    def mode(self) -> ReadPathMode:
        """Serial access."""
        return ReadPathMode.SERIAL

    @property
    def ecc_decoder_instances(self) -> int:
        """A single decoder."""
        return 1

    def read_events(self, hit_way: int, valid_ways: list[int]) -> ReadPathEvents:
        """Only the hit way is read and decoded; nothing is concealed."""
        self._validate_ways(hit_way, valid_ways)
        return ReadPathEvents(
            ways_read=1,
            ecc_decodes=1,
            concealed_ways=(),
            checked_ways=(hit_way,),
        )

    def miss_events(self, valid_ways: list[int]) -> ReadPathEvents:
        """A miss reads no data way at all."""
        self._validate_ways(None, valid_ways)
        return ReadPathEvents(
            ways_read=0, ecc_decodes=0, concealed_ways=(), checked_ways=()
        )

    def access_latency_ns(self, timing: ReadPathTiming) -> float:
        """Tag path, then the data read, then ECC decode (no overlap)."""
        return (
            timing.tag_read_ns
            + timing.tag_compare_ns
            + timing.data_read_ns
            + timing.ecc_decode_ns
        )


class REAPReadPath(ReadPathModel):
    """The proposed REAP organisation (paper Fig. 4)."""

    @property
    def mode(self) -> ReadPathMode:
        """REAP access."""
        return ReadPathMode.REAP

    @property
    def ecc_decoder_instances(self) -> int:
        """One decoder per way, placed before the MUX."""
        return self._associativity

    def read_events(self, hit_way: int, valid_ways: list[int]) -> ReadPathEvents:
        """All valid ways are read and every one of them is decoded."""
        self._validate_ways(hit_way, valid_ways)
        return ReadPathEvents(
            ways_read=len(valid_ways),
            ecc_decodes=len(valid_ways),
            concealed_ways=(),
            checked_ways=tuple(valid_ways),
        )

    def miss_events(self, valid_ways: list[int]) -> ReadPathEvents:
        """On a miss every speculative read is still decoded and scrubbed."""
        self._validate_ways(None, valid_ways)
        return ReadPathEvents(
            ways_read=len(valid_ways),
            ecc_decodes=len(valid_ways),
            concealed_ways=(),
            checked_ways=tuple(valid_ways),
        )

    def access_latency_ns(self, timing: ReadPathTiming) -> float:
        """max(tag path, data read + ECC decode) -> MUX.

        Swapping the decoder and the MUX lets decoding overlap the tag
        comparison; REAP is therefore never slower than the conventional
        parallel organisation and can be faster when the tag path dominates.
        """
        tag_path = timing.tag_read_ns + timing.tag_compare_ns
        data_path = timing.data_read_ns + timing.ecc_decode_ns
        return max(tag_path, data_path) + timing.mux_ns


def build_read_path(mode: ReadPathMode, associativity: int) -> ReadPathModel:
    """Instantiate the read-path model for a configuration enum value."""
    if mode is ReadPathMode.PARALLEL:
        return ParallelReadPath(associativity)
    if mode is ReadPathMode.SERIAL:
        return SerialReadPath(associativity)
    if mode is ReadPathMode.REAP:
        return REAPReadPath(associativity)
    raise ConfigurationError(f"unknown read-path mode: {mode}")
