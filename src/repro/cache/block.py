"""Per-cache-block state, including the disturbance-accumulation bookkeeping.

Besides the usual valid/dirty/tag fields, each block carries the state the
reliability model needs:

* ``ones_count`` — how many of the block's data cells store logic '1'; only
  these are susceptible to (unidirectional) read disturbance.
* ``unchecked_reads`` — the number of reads (concealed or demand) the block
  has experienced since its content was last ECC-checked or rewritten.  In a
  conventional parallel-access cache this grows with every access to the set
  and is the paper's "number of concealed reads"; in REAP it stays at zero
  because every read is checked and scrubbed.
* ``reads_since_demand`` — the number of reads since the block was last
  *delivered* to a requester (or installed/overwritten).  This is the ``N``
  of paper Eqs. (3) and (6): for the conventional cache it coincides with the
  unchecked exposure, for REAP it counts how many individually-checked reads
  the delivery window spans.
* lifetime counters used by statistics and the LER replacement policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CacheError


@dataclass(frozen=True)
class ReadExposure:
    """Exposure counters returned when a block's read is ECC-checked.

    Attributes:
        unchecked_window: Reads accumulated since the last ECC check,
            including the current one (the ``N`` of Eq. 3 for a conventional
            cache).
        demand_window: Reads since the last demand delivery, including the
            current one (the ``N`` of Eq. 6 for REAP).
    """

    unchecked_window: int
    demand_window: int


@dataclass
class CacheBlock:
    """State of one cache block (line)."""

    tag: int = 0
    valid: bool = False
    dirty: bool = False
    ones_count: int = 0
    unchecked_reads: int = 0
    reads_since_demand: int = 0
    total_reads: int = 0
    total_concealed_reads: int = 0
    total_checks: int = 0
    fills: int = 0
    last_access_tick: int = field(default=0, compare=False)

    def fill(self, tag: int, ones_count: int, tick: int = 0) -> None:
        """Install new data in the block (a miss fill or a full-line write).

        Filling rewrites every cell, so any accumulated disturbance is gone
        and both exposure windows restart.
        """
        if ones_count < 0:
            raise CacheError("ones_count must be non-negative")
        self.tag = tag
        self.valid = True
        self.dirty = False
        self.ones_count = ones_count
        self.unchecked_reads = 0
        self.reads_since_demand = 0
        self.fills += 1
        self.last_access_tick = tick

    def invalidate(self) -> None:
        """Mark the block invalid (eviction)."""
        self.valid = False
        self.dirty = False
        self.unchecked_reads = 0
        self.reads_since_demand = 0

    def record_concealed_read(self) -> None:
        """The block was speculatively read without an ECC check."""
        if not self.valid:
            raise CacheError("cannot read an invalid block")
        self.unchecked_reads += 1
        self.reads_since_demand += 1
        self.total_reads += 1
        self.total_concealed_reads += 1

    def record_checked_read(self, demand: bool, tick: int = 0) -> ReadExposure:
        """The block was read and its ECC was checked.

        Args:
            demand: ``True`` when this read delivers the block to a requester
                (a demand hit); ``False`` for a REAP-style check of a
                speculatively read way that is not being delivered.
            tick: Monotonic access counter used for recency bookkeeping.

        Returns:
            The exposure windows closed by this check (see
            :class:`ReadExposure`).
        """
        if not self.valid:
            raise CacheError("cannot read an invalid block")
        self.total_reads += 1
        self.reads_since_demand += 1
        unchecked_window = self.unchecked_reads + 1
        demand_window = self.reads_since_demand
        self.unchecked_reads = 0
        self.total_checks += 1
        if demand:
            self.reads_since_demand = 0
        self.last_access_tick = tick
        return ReadExposure(
            unchecked_window=unchecked_window, demand_window=demand_window
        )

    def record_write(self, ones_count: int, tick: int = 0) -> None:
        """The block's data was overwritten by a store hit.

        A write refreshes every cell of the line (the paper's model: writes
        are not subject to read disturbance and rewrite the content), so both
        exposure windows reset.
        """
        if not self.valid:
            raise CacheError("cannot write an invalid block")
        if ones_count < 0:
            raise CacheError("ones_count must be non-negative")
        self.dirty = True
        self.ones_count = ones_count
        self.unchecked_reads = 0
        self.reads_since_demand = 0
        self.last_access_tick = tick

    def matches(self, tag: int) -> bool:
        """``True`` when the block is valid and holds the given tag."""
        return self.valid and self.tag == tag
