"""Two-level cache hierarchy front-end (paper Table I).

The L1 instruction and data caches are conventional SRAM caches: they are not
subject to read disturbance and exist purely to *filter* the access stream so
the shared L2 sees a realistic mix of fills and write-backs, exactly as in
the paper's gem5 setup.  The L2 itself is pluggable: anything implementing
the small :class:`NextLevel` protocol (in practice one of the protected
caches from :mod:`repro.core`) receives the L1 miss and write-back traffic.

Access flow per CPU reference:

* instruction fetch  -> L1I lookup; on miss, an L2 **read** of the block and
  an L1I fill; an L1I eviction is silently dropped (instructions are clean).
* data load          -> L1D lookup; on miss, an L2 **read** and an L1D fill.
* data store         -> L1D lookup (write-allocate); on miss, an L2 **read**
  (fetch-on-write) and an L1D fill, then the store hits.  Dirty L1D victims
  are written back to the L2 as **writes** (write-back policy, Table I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..config import HierarchyConfig
from ..errors import SimulationError
from .cache import SetAssociativeCache


class NextLevel(Protocol):
    """Interface the L2 (or memory-side) model must implement."""

    def read(self, address: int) -> None:
        """Handle a demand read of the block containing ``address``."""
        ...  # pragma: no cover - protocol definition

    def write(self, address: int) -> None:
        """Handle a write (write-back) of the block containing ``address``."""
        ...  # pragma: no cover - protocol definition


@dataclass
class HierarchyStatistics:
    """Reference counts observed at the top of the hierarchy."""

    instruction_fetches: int = 0
    data_reads: int = 0
    data_writes: int = 0
    l2_reads: int = 0
    l2_writebacks: int = 0

    @property
    def total_references(self) -> int:
        """Total CPU-side references."""
        return self.instruction_fetches + self.data_reads + self.data_writes


class CacheHierarchy:
    """L1I + L1D filter in front of a pluggable L2 model."""

    def __init__(
        self,
        config: HierarchyConfig,
        l2: NextLevel,
        seed: int = 1,
    ) -> None:
        """Create the hierarchy.

        Args:
            config: Geometry of the three levels (the L2 entry is only used
                for consistency checks; the supplied ``l2`` object is assumed
                to be built from it).
            l2: The shared second-level cache model.
            seed: Seed forwarded to the L1 replacement policies.
        """
        self._config = config
        self._l1i = SetAssociativeCache(config.l1i, seed=seed)
        self._l1d = SetAssociativeCache(config.l1d, seed=seed + 1)
        self._l2 = l2
        self._stats = HierarchyStatistics()

    # -- introspection ---------------------------------------------------------

    @property
    def l1i(self) -> SetAssociativeCache:
        """The L1 instruction cache."""
        return self._l1i

    @property
    def l1d(self) -> SetAssociativeCache:
        """The L1 data cache."""
        return self._l1d

    @property
    def l2(self) -> NextLevel:
        """The second-level cache model."""
        return self._l2

    @property
    def stats(self) -> HierarchyStatistics:
        """Reference counts observed so far."""
        return self._stats

    # -- reference handling ------------------------------------------------------

    def fetch_instruction(self, address: int) -> None:
        """Handle one instruction fetch."""
        self._stats.instruction_fetches += 1
        result = self._l1i.access(address, is_write=False)
        if not result.hit:
            self._issue_l2_read(address)
            # L1I victims are never dirty; nothing to write back.

    def load(self, address: int) -> None:
        """Handle one data load."""
        self._stats.data_reads += 1
        result = self._l1d.access(address, is_write=False)
        if not result.hit:
            self._issue_l2_read(address)
            self._write_back_if_dirty(result)

    def store(self, address: int) -> None:
        """Handle one data store (write-allocate, write-back)."""
        self._stats.data_writes += 1
        result = self._l1d.access(address, is_write=True)
        if not result.hit:
            # Fetch-on-write: the block is read from the L2 before the store.
            self._issue_l2_read(address)
            self._write_back_if_dirty(result)

    # -- helpers --------------------------------------------------------------

    def _issue_l2_read(self, address: int) -> None:
        self._stats.l2_reads += 1
        self._l2.read(address)

    def _write_back_if_dirty(self, result) -> None:
        evicted = result.evicted
        if evicted is None or not evicted.dirty:
            return
        victim_address = self._l1d.mapper.compose(evicted.tag, evicted.set_index)
        self._stats.l2_writebacks += 1
        try:
            self._l2.write(victim_address)
        except Exception as exc:  # pragma: no cover - defensive re-wrap
            raise SimulationError(f"L2 write-back failed: {exc}") from exc
