"""A single cache set: a small collection of ways with tag lookup."""

from __future__ import annotations

from ..errors import CacheError
from .block import CacheBlock


class CacheSet:
    """The blocks of one set of a set-associative cache."""

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise CacheError("associativity must be positive")
        self._blocks = [CacheBlock() for _ in range(associativity)]

    @property
    def associativity(self) -> int:
        """Number of ways in the set."""
        return len(self._blocks)

    @property
    def blocks(self) -> list[CacheBlock]:
        """The blocks of the set, indexed by way."""
        return self._blocks

    def block(self, way: int) -> CacheBlock:
        """Return the block in the given way."""
        if not 0 <= way < len(self._blocks):
            raise CacheError(f"way {way} out of range")
        return self._blocks[way]

    def lookup(self, tag: int) -> int | None:
        """Return the way holding ``tag``, or ``None`` on a miss."""
        for way, block in enumerate(self._blocks):
            if block.matches(tag):
                return way
        return None

    def valid_ways(self) -> list[int]:
        """Ways currently holding valid blocks."""
        return [way for way, block in enumerate(self._blocks) if block.valid]

    def occupancy(self) -> int:
        """Number of valid blocks in the set."""
        return sum(1 for block in self._blocks if block.valid)

    def is_full(self) -> bool:
        """``True`` when every way holds a valid block."""
        return self.occupancy() == len(self._blocks)
