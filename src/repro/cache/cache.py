"""Protection-agnostic set-associative cache model.

:class:`SetAssociativeCache` implements the functional behaviour every scheme
shares — lookup, replacement, fills, write-back bookkeeping, statistics — and
exposes the per-set block state so the read-path / reliability layer in
:mod:`repro.core` can apply the scheme-specific concealed-read accounting on
top of it.

The data content of blocks is abstracted to a *ones count* (how many cells
store '1'), which is all the unidirectional read-disturbance model needs.
The ones count of newly installed or overwritten blocks is supplied by the
caller (normally sampled by the reliability engine from a configured data
profile).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheLevelConfig, WritePolicy
from ..errors import CacheError
from .address import AddressMapper, DecomposedAddress
from .block import CacheBlock
from .cache_set import CacheSet
from .replacement import ReplacementPolicy, build_replacement_policy
from .statistics import CacheStatistics


@dataclass(frozen=True)
class EvictedBlock:
    """Description of a block that was evicted to make room for a fill.

    Attributes:
        tag: Tag of the evicted block.
        set_index: Set it was evicted from.
        way: Way it occupied.
        dirty: Whether it must be written back to the next level.
        ones_count: Ones count of its data (for write-back energy/reliability).
        unchecked_reads: Disturbance exposure it had accumulated when evicted.
    """

    tag: int
    set_index: int
    way: int
    dirty: bool
    ones_count: int
    unchecked_reads: int


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one demand access to the cache.

    Attributes:
        address: The decomposed request address.
        is_write: Whether the access was a store.
        hit: Whether the lookup hit.
        way: The way that served the access (hit way or fill way).
        evicted: The block evicted by the fill, if any.
        filled: Whether a new block was installed.
    """

    address: DecomposedAddress
    is_write: bool
    hit: bool
    way: int
    evicted: EvictedBlock | None
    filled: bool

    @property
    def set_index(self) -> int:
        """Set index of the access."""
        return self.address.index


class SetAssociativeCache:
    """Functional model of one set-associative cache level."""

    def __init__(self, config: CacheLevelConfig, seed: int = 1) -> None:
        """Create an empty cache with the given geometry.

        Args:
            config: Cache geometry and policies.
            seed: Seed used by stochastic replacement policies.
        """
        self._config = config
        self._mapper = AddressMapper(config)
        # Sets are materialised on first touch: an untouched set is
        # indistinguishable from a freshly built all-invalid one, and large
        # geometries would otherwise pay tens of thousands of block
        # constructions per cache even when a workload touches a few dozen
        # sets.
        self._sets: list[CacheSet | None] = [None] * config.num_sets
        self._replacement: ReplacementPolicy = build_replacement_policy(
            config.replacement, config.num_sets, config.associativity, seed=seed
        )
        self._stats = CacheStatistics()
        self._tick = 0

    # -- introspection ---------------------------------------------------------

    @property
    def config(self) -> CacheLevelConfig:
        """Cache geometry and policies."""
        return self._config

    @property
    def mapper(self) -> AddressMapper:
        """The address mapper of this cache."""
        return self._mapper

    @property
    def stats(self) -> CacheStatistics:
        """Counters collected so far."""
        return self._stats

    @property
    def replacement(self) -> ReplacementPolicy:
        """The replacement policy instance driving victim selection."""
        return self._replacement

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self._config.num_sets

    @property
    def associativity(self) -> int:
        """Ways per set."""
        return self._config.associativity

    def cache_set(self, index: int) -> CacheSet:
        """Return the set at ``index`` (materialising it on first touch)."""
        if not 0 <= index < len(self._sets):
            raise CacheError(f"set index {index} out of range")
        cache_set = self._sets[index]
        if cache_set is None:
            cache_set = self._sets[index] = CacheSet(self._config.associativity)
        return cache_set

    def peek_set(self, index: int) -> CacheSet | None:
        """Set at ``index`` if already materialised, ``None`` otherwise.

        Unlike :meth:`cache_set` this never materialises: an untouched set
        is all-invalid by construction, so callers scanning for resident
        blocks (like the batched engines' patrol replay) can skip it
        without paying for its block objects.
        """
        if not 0 <= index < len(self._sets):
            raise CacheError(f"set index {index} out of range")
        return self._sets[index]

    def blocks_in_set(self, index: int) -> list[CacheBlock]:
        """Return the blocks of the set at ``index``."""
        return self.cache_set(index).blocks

    def contains(self, address: int) -> bool:
        """``True`` when the block containing ``address`` is resident."""
        decomposed = self._mapper.decompose(address)
        return self.cache_set(decomposed.index).lookup(decomposed.tag) is not None

    def occupancy(self) -> int:
        """Total number of valid blocks."""
        return sum(s.occupancy() for s in self._sets if s is not None)

    # -- access path -----------------------------------------------------------

    def access(
        self, address: int, is_write: bool, fill_ones_count: int = 0
    ) -> AccessResult:
        """Perform one demand access.

        On a miss a victim is chosen, evicted (reported in the result), and a
        new block is installed with ``fill_ones_count`` ones.  On a write hit
        the block is marked dirty and its ones count replaced by
        ``fill_ones_count``.

        The method performs *functional* bookkeeping only; concealed-read
        accounting and ECC checking are applied by the protection schemes in
        :mod:`repro.core`, which observe the returned :class:`AccessResult`
        and the per-set block state.

        Args:
            address: Physical byte address of the request.
            is_write: ``True`` for a store.
            fill_ones_count: Ones count of the data installed on a miss or
                written on a store.

        Returns:
            An :class:`AccessResult` describing what happened.
        """
        self._tick += 1
        decomposed = self._mapper.decompose(address)
        target_set = self.cache_set(decomposed.index)
        way = target_set.lookup(decomposed.tag)

        # Every access drives all tag comparators of the set.
        self._stats.tag_comparisons += self._config.associativity

        if is_write:
            self._stats.demand_writes += 1
        else:
            self._stats.demand_reads += 1

        if way is not None:
            if is_write:
                self._stats.write_hits += 1
                target_set.block(way).record_write(fill_ones_count, tick=self._tick)
                self._stats.data_way_writes += 1
            else:
                self._stats.read_hits += 1
            self._replacement.on_access(decomposed.index, way)
            return AccessResult(
                address=decomposed,
                is_write=is_write,
                hit=True,
                way=way,
                evicted=None,
                filled=False,
            )

        # Miss path: choose a victim, evict, fill.
        if is_write:
            self._stats.write_misses += 1
        else:
            self._stats.read_misses += 1

        victim_way = self._replacement.victim(decomposed.index, target_set.blocks)
        victim_block = target_set.block(victim_way)
        evicted: EvictedBlock | None = None
        if victim_block.valid:
            evicted = EvictedBlock(
                tag=victim_block.tag,
                set_index=decomposed.index,
                way=victim_way,
                dirty=victim_block.dirty,
                ones_count=victim_block.ones_count,
                unchecked_reads=victim_block.unchecked_reads,
            )
            self._stats.evictions += 1
            if victim_block.dirty:
                self._stats.dirty_evictions += 1

        victim_block.fill(decomposed.tag, fill_ones_count, tick=self._tick)
        self._stats.fills += 1
        self._stats.data_way_writes += 1
        if is_write:
            # Write-allocate: the incoming store dirties the freshly filled line.
            victim_block.record_write(fill_ones_count, tick=self._tick)
        self._replacement.on_fill(decomposed.index, victim_way)

        return AccessResult(
            address=decomposed,
            is_write=is_write,
            hit=False,
            way=victim_way,
            evicted=evicted,
            filled=True,
        )

    def invalidate_all(self) -> None:
        """Invalidate every block (used between experiment phases)."""
        for cache_set in self._sets:
            if cache_set is None:
                continue
            for block in cache_set.blocks:
                block.invalidate()

    def resident_blocks(self) -> list[tuple[int, int, CacheBlock]]:
        """All valid blocks as (set_index, way, block) triples."""
        resident = []
        for set_index, cache_set in enumerate(self._sets):
            if cache_set is None:
                continue
            for way, block in enumerate(cache_set.blocks):
                if block.valid:
                    resident.append((set_index, way, block))
        return resident

    @property
    def write_policy(self) -> WritePolicy:
        """Write policy of this cache level."""
        return self._config.write_policy
