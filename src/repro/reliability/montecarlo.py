"""Monte-Carlo fault injection for read-disturbance accumulation.

The closed-form math in :mod:`repro.reliability.binomial` assumes idealised
independent Bernoulli flips; this module validates it (and the REAP scheme's
behaviour) against a bit-true simulation: a block stored in an
:class:`repro.mram.STTBlockArray` is actually read, disturbed, ECC-decoded and
scrubbed, and uncorrectable / silently-corrupted outcomes are counted.

Because realistic disturbance probabilities (1e-8) would need billions of
trials, the harness accepts an elevated ``disturb_probability`` — the shapes
of Eqs. (3)/(6) are probability-level-independent, so an accelerated test at
p = 1e-3 exercises exactly the same mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MTJConfig
from ..ecc import DecodeStatus, ECCScheme
from ..errors import ConfigurationError
from ..mram import STTBlockArray


@dataclass(frozen=True)
class InjectionResult:
    """Outcome counts of a fault-injection campaign.

    Attributes:
        trials: Number of independent block lifetimes simulated.
        clean: Lifetimes that ended with correct data and no correction needed.
        corrected: Lifetimes where the final check corrected the data.
        detected_uncorrectable: Lifetimes ending in a detected uncorrectable error.
        silent_corruptions: Lifetimes where the decoder claimed success but
            the delivered data differed from the golden data.
    """

    trials: int
    clean: int
    corrected: int
    detected_uncorrectable: int
    silent_corruptions: int

    @property
    def failures(self) -> int:
        """Total uncorrectable outcomes (detected + silent)."""
        return self.detected_uncorrectable + self.silent_corruptions

    @property
    def failure_rate(self) -> float:
        """Empirical probability of an uncorrectable outcome."""
        if self.trials == 0:
            return 0.0
        return self.failures / self.trials

    @property
    def success_rate(self) -> float:
        """Empirical probability of correct data delivery."""
        if self.trials == 0:
            return 0.0
        return (self.clean + self.corrected) / self.trials


class FaultInjectionCampaign:
    """Drives bit-true blocks through conventional and REAP read sequences."""

    def __init__(
        self,
        ecc: ECCScheme,
        disturb_probability: float,
        mtj: MTJConfig | None = None,
        seed: int = 1,
    ) -> None:
        """Create a campaign.

        Args:
            ecc: The block ECC scheme (its ``data_bits`` define the block width).
            disturb_probability: Per-read, per-cell disturbance probability
                used by the bit-true array (can be elevated for acceleration).
            mtj: MTJ operating point used for write-failure behaviour.
            seed: Seed for the campaign's random generator.
        """
        if not 0.0 <= disturb_probability <= 1.0:
            raise ConfigurationError("disturb_probability must be in [0, 1]")
        self._ecc = ecc
        self._disturb_probability = disturb_probability
        self._mtj = mtj or MTJConfig()
        self._rng = np.random.default_rng(seed)

    def _random_data(self, ones_fraction: float) -> np.ndarray:
        data = (
            self._rng.random(self._ecc.data_bits) < ones_fraction
        ).astype(np.uint8)
        return data

    def _new_block(self, codeword: np.ndarray) -> STTBlockArray:
        block = STTBlockArray(
            num_bits=codeword.size,
            mtj=self._mtj,
            disturb_probability=self._disturb_probability,
            write_failure_probability=0.0,
            rng=self._rng,
        )
        block.write(codeword)
        return block

    def run_conventional(
        self, num_reads: int, trials: int, ones_fraction: float = 0.5
    ) -> InjectionResult:
        """Simulate lifetimes where only the final read is ECC-checked.

        Each trial writes fresh random data, performs ``num_reads - 1``
        concealed reads (disturbing but never checking), then decodes on the
        final demand read.
        """
        return self._run(num_reads, trials, ones_fraction, check_every_read=False)

    def run_reap(
        self, num_reads: int, trials: int, ones_fraction: float = 0.5
    ) -> InjectionResult:
        """Simulate lifetimes where every read is ECC-checked and scrubbed."""
        return self._run(num_reads, trials, ones_fraction, check_every_read=True)

    def _run(
        self,
        num_reads: int,
        trials: int,
        ones_fraction: float,
        check_every_read: bool,
    ) -> InjectionResult:
        if num_reads < 1:
            raise ConfigurationError("num_reads must be >= 1")
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        if not 0.0 <= ones_fraction <= 1.0:
            raise ConfigurationError("ones_fraction must be in [0, 1]")

        clean = corrected = detected = silent = 0
        for _ in range(trials):
            golden = self._random_data(ones_fraction)
            codeword = self._ecc.encode(golden)
            block = self._new_block(codeword)

            outcome_status = DecodeStatus.CLEAN
            failed = False
            was_corrected = False
            for read_index in range(num_reads):
                block.read()
                is_last = read_index == num_reads - 1
                if check_every_read or is_last:
                    stored = block.snapshot()
                    result = self._ecc.decode(stored)
                    if result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
                        outcome_status = result.status
                        failed = True
                        break
                    if not np.array_equal(result.data, golden):
                        outcome_status = DecodeStatus.MISCORRECTED
                        failed = True
                        break
                    if result.status is DecodeStatus.CORRECTED:
                        was_corrected = True
                        # REAP scrubs the array with the corrected codeword.
                        if check_every_read:
                            block.scrub(self._ecc.encode(result.data))

            if failed:
                if outcome_status is DecodeStatus.DETECTED_UNCORRECTABLE:
                    detected += 1
                else:
                    silent += 1
            elif was_corrected:
                corrected += 1
            else:
                clean += 1

        return InjectionResult(
            trials=trials,
            clean=clean,
            corrected=corrected,
            detected_uncorrectable=detected,
            silent_corruptions=silent,
        )

    def compare(
        self, num_reads: int, trials: int, ones_fraction: float = 0.5
    ) -> tuple[InjectionResult, InjectionResult]:
        """Run both schemes with the same parameters and return (conventional, reap)."""
        conventional = self.run_conventional(num_reads, trials, ones_fraction)
        reap = self.run_reap(num_reads, trials, ones_fraction)
        return conventional, reap
