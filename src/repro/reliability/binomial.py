"""Closed-form block-failure probabilities (paper Eqs. 2, 3 and 6).

A cache block with ``n`` cells storing '1' is read; each '1' cell is
independently disturbed with probability ``p`` per read.  With an ECC that
corrects up to ``t`` errors per block:

* **Single checked read** (Eq. 2 for t=1): the block is delivered correctly
  when at most ``t`` cells flipped, ``P_corr = P[X <= t]`` with
  ``X ~ Binomial(n, p)``.
* **Accumulated concealed reads** (Eq. 3): ``N-1`` concealed reads plus the
  final demand read expose the block to ``N·n`` Bernoulli trials before the
  single ECC check, so ``P_corr_acc = P[X <= t]`` with
  ``X ~ Binomial(N·n, p)``.
* **REAP** (Eq. 6): every one of the ``N`` reads is checked (and the block
  scrubbed), so the block survives when *each* read individually stays within
  the ECC capability: ``P_corr_REAP = (P[X <= t])^N`` with
  ``X ~ Binomial(n, p)``.

The paper uses ``t = 1`` (SEC) throughout; the functions here take ``t`` as a
parameter so ECC-strength ablations reuse the same math.

Numerical care: failure probabilities of interest range from ~1e-15 to ~1e-2,
so the *failure* side is always computed directly as an upper binomial tail
(``scipy.stats.binom.sf``) rather than as ``1 - P_corr``, which would lose
precision below ~1e-12.

Note on Eq. (3)'s trial count: the paper defines ``N`` as "the number of
concealed reads ... plus one (to count the last read access)", i.e. the total
number of physical reads between consecutive ECC checks.  All functions here
follow that convention: ``num_reads`` is the total read count, ``>= 1``.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from ..errors import ConfigurationError


def _validate(p_cell: float, num_ones: int, num_reads: int, correctable: int) -> None:
    if not 0.0 <= p_cell <= 1.0:
        raise ConfigurationError("p_cell must be in [0, 1]")
    if num_ones < 0:
        raise ConfigurationError("num_ones must be non-negative")
    if num_reads < 1:
        raise ConfigurationError("num_reads must be >= 1 (the demand read itself)")
    if correctable < 0:
        raise ConfigurationError("correctable must be non-negative")


def binomial_tail_ge(num_trials: int, p: float, k: int) -> float:
    """``P[X >= k]`` for ``X ~ Binomial(num_trials, p)``, accurate for tiny tails."""
    if num_trials < 0:
        raise ConfigurationError("num_trials must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("p must be in [0, 1]")
    if k <= 0:
        return 1.0
    if k > num_trials:
        return 0.0
    return float(stats.binom.sf(k - 1, num_trials, p))


def block_correct_probability(
    p_cell: float, num_ones: int, correctable: int = 1
) -> float:
    """Eq. (2): probability a single checked read delivers correct data."""
    _validate(p_cell, num_ones, 1, correctable)
    return 1.0 - binomial_tail_ge(num_ones, p_cell, correctable + 1)


def block_failure_probability(
    p_cell: float, num_ones: int, correctable: int = 1
) -> float:
    """Complement of Eq. (2): uncorrectable-error probability of one read."""
    _validate(p_cell, num_ones, 1, correctable)
    return binomial_tail_ge(num_ones, p_cell, correctable + 1)


def accumulated_correct_probability(
    p_cell: float, num_ones: int, num_reads: int, correctable: int = 1
) -> float:
    """Eq. (3): correct-delivery probability after ``num_reads`` unchecked reads.

    Args:
        p_cell: Per-read, per-cell disturbance probability.
        num_ones: Number of '1' cells in the block.
        num_reads: Total reads between ECC checks (concealed reads + the
            final demand read); ``num_reads = 1`` degenerates to Eq. (2).
        correctable: ECC correction capability ``t``.
    """
    _validate(p_cell, num_ones, num_reads, correctable)
    return 1.0 - binomial_tail_ge(num_reads * num_ones, p_cell, correctable + 1)


def accumulated_failure_probability(
    p_cell: float, num_ones: int, num_reads: int, correctable: int = 1
) -> float:
    """Complement of Eq. (3): uncorrectable-error probability with accumulation."""
    _validate(p_cell, num_ones, num_reads, correctable)
    return binomial_tail_ge(num_reads * num_ones, p_cell, correctable + 1)


def reap_correct_probability(
    p_cell: float, num_ones: int, num_reads: int, correctable: int = 1
) -> float:
    """Eq. (6): correct-delivery probability when every read is ECC-checked."""
    _validate(p_cell, num_ones, num_reads, correctable)
    single_failure = binomial_tail_ge(num_ones, p_cell, correctable + 1)
    if single_failure >= 1.0:
        return 0.0
    return math.exp(num_reads * math.log1p(-single_failure))


def reap_failure_probability(
    p_cell: float, num_ones: int, num_reads: int, correctable: int = 1
) -> float:
    """Complement of Eq. (6), computed without cancellation for tiny values."""
    _validate(p_cell, num_ones, num_reads, correctable)
    single_failure = binomial_tail_ge(num_ones, p_cell, correctable + 1)
    if single_failure >= 1.0:
        return 1.0
    return -math.expm1(num_reads * math.log1p(-single_failure))


def _validate_arrays(p_cell: float, num_ones: np.ndarray, num_reads: np.ndarray) -> None:
    if not 0.0 <= p_cell <= 1.0:
        raise ConfigurationError("p_cell must be in [0, 1]")
    if num_ones.size and int(num_ones.min()) < 0:
        raise ConfigurationError("num_ones must be non-negative")
    if num_reads.size and int(num_reads.min()) < 1:
        raise ConfigurationError("num_reads must be >= 1 (the demand read itself)")


def binomial_tail_ge_array(num_trials: np.ndarray, p: float, k: int) -> np.ndarray:
    """Vectorised :func:`binomial_tail_ge` over an array of trial counts.

    Element-for-element identical to the scalar function: the same
    ``scipy.stats.binom.sf`` evaluation is applied to every entry, with the
    same short-circuits for ``k <= 0`` and ``k > num_trials``.
    """
    trials = np.asarray(num_trials, dtype=np.int64)
    if trials.size and int(trials.min()) < 0:
        raise ConfigurationError("num_trials must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("p must be in [0, 1]")
    if k <= 0:
        return np.ones(trials.shape, dtype=float)
    tail = np.asarray(stats.binom.sf(k - 1, np.maximum(trials, k), p), dtype=float)
    return np.where(k > trials, 0.0, tail)


def block_failure_probabilities(
    p_cell: float, num_ones: np.ndarray, correctable: int = 1
) -> np.ndarray:
    """Vectorised :func:`block_failure_probability` over an array of ones counts."""
    ones = np.asarray(num_ones, dtype=np.int64)
    _validate_arrays(p_cell, ones, np.ones(0, dtype=np.int64))
    if correctable < 0:
        raise ConfigurationError("correctable must be non-negative")
    return binomial_tail_ge_array(ones, p_cell, correctable + 1)


def accumulated_failure_probabilities(
    p_cell: float, num_ones: np.ndarray, num_reads: np.ndarray, correctable: int = 1
) -> np.ndarray:
    """Vectorised :func:`accumulated_failure_probability` over aligned arrays.

    ``num_ones`` and ``num_reads`` are broadcast against each other; each
    output entry equals the scalar function evaluated at that entry.
    """
    ones = np.asarray(num_ones, dtype=np.int64)
    reads = np.asarray(num_reads, dtype=np.int64)
    _validate_arrays(p_cell, ones, reads)
    if correctable < 0:
        raise ConfigurationError("correctable must be non-negative")
    return binomial_tail_ge_array(reads * ones, p_cell, correctable + 1)


def reap_failure_probabilities(
    p_cell: float, num_ones: np.ndarray, num_reads: np.ndarray, correctable: int = 1
) -> np.ndarray:
    """Vectorised :func:`reap_failure_probability` over aligned arrays.

    The binomial tails are evaluated in one vectorised call; the final
    ``-expm1(N * log1p(-tail))`` transform reuses the scalar ``math``
    routines per entry so the results stay bit-identical to the scalar
    function (the arrays here are typically small sets of unique
    ``(ones, window)`` pairs).
    """
    ones = np.asarray(num_ones, dtype=np.int64)
    reads = np.asarray(num_reads, dtype=np.int64)
    _validate_arrays(p_cell, ones, reads)
    if correctable < 0:
        raise ConfigurationError("correctable must be non-negative")
    ones, reads = np.broadcast_arrays(ones, reads)
    single = binomial_tail_ge_array(ones, p_cell, correctable + 1)
    out = np.empty(single.shape, dtype=float)
    flat_single = single.ravel()
    flat_reads = reads.ravel()
    flat_out = out.ravel()
    for i in range(flat_single.size):
        tail = float(flat_single[i])
        if tail >= 1.0:
            flat_out[i] = 1.0
        else:
            flat_out[i] = -math.expm1(int(flat_reads[i]) * math.log1p(-tail))
    return out


def sequential_float_sum(initial: float, addends) -> float:
    """Left-to-right float sum of ``addends`` starting from ``initial``.

    Implemented as a seeded cumulative sum: ``np.cumsum`` accumulates
    sequentially, so the final element is bit-identical to the scalar loop
    ``for a in addends: initial += a`` — unlike ``np.sum``, whose pairwise
    reduction rounds differently.  This is the one sanctioned way the
    batched engines fold deferred probability/energy addends into an
    accumulator without breaking equivalence with the reference loop.
    """
    count = len(addends)
    if count == 0:
        return initial
    seeded = np.empty(count + 1, dtype=float)
    seeded[0] = initial
    seeded[1:] = addends
    return float(np.cumsum(seeded)[-1])


def resolve_unique_keys(*columns: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
    """Deduplicate aligned non-negative integer key columns.

    The batched engines defer every failure-probability evaluation as a
    small integer key (e.g. ``(delivery kind, ones count, window)``) and
    evaluate only the unique keys.  This helper packs the columns into one
    ``int64`` word per row and deduplicates with a single 1-D
    :func:`numpy.unique` — sorting one machine word per key instead of
    lexsorting a 2-D array, which is what keeps resolution cheap for the
    larger groups the structure-of-arrays kernel produces.

    Args:
        columns: Aligned 1-D arrays of non-negative integers.

    Returns:
        ``(unique_columns, inverse)`` where ``unique_columns[k][j]`` is
        column ``k`` of unique key ``j`` and
        ``unique_columns[k][inverse]`` reconstructs the input column.

    Raises:
        ConfigurationError: if any entry is negative or the packed keys
            exceed 63 bits.
    """
    arrays = [np.asarray(column, dtype=np.int64) for column in columns]
    if not arrays:
        raise ConfigurationError("at least one key column is required")
    if arrays[0].size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return [empty for _ in arrays], np.zeros(0, dtype=np.intp)
    widths = []
    for column in arrays:
        low, high = int(column.min()), int(column.max())
        if low < 0:
            raise ConfigurationError("key columns must be non-negative")
        widths.append(max(1, high.bit_length()))
    if sum(widths) > 63:
        raise ConfigurationError("packed key exceeds 63 bits")
    packed = arrays[0].copy()
    for column, width in zip(arrays[1:], widths[1:]):
        packed <<= width
        packed |= column
    unique_packed, inverse = np.unique(packed, return_inverse=True)
    unique_columns: list[np.ndarray] = []
    for width in reversed(widths[1:]):
        unique_columns.append(unique_packed & ((1 << width) - 1))
        unique_packed = unique_packed >> width
    unique_columns.append(unique_packed)
    unique_columns.reverse()
    return unique_columns, inverse.reshape(-1)


def accumulation_penalty(
    p_cell: float, num_ones: int, num_reads: int, correctable: int = 1
) -> float:
    """Ratio of accumulated to single-read failure probability.

    This is the "orders of magnitude" factor the paper's Section III-B example
    highlights: 50 concealed reads raise the uncorrectable-error probability
    of a 100-ones block from 5.0e-13 to 1.3e-9, a penalty of ~2.6e3.
    """
    base = block_failure_probability(p_cell, num_ones, correctable)
    accumulated = accumulated_failure_probability(
        p_cell, num_ones, num_reads, correctable
    )
    if base == 0.0:
        return math.inf if accumulated > 0.0 else 1.0
    return accumulated / base


def reap_improvement_factor(
    p_cell: float, num_ones: int, num_reads: int, correctable: int = 1
) -> float:
    """Factor by which REAP lowers the failure probability vs. accumulation.

    For the paper's Section IV example (100 ones, p = 1e-8, 50 reads) this is
    about 50x: 1.3e-9 (conventional) versus 2.6e-11 (REAP).
    """
    reap = reap_failure_probability(p_cell, num_ones, num_reads, correctable)
    accumulated = accumulated_failure_probability(
        p_cell, num_ones, num_reads, correctable
    )
    if reap == 0.0:
        return math.inf if accumulated > 0.0 else 1.0
    return accumulated / reap


def expected_disturbed_bits(p_cell: float, num_ones: int, num_reads: int) -> float:
    """Expected number of flipped cells after ``num_reads`` unchecked reads."""
    _validate(p_cell, num_ones, num_reads, 0)
    if num_ones == 0:
        return 0.0
    per_cell = -math.expm1(num_reads * math.log1p(-p_cell)) if p_cell < 1.0 else 1.0
    return num_ones * per_cell
