"""Mean-time-to-failure computation from per-access failure probabilities.

The paper reports reliability as the cache MTTF of REAP-cache normalised to
the conventional cache (Fig. 5).  With per-demand-read uncorrectable-error
probabilities ``p_i`` collected over a simulated interval of length ``T``:

* expected failures over the interval: ``E = Σ p_i``
* failure rate: ``λ = E / T``
* MTTF: ``1 / λ = T / E``

Because both schemes are evaluated over the same trace (same ``T``), the MTTF
improvement reduces to the ratio of expected failure counts, which is how the
figure builders compute it.  Absolute MTTF values (in seconds / years) are
also exposed for completeness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import AnalysisError, ConfigurationError
from ..units import seconds_to_years


@dataclass(frozen=True)
class MTTFResult:
    """MTTF summary for one cache scheme over one workload.

    Attributes:
        expected_failures: Sum of per-access uncorrectable-error
            probabilities over the simulated interval.
        simulated_time_s: Length of the simulated interval in seconds.
        num_accesses: Number of demand reads contributing to the sum.
    """

    expected_failures: float
    simulated_time_s: float
    num_accesses: int

    def __post_init__(self) -> None:
        if self.expected_failures < 0:
            raise ConfigurationError("expected_failures must be non-negative")
        if self.simulated_time_s <= 0:
            raise ConfigurationError("simulated_time_s must be positive")
        if self.num_accesses < 0:
            raise ConfigurationError("num_accesses must be non-negative")

    @property
    def failure_rate_per_second(self) -> float:
        """Failure rate λ in failures per second."""
        return self.expected_failures / self.simulated_time_s

    @property
    def mttf_seconds(self) -> float:
        """Mean time to failure in seconds (infinite when no failures)."""
        if self.expected_failures == 0.0:
            return math.inf
        return self.simulated_time_s / self.expected_failures

    @property
    def mttf_years(self) -> float:
        """Mean time to failure in years."""
        return seconds_to_years(self.mttf_seconds)

    @property
    def failures_per_access(self) -> float:
        """Average uncorrectable-error probability per demand read."""
        if self.num_accesses == 0:
            return 0.0
        return self.expected_failures / self.num_accesses


def mttf_from_probabilities(
    failure_probabilities: Iterable[float], simulated_time_s: float
) -> MTTFResult:
    """Build an :class:`MTTFResult` from raw per-access probabilities."""
    probabilities = list(failure_probabilities)
    for p in probabilities:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError("failure probabilities must be in [0, 1]")
    return MTTFResult(
        expected_failures=float(sum(probabilities)),
        simulated_time_s=simulated_time_s,
        num_accesses=len(probabilities),
    )


def mttf_improvement(baseline: MTTFResult, improved: MTTFResult) -> float:
    """MTTF of ``improved`` normalised to ``baseline`` (the paper's Fig. 5 metric).

    Raises:
        AnalysisError: if the two results cover different simulated intervals
            (the ratio would then mix time scales).
    """
    if not math.isclose(
        baseline.simulated_time_s, improved.simulated_time_s, rel_tol=1e-9
    ):
        raise AnalysisError(
            "MTTF improvement requires both schemes to be evaluated over the "
            "same simulated interval"
        )
    if improved.expected_failures == 0.0:
        return math.inf
    return baseline.expected_failures / improved.expected_failures


def geometric_mean_improvement(improvements: Sequence[float]) -> float:
    """Geometric mean of per-workload improvement factors.

    Finite values only; infinite improvements (zero failures in the improved
    scheme) are excluded with the caller expected to report them separately.
    """
    finite = [x for x in improvements if math.isfinite(x) and x > 0]
    if not finite:
        raise AnalysisError("no finite positive improvement factors to average")
    return math.exp(sum(math.log(x) for x in finite) / len(finite))


def arithmetic_mean_improvement(improvements: Sequence[float]) -> float:
    """Arithmetic mean of per-workload improvement factors (paper's "average")."""
    finite = [x for x in improvements if math.isfinite(x)]
    if not finite:
        raise AnalysisError("no finite improvement factors to average")
    return sum(finite) / len(finite)
