"""Reliability mathematics: Eqs. (2)/(3)/(6), accumulation tracking, MTTF, MC.

Public surface:

* closed-form block probabilities (:mod:`repro.reliability.binomial`);
* :class:`AccumulationTracker` / :class:`ConcealedReadHistogram` — the
  Fig. 3 characterisation machinery;
* :class:`MTTFResult` and helpers — the Fig. 5 metric;
* :class:`FaultInjectionCampaign` — bit-true Monte-Carlo validation.
"""

from .accumulation import (
    AccessSample,
    AccumulationTracker,
    ConcealedReadHistogram,
    HistogramBin,
)
from .binomial import (
    accumulated_correct_probability,
    accumulated_failure_probabilities,
    accumulated_failure_probability,
    accumulation_penalty,
    binomial_tail_ge,
    binomial_tail_ge_array,
    block_correct_probability,
    block_failure_probabilities,
    block_failure_probability,
    expected_disturbed_bits,
    reap_correct_probability,
    reap_failure_probabilities,
    reap_failure_probability,
    reap_improvement_factor,
)
from .montecarlo import FaultInjectionCampaign, InjectionResult
from .mttf import (
    MTTFResult,
    arithmetic_mean_improvement,
    geometric_mean_improvement,
    mttf_from_probabilities,
    mttf_improvement,
)

__all__ = [
    "AccessSample",
    "AccumulationTracker",
    "ConcealedReadHistogram",
    "HistogramBin",
    "block_correct_probability",
    "block_failure_probability",
    "accumulated_correct_probability",
    "accumulated_failure_probability",
    "block_failure_probabilities",
    "accumulated_failure_probabilities",
    "reap_failure_probabilities",
    "binomial_tail_ge_array",
    "reap_correct_probability",
    "reap_failure_probability",
    "accumulation_penalty",
    "reap_improvement_factor",
    "binomial_tail_ge",
    "expected_disturbed_bits",
    "MTTFResult",
    "mttf_from_probabilities",
    "mttf_improvement",
    "geometric_mean_improvement",
    "arithmetic_mean_improvement",
    "FaultInjectionCampaign",
    "InjectionResult",
]
