"""Concealed-read accumulation tracking and the Fig. 3 histogram.

The paper's Fig. 3 plots, for one workload:

* x-axis: the number of concealed reads a line had suffered when it was
  finally demand-read (and therefore ECC-checked);
* primary y-axis: how often that count occurred, normalised to the number of
  demand reads that found *zero* concealed reads;
* secondary y-axis: the contribution of each count to the total cache
  failure rate, i.e. frequency x per-access failure probability at that
  count.

:class:`AccumulationTracker` collects (concealed-read count, ones count)
samples from the cache simulation; :class:`ConcealedReadHistogram` turns them
into exactly those two curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, ConfigurationError
from .binomial import accumulated_failure_probability, block_failure_probability


@dataclass
class AccessSample:
    """One demand read observed by the tracker.

    Attributes:
        concealed_reads: Number of concealed reads the line experienced since
            its previous ECC check.
        ones_count: Number of '1' cells in the line at the time of the read.
    """

    concealed_reads: int
    ones_count: int


class AccumulationTracker:
    """Collects per-demand-read concealed-read counts during a simulation.

    The samples are held as two parallel integer columns (a structure of
    arrays) so that batched recording and the histogram maths never build a
    Python object per demand read; :attr:`samples` materialises the classic
    :class:`AccessSample` view on demand.
    """

    __slots__ = ("_concealed", "_ones")

    def __init__(self) -> None:
        self._concealed: list[int] = []
        self._ones: list[int] = []

    @property
    def samples(self) -> list[AccessSample]:
        """The recorded demand reads as :class:`AccessSample` objects."""
        return [
            AccessSample(concealed, ones)
            for concealed, ones in zip(self._concealed, self._ones)
        ]

    def record(self, concealed_reads: int, ones_count: int) -> None:
        """Record one demand read.

        Args:
            concealed_reads: Concealed reads accumulated since the last check.
            ones_count: Number of '1' cells in the block.
        """
        if concealed_reads < 0:
            raise ConfigurationError("concealed_reads must be non-negative")
        if ones_count < 0:
            raise ConfigurationError("ones_count must be non-negative")
        self._concealed.append(concealed_reads)
        self._ones.append(ones_count)

    def record_batch(self, concealed_reads, ones_counts) -> None:
        """Record many demand reads at once (same samples as repeated :meth:`record`).

        Args:
            concealed_reads: Per-read concealed-read counts, in delivery order.
            ones_counts: Per-read ones counts, aligned with ``concealed_reads``.

        Raises:
            ConfigurationError: if the sequences disagree in length or any
                entry is negative.
        """
        concealed_list = list(concealed_reads)
        ones_list = list(ones_counts)
        if len(concealed_list) != len(ones_list):
            raise ConfigurationError(
                "concealed_reads and ones_counts must have the same length"
            )
        if any(c < 0 for c in concealed_list):
            raise ConfigurationError("concealed_reads must be non-negative")
        if any(o < 0 for o in ones_list):
            raise ConfigurationError("ones_count must be non-negative")
        self._concealed.extend(int(c) for c in concealed_list)
        self._ones.extend(int(o) for o in ones_list)

    def record_sample_arrays(
        self, concealed_reads: np.ndarray, ones_counts: np.ndarray
    ) -> None:
        """Record many demand reads from integer arrays (no per-sample objects).

        Same samples as :meth:`record_batch`; used by the structure-of-arrays
        kernel, whose delivery columns are already NumPy arrays.

        Raises:
            ConfigurationError: if the arrays disagree in length or any entry
                is negative.
        """
        concealed = np.asarray(concealed_reads, dtype=np.int64)
        ones = np.asarray(ones_counts, dtype=np.int64)
        if concealed.shape != ones.shape:
            raise ConfigurationError(
                "concealed_reads and ones_counts must have the same length"
            )
        if concealed.size == 0:
            return
        if int(concealed.min()) < 0:
            raise ConfigurationError("concealed_reads must be non-negative")
        if int(ones.min()) < 0:
            raise ConfigurationError("ones_count must be non-negative")
        self._concealed.extend(concealed.tolist())
        self._ones.extend(ones.tolist())

    def __len__(self) -> int:
        return len(self._concealed)

    @property
    def max_concealed_reads(self) -> int:
        """Largest concealed-read count observed (0 when empty)."""
        if not self._concealed:
            return 0
        return max(self._concealed)

    @property
    def mean_concealed_reads(self) -> float:
        """Average concealed-read count per demand read (0.0 when empty)."""
        if not self._concealed:
            return 0.0
        return float(np.mean(self._concealed))

    def counts(self) -> np.ndarray:
        """Array of concealed-read counts, one entry per demand read."""
        return np.array(self._concealed, dtype=np.int64)

    def ones(self) -> np.ndarray:
        """Array of ones counts, aligned with :meth:`counts`."""
        return np.array(self._ones, dtype=np.int64)


@dataclass(frozen=True)
class HistogramBin:
    """One bin of the Fig. 3 histogram.

    Attributes:
        concealed_reads: Representative concealed-read count of the bin
            (bin centre for aggregated bins, exact value otherwise).
        accesses: Number of demand reads that fell into the bin.
        normalized_frequency: ``accesses`` scaled so the zero-concealed-read
            bin equals 100 (the paper's normalisation).
        failure_rate: Sum of per-access uncorrectable-error probabilities of
            the accesses in the bin.
    """

    concealed_reads: float
    accesses: int
    normalized_frequency: float
    failure_rate: float


class ConcealedReadHistogram:
    """Builds the two Fig. 3 curves from tracker samples."""

    def __init__(
        self,
        tracker: AccumulationTracker,
        p_cell: float,
        correctable: int = 1,
        num_bins: int = 40,
    ) -> None:
        """Create the histogram.

        Args:
            tracker: Samples collected during a simulation.
            p_cell: Per-read, per-cell disturbance probability.
            correctable: ECC correction capability.
            num_bins: Number of bins used to aggregate the concealed-read axis.
        """
        if len(tracker) == 0:
            raise AnalysisError("cannot build a histogram from zero samples")
        if not 0.0 <= p_cell <= 1.0:
            raise ConfigurationError("p_cell must be in [0, 1]")
        if num_bins < 1:
            raise ConfigurationError("num_bins must be >= 1")
        self._tracker = tracker
        self._p_cell = p_cell
        self._correctable = correctable
        self._num_bins = num_bins

    def per_access_failure_probabilities(self) -> np.ndarray:
        """Uncorrectable-error probability of each recorded demand read."""
        counts = self._tracker.counts()
        ones = self._tracker.ones()
        probabilities = np.empty(len(counts), dtype=float)
        for i, (concealed, n_ones) in enumerate(zip(counts, ones)):
            if n_ones == 0:
                probabilities[i] = 0.0
            elif concealed == 0:
                probabilities[i] = block_failure_probability(
                    self._p_cell, int(n_ones), self._correctable
                )
            else:
                probabilities[i] = accumulated_failure_probability(
                    self._p_cell, int(n_ones), int(concealed) + 1, self._correctable
                )
        return probabilities

    def total_failure_rate(self) -> float:
        """Sum of per-access failure probabilities (expected failures)."""
        return float(self.per_access_failure_probabilities().sum())

    def bins(self) -> list[HistogramBin]:
        """Aggregate samples into bins along the concealed-read axis."""
        counts = self._tracker.counts()
        probabilities = self.per_access_failure_probabilities()
        max_count = int(counts.max())

        if max_count <= self._num_bins:
            edges = np.arange(max_count + 2) - 0.5
        else:
            # Keep the zero-concealed-read accesses in a bin of their own so
            # the paper's normalisation reference survives aggregation.
            tail_edges = np.linspace(0.5, max_count + 0.5, self._num_bins)
            edges = np.concatenate([[-0.5], tail_edges])

        bin_index = np.digitize(counts, edges) - 1
        bin_index = np.clip(bin_index, 0, len(edges) - 2)

        raw: list[tuple[float, int, float]] = []
        for b in range(len(edges) - 1):
            mask = bin_index == b
            accesses = int(mask.sum())
            if accesses == 0:
                continue
            centre = float(counts[mask].mean())
            failure = float(probabilities[mask].sum())
            raw.append((centre, accesses, failure))

        # The paper scales frequencies so reads with no concealed read map to
        # 100; when no such read exists the lowest observed bin is the
        # reference instead.
        raw.sort(key=lambda item: item[0])
        reference = raw[0][1]
        return [
            HistogramBin(
                concealed_reads=centre,
                accesses=accesses,
                normalized_frequency=100.0 * accesses / reference,
                failure_rate=failure,
            )
            for centre, accesses, failure in raw
        ]

    def dominant_bin(self) -> HistogramBin:
        """The bin contributing the most to the total failure rate."""
        return max(self.bins(), key=lambda b: b.failure_rate)

    def tail_dominance_ratio(self, split_fraction: float = 0.5) -> float:
        """Failure-rate share of the high-concealed-read half of the axis.

        The paper's observation is that rare, high-count accesses dominate
        the failure rate; this ratio quantifies it: the fraction of the total
        failure rate produced by accesses whose concealed-read count exceeds
        ``split_fraction * max_count``.
        """
        if not 0.0 < split_fraction < 1.0:
            raise ConfigurationError("split_fraction must be in (0, 1)")
        counts = self._tracker.counts()
        probabilities = self.per_access_failure_probabilities()
        threshold = split_fraction * counts.max()
        total = probabilities.sum()
        if total == 0.0:
            return 0.0
        return float(probabilities[counts > threshold].sum() / total)
