"""Error-correcting codes protecting STT-MRAM cache blocks.

Public surface:

* :class:`ECCScheme` / :class:`DecodeResult` / :class:`DecodeStatus` — the
  codec interface.
* :class:`ParityCode`, :class:`HammingSECCode`, :class:`HammingSECDEDCode`,
  :class:`InterleavedSECDEDCode`, :class:`NoECC` — concrete codes.
* :func:`build_ecc_scheme` — configuration-driven factory.
* :class:`ECCCostModel` / :class:`CodecCost` / :class:`GateLibrary` —
  area/energy/latency estimates of encoder and decoder hardware.
"""

from .base import DecodeResult, DecodeStatus, ECCScheme, as_bit_array
from .codec_stats import CodecCost, ECCCostModel, GateLibrary
from .factory import NoECC, build_ecc_scheme
from .hamming import HammingSECCode, HammingSECDEDCode, parity_bits_for_sec
from .interleaved import InterleavedSECDEDCode
from .parity import ParityCode

__all__ = [
    "ECCScheme",
    "DecodeResult",
    "DecodeStatus",
    "as_bit_array",
    "ParityCode",
    "HammingSECCode",
    "HammingSECDEDCode",
    "InterleavedSECDEDCode",
    "NoECC",
    "parity_bits_for_sec",
    "build_ecc_scheme",
    "ECCCostModel",
    "CodecCost",
    "GateLibrary",
]
