"""Hamming SEC and extended Hamming SEC-DED codes for arbitrary data widths.

The paper's caches protect each block with a single-error-correcting (SEC)
code: "An ECC-protected cache is conventionally capable of correcting single
bit error in cache lines" (Section III-B).  For a 64-byte (512-bit) block a
SEC Hamming code needs 10 check bits; the SEC-DED extension adds an overall
parity bit for guaranteed double-error detection, matching the common
(72, 64) organisation when applied per 64-bit word.

The implementation uses the classic positional construction: codeword
positions are numbered 1..n, the power-of-two positions hold parity, and the
syndrome is the XOR of the positions of all set bits.  Encoding and syndrome
computation are vectorised with NumPy so 512-bit blocks decode quickly inside
Monte-Carlo loops.

A SEC decoder presented with a double error may *miscorrect* (flip a third
bit); the decoder cannot know this, so it reports ``CORRECTED`` and the
fault-injection harness classifies the silent corruption by comparing
against golden data.  This mirrors real hardware and is exactly the failure
mode that read-disturbance accumulation provokes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ECCCapacityError
from .base import DecodeResult, DecodeStatus, ECCScheme, as_bit_array


def parity_bits_for_sec(data_bits: int) -> int:
    """Number of Hamming check bits needed for ``data_bits`` data bits.

    The smallest ``r`` such that ``2**r >= data_bits + r + 1``.
    """
    if data_bits <= 0:
        raise ECCCapacityError("data_bits must be positive")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class HammingSECCode(ECCScheme):
    """Single-error-correcting Hamming code over the whole data word."""

    def __init__(self, data_bits: int) -> None:
        super().__init__(data_bits)
        self._parity_bits = parity_bits_for_sec(data_bits)
        n = data_bits + self._parity_bits
        positions = np.arange(1, n + 1, dtype=np.int64)
        is_parity = (positions & (positions - 1)) == 0
        self._parity_positions = positions[is_parity]
        self._data_positions = positions[~is_parity]
        # Map from codeword array index (0-based) to 1-based position.
        self._positions = positions
        # Index (0-based) of each data bit and parity bit within the codeword.
        self._data_indices = self._data_positions - 1
        self._parity_indices = self._parity_positions - 1

    @property
    def parity_bits(self) -> int:
        """Number of Hamming check bits."""
        return self._parity_bits

    @property
    def correctable_errors(self) -> int:
        """Hamming SEC corrects one error per codeword."""
        return 1

    @property
    def detectable_errors(self) -> int:
        """Guaranteed detection equals the correction capability for SEC."""
        return 1

    @property
    def name(self) -> str:
        """Code name."""
        return f"SEC({self.data_bits}+{self.parity_bits})"

    # -- internal helpers -----------------------------------------------------

    def _syndrome(self, codeword: np.ndarray) -> int:
        """XOR of the 1-based positions of all set codeword bits."""
        set_positions = self._positions[codeword == 1]
        if set_positions.size == 0:
            return 0
        return int(np.bitwise_xor.reduce(set_positions))

    def _compute_parity(self, codeword: np.ndarray) -> np.ndarray:
        """Fill the parity positions of a codeword whose data bits are set."""
        # With parity bits currently zero, the syndrome equals the XOR of the
        # data-bit positions; each syndrome bit is the parity value for the
        # corresponding power-of-two position.
        syndrome = self._syndrome(codeword)
        for index, position in zip(self._parity_indices, self._parity_positions):
            codeword[index] = 1 if (syndrome & int(position)) else 0
        return codeword

    # -- public API -------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode data bits into a Hamming codeword."""
        data = as_bit_array(data, self.data_bits)
        codeword = np.zeros(self.codeword_bits, dtype=np.uint8)
        codeword[self._data_indices] = data
        return self._compute_parity(codeword)

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode a codeword, correcting at most one bit error."""
        codeword = as_bit_array(codeword, self.codeword_bits).copy()
        syndrome = self._syndrome(codeword)
        if syndrome == 0:
            return DecodeResult(
                data=codeword[self._data_indices].copy(), status=DecodeStatus.CLEAN
            )
        if syndrome <= self.codeword_bits:
            codeword[syndrome - 1] ^= 1
            return DecodeResult(
                data=codeword[self._data_indices].copy(),
                status=DecodeStatus.CORRECTED,
                corrected_positions=(syndrome - 1,),
            )
        # The syndrome points outside the codeword: a multi-bit error that the
        # code happens to be able to flag.
        return DecodeResult(
            data=codeword[self._data_indices].copy(),
            status=DecodeStatus.DETECTED_UNCORRECTABLE,
        )


class HammingSECDEDCode(ECCScheme):
    """Extended Hamming code: single-error correction, double-error detection."""

    def __init__(self, data_bits: int) -> None:
        super().__init__(data_bits)
        self._inner = HammingSECCode(data_bits)

    @property
    def parity_bits(self) -> int:
        """Hamming check bits plus the overall parity bit."""
        return self._inner.parity_bits + 1

    @property
    def correctable_errors(self) -> int:
        """SEC-DED corrects one error per codeword."""
        return 1

    @property
    def detectable_errors(self) -> int:
        """SEC-DED is guaranteed to detect double errors."""
        return 2

    @property
    def name(self) -> str:
        """Code name."""
        return f"SECDED({self.data_bits}+{self.parity_bits})"

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode data and append the overall parity bit."""
        inner = self._inner.encode(data)
        overall = np.uint8(inner.sum() % 2)
        return np.concatenate([inner, np.array([overall], dtype=np.uint8)])

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode, distinguishing single (corrected) from double (detected) errors."""
        codeword = as_bit_array(codeword, self.codeword_bits).copy()
        inner = codeword[:-1]
        overall_stored = int(codeword[-1])
        overall_computed = int(inner.sum() % 2)
        parity_matches = overall_stored == overall_computed
        syndrome = self._inner._syndrome(inner)

        if syndrome == 0 and parity_matches:
            return DecodeResult(
                data=inner[self._inner._data_indices].copy(),
                status=DecodeStatus.CLEAN,
            )
        if syndrome == 0 and not parity_matches:
            # Error in the overall parity bit itself; data is intact.
            return DecodeResult(
                data=inner[self._inner._data_indices].copy(),
                status=DecodeStatus.CORRECTED,
                corrected_positions=(self.codeword_bits - 1,),
            )
        if not parity_matches:
            # Odd number of errors; assume single and correct it.
            if syndrome <= self._inner.codeword_bits:
                inner[syndrome - 1] ^= 1
                return DecodeResult(
                    data=inner[self._inner._data_indices].copy(),
                    status=DecodeStatus.CORRECTED,
                    corrected_positions=(syndrome - 1,),
                )
            return DecodeResult(
                data=inner[self._inner._data_indices].copy(),
                status=DecodeStatus.DETECTED_UNCORRECTABLE,
            )
        # Syndrome non-zero but overall parity matches: an even number of
        # errors (>= 2) — detected, not correctable.
        return DecodeResult(
            data=inner[self._inner._data_indices].copy(),
            status=DecodeStatus.DETECTED_UNCORRECTABLE,
        )
