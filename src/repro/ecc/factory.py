"""Factory that maps an :class:`repro.config.ECCConfig` onto a concrete codec."""

from __future__ import annotations

import numpy as np

from ..config import ECCConfig, ECCKind
from ..errors import ECCCapacityError
from .base import DecodeResult, DecodeStatus, ECCScheme, as_bit_array
from .hamming import HammingSECCode, HammingSECDEDCode
from .interleaved import InterleavedSECDEDCode
from .parity import ParityCode


class NoECC(ECCScheme):
    """Degenerate scheme: no check bits, no detection, no correction.

    Used for the SRAM L1 caches in the paper's configuration (Table I does
    not attribute ECC behaviour to them) and as the weakest point of ECC
    sweeps.
    """

    @property
    def parity_bits(self) -> int:
        """No check bits."""
        return 0

    @property
    def correctable_errors(self) -> int:
        """No correction."""
        return 0

    @property
    def detectable_errors(self) -> int:
        """No detection."""
        return 0

    @property
    def name(self) -> str:
        """Code name."""
        return f"None({self.data_bits})"

    def encode(self, data: np.ndarray) -> np.ndarray:
        """The codeword is just the data."""
        return as_bit_array(data, self.data_bits).copy()

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Always reports clean: errors pass silently (by design)."""
        codeword = as_bit_array(codeword, self.codeword_bits)
        return DecodeResult(data=codeword.copy(), status=DecodeStatus.CLEAN)


def build_ecc_scheme(config: ECCConfig, data_bits: int) -> ECCScheme:
    """Instantiate the ECC codec described by an :class:`ECCConfig`.

    Args:
        config: The ECC configuration (kind + interleaving degree).
        data_bits: Width of the protected data word in bits.

    Returns:
        A concrete :class:`ECCScheme`.

    Raises:
        ECCCapacityError: if the configuration cannot be realised for the
            requested data width.
    """
    if data_bits <= 0:
        raise ECCCapacityError("data_bits must be positive")
    if config.kind is ECCKind.NONE:
        return NoECC(data_bits)
    if config.kind is ECCKind.PARITY:
        return ParityCode(data_bits)
    if config.kind is ECCKind.HAMMING_SEC:
        return HammingSECCode(data_bits)
    if config.kind is ECCKind.HAMMING_SECDED:
        return HammingSECDEDCode(data_bits)
    if config.kind is ECCKind.INTERLEAVED_SECDED:
        return InterleavedSECDEDCode(data_bits, degree=config.interleaving_degree)
    raise ECCCapacityError(f"unsupported ECC kind: {config.kind}")
