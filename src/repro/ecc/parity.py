"""Single-parity-bit code: detects any odd number of bit errors, corrects none.

Included as the weakest point of the ECC design space so that sweeps over
protection strength (none / parity / SEC / SEC-DED / interleaved) have a
detection-only member.
"""

from __future__ import annotations

import numpy as np

from .base import DecodeResult, DecodeStatus, ECCScheme, as_bit_array


class ParityCode(ECCScheme):
    """Even-parity code over the whole data word."""

    @property
    def parity_bits(self) -> int:
        """A single parity bit."""
        return 1

    @property
    def correctable_errors(self) -> int:
        """Parity corrects nothing."""
        return 0

    @property
    def detectable_errors(self) -> int:
        """Guaranteed detection of a single-bit error (any odd count in fact)."""
        return 1

    @property
    def name(self) -> str:
        """Code name."""
        return f"Parity({self.data_bits}+1)"

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Append an even-parity bit to the data."""
        data = as_bit_array(data, self.data_bits)
        parity = np.uint8(data.sum() % 2)
        return np.concatenate([data, np.array([parity], dtype=np.uint8)])

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Check parity; report detected-uncorrectable when it mismatches."""
        codeword = as_bit_array(codeword, self.codeword_bits)
        data = codeword[: self.data_bits]
        expected = np.uint8(data.sum() % 2)
        if expected == codeword[-1]:
            return DecodeResult(data=data.copy(), status=DecodeStatus.CLEAN)
        return DecodeResult(
            data=data.copy(), status=DecodeStatus.DETECTED_UNCORRECTABLE
        )
