"""Common interface for the ECC codecs used to protect cache blocks.

Every code in :mod:`repro.ecc` implements :class:`ECCScheme`: it encodes a
data word (a NumPy bit array) into a codeword, and decodes a possibly
corrupted codeword into a :class:`DecodeResult` describing what happened —
clean, corrected, detected-but-uncorrectable, or silently miscorrected.

The cache reliability engine uses two facets of a scheme:

* the *bit-true* encode/decode path, exercised by Monte-Carlo fault
  injection; and
* the *analytic* facet (:attr:`ECCScheme.correctable_errors`,
  :attr:`ECCScheme.detectable_errors`), used by the closed-form failure-rate
  computations of :mod:`repro.reliability`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ECCDecodingError


class DecodeStatus(enum.Enum):
    """Outcome of decoding one codeword."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTABLE = "detected-uncorrectable"
    MISCORRECTED = "miscorrected"


@dataclass(frozen=True)
class DecodeResult:
    """Result of decoding a codeword.

    Attributes:
        data: The decoded data bits (best effort when uncorrectable).
        status: What the decoder believes happened.
        corrected_positions: Codeword bit positions the decoder flipped.
    """

    data: np.ndarray
    status: DecodeStatus
    corrected_positions: tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        """``True`` when the decoder claims the data is correct."""
        return self.status in (DecodeStatus.CLEAN, DecodeStatus.CORRECTED)


def as_bit_array(bits: np.ndarray | list[int], expected_length: int | None = None) -> np.ndarray:
    """Normalise an input to a ``uint8`` 0/1 array, validating its content.

    Args:
        bits: Bit sequence as a NumPy array or list.
        expected_length: When given, the required length.

    Returns:
        A ``uint8`` array of 0s and 1s.

    Raises:
        ECCDecodingError: if the input is not a flat 0/1 sequence of the
            expected length.
    """
    array = np.asarray(bits, dtype=np.uint8)
    if array.ndim != 1:
        raise ECCDecodingError("bit arrays must be one-dimensional")
    if array.size and not np.all((array == 0) | (array == 1)):
        raise ECCDecodingError("bit arrays must contain only 0s and 1s")
    if expected_length is not None and array.size != expected_length:
        raise ECCDecodingError(
            f"expected {expected_length} bits, got {array.size}"
        )
    return array


class ECCScheme(abc.ABC):
    """Abstract base class for block ECC codes."""

    def __init__(self, data_bits: int) -> None:
        if data_bits <= 0:
            raise ECCDecodingError("data_bits must be positive")
        self._data_bits = data_bits

    # -- static properties ----------------------------------------------------

    @property
    def data_bits(self) -> int:
        """Number of data bits per codeword."""
        return self._data_bits

    @property
    @abc.abstractmethod
    def parity_bits(self) -> int:
        """Number of check bits added by the code."""

    @property
    def codeword_bits(self) -> int:
        """Total codeword length in bits."""
        return self.data_bits + self.parity_bits

    @property
    def storage_overhead(self) -> float:
        """Check-bit overhead as a fraction of the data bits."""
        return self.parity_bits / self.data_bits

    @property
    @abc.abstractmethod
    def correctable_errors(self) -> int:
        """Maximum number of bit errors the code corrects per codeword."""

    @property
    @abc.abstractmethod
    def detectable_errors(self) -> int:
        """Maximum number of bit errors the code is guaranteed to detect."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable code name, e.g. ``"SEC(512+10)"``."""

    # -- bit-true path ---------------------------------------------------------

    @abc.abstractmethod
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``data_bits`` data bits into a full codeword."""

    @abc.abstractmethod
    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode a codeword, correcting errors within the code's capability."""

    # -- convenience -----------------------------------------------------------

    def roundtrip(self, data: np.ndarray) -> DecodeResult:
        """Encode then immediately decode (sanity-check helper)."""
        return self.decode(self.encode(as_bit_array(data, self.data_bits)))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"{type(self).__name__}(data_bits={self.data_bits}, "
            f"parity_bits={self.parity_bits})"
        )
