"""Hardware cost model of ECC encoder/decoder units.

The paper's overhead argument (Section V-B) rests on two numbers:

* the ECC decoder contributes **< 1%** of the cache's total energy per
  access and roughly **0.1%** of its area, so
* replicating it eight times (one per way of the 8-way L2) keeps the area
  overhead under 1% and the dynamic-energy overhead around 2.7% on average.

This module provides a gate-level-ish analytic estimate of a Hamming
encoder/decoder: XOR-tree sizes follow directly from the parity-check
structure (each check bit covers about half the codeword), and per-gate
energy/area constants are scaled from a generic 32 nm standard-cell library.
Absolute numbers are not the point — the *ratios* against the NVSim-like
array model in :mod:`repro.energy` are what reproduce the paper's overhead
figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .base import ECCScheme


@dataclass(frozen=True)
class GateLibrary:
    """Per-gate constants of the standard-cell library used for estimates.

    Attributes:
        xor2_area_um2: Area of a 2-input XOR gate in square micrometres.
        xor2_energy_fj: Switching energy of a 2-input XOR gate in femtojoules.
        xor2_delay_ps: Propagation delay of a 2-input XOR gate in picoseconds.
        and2_area_um2: Area of a 2-input AND gate.
        and2_energy_fj: Switching energy of a 2-input AND gate.
        activity_factor: Fraction of gates that toggle on a typical access.
    """

    xor2_area_um2: float = 1.2
    xor2_energy_fj: float = 1.5
    xor2_delay_ps: float = 18.0
    and2_area_um2: float = 0.9
    and2_energy_fj: float = 1.0
    activity_factor: float = 0.5

    def __post_init__(self) -> None:
        for name in (
            "xor2_area_um2",
            "xor2_energy_fj",
            "xor2_delay_ps",
            "and2_area_um2",
            "and2_energy_fj",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not 0 < self.activity_factor <= 1:
            raise ConfigurationError("activity_factor must be in (0, 1]")


@dataclass(frozen=True)
class CodecCost:
    """Estimated hardware cost of one encoder or decoder instance.

    Attributes:
        area_um2: Silicon area in square micrometres.
        energy_per_op_pj: Dynamic energy per encode/decode in picojoules.
        latency_ns: Critical-path latency in nanoseconds.
        xor_gates: Number of 2-input XOR gates in the estimate.
        and_gates: Number of 2-input AND gates in the estimate.
    """

    area_um2: float
    energy_per_op_pj: float
    latency_ns: float
    xor_gates: int
    and_gates: int

    def scaled(self, copies: int) -> "CodecCost":
        """Cost of ``copies`` parallel instances (area/gates scale, latency doesn't)."""
        if copies < 1:
            raise ConfigurationError("copies must be >= 1")
        return CodecCost(
            area_um2=self.area_um2 * copies,
            energy_per_op_pj=self.energy_per_op_pj * copies,
            latency_ns=self.latency_ns,
            xor_gates=self.xor_gates * copies,
            and_gates=self.and_gates * copies,
        )


class ECCCostModel:
    """Analytic area/energy/latency estimates for an ECC scheme's codec."""

    def __init__(self, scheme: ECCScheme, library: GateLibrary | None = None) -> None:
        """Bind the cost model to a code and a gate library."""
        self._scheme = scheme
        self._library = library or GateLibrary()

    @property
    def scheme(self) -> ECCScheme:
        """The ECC scheme being costed."""
        return self._scheme

    @property
    def library(self) -> GateLibrary:
        """The gate library used for the estimates."""
        return self._library

    def _xor_tree_gates(self, inputs: int) -> int:
        """Number of 2-input XOR gates in a balanced reduction tree."""
        return max(inputs - 1, 0)

    def _xor_tree_depth(self, inputs: int) -> int:
        """Depth (levels) of a balanced 2-input XOR reduction tree."""
        depth = 0
        remaining = inputs
        while remaining > 1:
            remaining = (remaining + 1) // 2
            depth += 1
        return depth

    def encoder_cost(self) -> CodecCost:
        """Cost of the encoder: one XOR tree per check bit over ~half the data."""
        covered = max(self._scheme.data_bits // 2, 1)
        xor_gates = self._scheme.parity_bits * self._xor_tree_gates(covered)
        depth = self._xor_tree_depth(covered)
        return self._cost_from_gates(xor_gates, and_gates=0, depth=depth)

    def decoder_cost(self) -> CodecCost:
        """Cost of the decoder: syndrome XOR trees plus correction logic.

        The syndrome generator mirrors the encoder but spans the full
        codeword; the corrector is modelled as one AND gate per data bit
        (syndrome match) plus one XOR per data bit (the conditional flip).
        """
        covered = max(self._scheme.codeword_bits // 2, 1)
        syndrome_gates = self._scheme.parity_bits * self._xor_tree_gates(covered)
        corrector_xor = self._scheme.data_bits
        corrector_and = self._scheme.data_bits * max(
            self._scheme.parity_bits // 2, 1
        )
        depth = self._xor_tree_depth(covered) + 2
        return self._cost_from_gates(
            syndrome_gates + corrector_xor, and_gates=corrector_and, depth=depth
        )

    def _cost_from_gates(self, xor_gates: int, and_gates: int, depth: int) -> CodecCost:
        lib = self._library
        area = xor_gates * lib.xor2_area_um2 + and_gates * lib.and2_area_um2
        energy_fj = lib.activity_factor * (
            xor_gates * lib.xor2_energy_fj + and_gates * lib.and2_energy_fj
        )
        latency_ns = depth * lib.xor2_delay_ps * 1e-3
        return CodecCost(
            area_um2=area,
            energy_per_op_pj=energy_fj * 1e-3,
            latency_ns=latency_ns,
            xor_gates=xor_gates,
            and_gates=and_gates,
        )
