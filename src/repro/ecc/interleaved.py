"""Interleaved SEC-DED: split a block into several independent codewords.

Interleaving a 512-bit block into ``d`` SEC-DED codewords lets the block as a
whole tolerate up to ``d`` errors as long as no two land in the same
interleave group — a common industrial way to harden a block against
multi-bit upsets without adopting a true multi-error-correcting code.  It is
included as an ECC-strength design point for the ablation studies: REAP with
plain SEC is compared against a conventional cache that buys reliability
with stronger (and more expensive) ECC instead.
"""

from __future__ import annotations

import numpy as np

from ..errors import ECCCapacityError
from .base import DecodeResult, DecodeStatus, ECCScheme, as_bit_array
from .hamming import HammingSECDEDCode


class InterleavedSECDEDCode(ECCScheme):
    """``degree`` independent SEC-DED codewords covering interleaved bit lanes.

    Bit ``i`` of the data word belongs to interleave group ``i % degree``.
    Interleaving by bit position (rather than contiguous chunks) is what
    hardware does to spread physically-adjacent upsets across codewords; for
    the independent single-cell flips modelled here the two choices are
    statistically equivalent, but the layout is kept faithful anyway.
    """

    def __init__(self, data_bits: int, degree: int = 4) -> None:
        super().__init__(data_bits)
        if degree < 1:
            raise ECCCapacityError("interleaving degree must be >= 1")
        if data_bits % degree != 0:
            raise ECCCapacityError(
                f"data_bits ({data_bits}) must be divisible by the degree ({degree})"
            )
        self._degree = degree
        self._lane_bits = data_bits // degree
        self._lane_code = HammingSECDEDCode(self._lane_bits)
        # Precompute the lane membership of every data bit.
        self._lane_of_bit = np.arange(data_bits) % degree
        self._lane_slots = [
            np.flatnonzero(self._lane_of_bit == lane) for lane in range(degree)
        ]

    @property
    def degree(self) -> int:
        """Number of interleaved codewords."""
        return self._degree

    @property
    def parity_bits(self) -> int:
        """Total check bits across all lanes."""
        return self._degree * self._lane_code.parity_bits

    @property
    def correctable_errors(self) -> int:
        """Guaranteed correction: one error (worst case both in one lane)."""
        return 1

    @property
    def detectable_errors(self) -> int:
        """Guaranteed detection: two errors per lane in the worst case."""
        return 2

    @property
    def best_case_correctable_errors(self) -> int:
        """Errors correctable when they spread one-per-lane."""
        return self._degree

    @property
    def name(self) -> str:
        """Code name."""
        return f"iSECDEDx{self._degree}({self.data_bits}+{self.parity_bits})"

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode each interleave lane independently and concatenate codewords."""
        data = as_bit_array(data, self.data_bits)
        lanes = [
            self._lane_code.encode(data[slots]) for slots in self._lane_slots
        ]
        return np.concatenate(lanes)

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode every lane; the block is OK only if every lane is OK."""
        codeword = as_bit_array(codeword, self.codeword_bits)
        lane_len = self._lane_code.codeword_bits
        data = np.zeros(self.data_bits, dtype=np.uint8)
        statuses: list[DecodeStatus] = []
        corrected: list[int] = []
        for lane, slots in enumerate(self._lane_slots):
            lane_word = codeword[lane * lane_len : (lane + 1) * lane_len]
            result = self._lane_code.decode(lane_word)
            data[slots] = result.data
            statuses.append(result.status)
            corrected.extend(
                lane * lane_len + pos for pos in result.corrected_positions
            )

        if any(s is DecodeStatus.DETECTED_UNCORRECTABLE for s in statuses):
            status = DecodeStatus.DETECTED_UNCORRECTABLE
        elif any(s is DecodeStatus.CORRECTED for s in statuses):
            status = DecodeStatus.CORRECTED
        else:
            status = DecodeStatus.CLEAN
        return DecodeResult(
            data=data, status=status, corrected_positions=tuple(corrected)
        )
