"""Canonical JSON encoding and content hashing for campaign jobs.

Resumability hinges on every job having a stable identity: the same job
specification must hash to the same key in every process, on every run, in
any worker ordering.  The canonical form is JSON with sorted keys, no
whitespace, and NaN/Infinity rejected (they would not round-trip), hashed
with SHA-256.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..errors import CampaignError


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` to its canonical JSON form.

    Raises:
        CampaignError: if the payload contains values JSON cannot represent
            deterministically (NaN, Infinity, or non-JSON types).
    """
    try:
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
            ensure_ascii=True,
        )
    except (TypeError, ValueError) as exc:
        raise CampaignError(f"payload is not canonically serialisable: {exc}") from exc


def content_hash(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
