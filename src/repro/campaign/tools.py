"""Store tools: open-by-path, cross-machine merging, and campaign diffing.

Campaigns that fan out over machines produce one store per machine; these
helpers combine and compare them:

* :func:`open_store` — path-based dispatch between the single-file
  :class:`~repro.campaign.store.ResultStore` and the directory-backed
  :class:`~repro.campaign.shards.ShardedResultStore`.
* :func:`merge_stores` — union several stores into one, byte-preserving,
  refusing to pick between conflicting payloads for the same key.
* :func:`diff_stores` — compare two stores (e.g. before/after a model
  change) and report per-job headline-metric deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..errors import CampaignError
from ..sim.results import WorkloadComparison, format_table
from .provenance import warn_on_mixed_provenance
from .shards import MANIFEST_NAME, ShardedResultStore
from .store import BaseResultStore, ResultStore, comparison_from_dict


def open_store(
    path: str | Path | BaseResultStore,
    shard_width: int | None = None,
    must_exist: bool = False,
) -> BaseResultStore:
    """Open the store at ``path``, inferring its layout.

    An existing directory (or one holding a ``store.json`` manifest) opens
    as a :class:`ShardedResultStore`; an existing file as a
    :class:`ResultStore`.  For paths that do not exist yet, a ``.jsonl``
    suffix selects the single-file layout and anything else creates a
    sharded directory — unless ``must_exist`` is set, which raises instead:
    read-oriented callers (diff, merge sources) use it so a typo'd path
    fails loudly rather than being silently conjured as an empty store.
    Store instances pass through unchanged.
    """
    if isinstance(path, BaseResultStore):
        return path
    path = Path(path)
    if path.is_dir() or (path / MANIFEST_NAME).exists():
        return ShardedResultStore(path, shard_width=shard_width)
    if path.is_file():
        return ResultStore(path)
    if must_exist:
        raise CampaignError(f"no result store at {path}")
    if path.suffix == ".jsonl":
        return ResultStore(path)
    return ShardedResultStore(path, shard_width=shard_width)


@dataclass(frozen=True)
class MergeReport:
    """Outcome of one :func:`merge_stores` call.

    Attributes:
        added: Entries copied into the destination.
        duplicates: Entries skipped because the destination already held an
            identical payload.
        total: Destination entry count after the merge.
    """

    added: int
    duplicates: int
    total: int


def merge_stores(
    destination: str | Path | BaseResultStore,
    sources: Sequence[str | Path | BaseResultStore],
) -> MergeReport:
    """Merge every source store into ``destination``.

    Source entry lines are copied verbatim (bytes and provenance
    preserved), so merging stores produced by the same code yields entries
    byte-identical to a single-machine run.  A key present in several
    stores with the *same* payload deduplicates silently; with *different*
    payloads the merge raises — two machines disagreeing about one
    deterministic job is a bug that must never be papered over by picking a
    side.  Mixing code versions merges fine but warns
    (:class:`~repro.campaign.provenance.ProvenanceWarning`).
    """
    dest = open_store(destination)
    added = duplicates = 0
    for source in sources:
        src = open_store(source, must_exist=True)
        if src.path == dest.path:
            raise CampaignError(f"cannot merge store {dest.path} into itself")
        for key in src.keys():
            line = src.entry_line(key)
            try:
                if dest.put_line(key, line):
                    added += 1
                else:
                    duplicates += 1
            except CampaignError as exc:
                raise CampaignError(
                    f"merge conflict from {src.path}: {exc}"
                ) from exc
    warn_on_mixed_provenance(dest.provenances(), f"merged store {dest.path}")
    return MergeReport(added=added, duplicates=duplicates, total=len(dest))


@dataclass(frozen=True)
class EntryDiff:
    """One job whose stored results differ between two stores.

    Attributes:
        key: The job content hash.
        workload: The job's workload name.
        point_label: The job's sweep-point label.
        metrics: ``metric name -> (value in A, value in B)`` for the
            headline metrics (per-scheme expected failures, MTTF
            improvement and energy overhead).
    """

    key: str
    workload: str
    point_label: str
    metrics: dict[str, tuple[float, float]] = field(default_factory=dict)


@dataclass(frozen=True)
class StoreDiff:
    """Outcome of one :func:`diff_stores` call.

    Attributes:
        only_in_a: Keys present only in the first store.
        only_in_b: Keys present only in the second store.
        identical: Number of keys whose payloads match exactly.
        changed: Jobs present in both stores with differing results.
    """

    only_in_a: tuple[str, ...]
    only_in_b: tuple[str, ...]
    identical: int
    changed: tuple[EntryDiff, ...]

    @property
    def stores_match(self) -> bool:
        """``True`` when both stores hold exactly the same entries."""
        return not (self.only_in_a or self.only_in_b or self.changed)


def _headline_metrics(comparison: WorkloadComparison) -> dict[str, float]:
    metrics = {"baseline_expected_failures": comparison.baseline.expected_failures}
    for run in comparison.alternatives:
        scheme = run.scheme
        metrics[f"{scheme}_expected_failures"] = run.expected_failures
        metrics[f"{scheme}_mttf_improvement"] = comparison.mttf_improvement(scheme)
        metrics[f"{scheme}_energy_overhead_pct"] = comparison.energy_overhead_percent(
            scheme
        )
    return metrics


def diff_stores(
    store_a: str | Path | BaseResultStore, store_b: str | Path | BaseResultStore
) -> StoreDiff:
    """Compare two stores key by key and report per-job metric deltas.

    Jobs are matched by content hash, so two stores of the *same* campaign
    executed by *different* code (a model change, a bug fix) line up
    perfectly and the ``changed`` list quantifies what the change did to
    every affected job.
    """
    a = open_store(store_a, must_exist=True)
    b = open_store(store_b, must_exist=True)
    keys_a = set(a.keys())
    keys_b = set(b.keys())
    only_in_a = tuple(sorted(keys_a - keys_b))
    only_in_b = tuple(sorted(keys_b - keys_a))
    identical = 0
    changed: list[EntryDiff] = []
    for key in sorted(keys_a & keys_b):
        if a.payload_line(key) == b.payload_line(key):
            identical += 1
            continue
        record_a = a.record(key)
        record_b = b.record(key)
        job = a.job(key)
        metrics_a = _headline_metrics(comparison_from_dict(record_a["result"]))
        metrics_b = _headline_metrics(comparison_from_dict(record_b["result"]))
        changed.append(
            EntryDiff(
                key=key,
                workload=job.workload,
                point_label=job.point_label,
                metrics={
                    name: (metrics_a[name], metrics_b[name])
                    for name in metrics_a
                    if name in metrics_b and metrics_a[name] != metrics_b[name]
                },
            )
        )
    return StoreDiff(
        only_in_a=only_in_a,
        only_in_b=only_in_b,
        identical=identical,
        changed=tuple(changed),
    )


def render_store_diff(diff: StoreDiff, name_a: str = "A", name_b: str = "B") -> str:
    """Fixed-width text report of a :class:`StoreDiff`."""
    header = (
        f"{diff.identical} identical | {len(diff.changed)} changed | "
        f"{len(diff.only_in_a)} only in {name_a} | "
        f"{len(diff.only_in_b)} only in {name_b}"
    )
    if not diff.changed:
        return header
    rows: list[list[Any]] = []
    for entry in diff.changed:
        for metric, (value_a, value_b) in sorted(entry.metrics.items()):
            delta = value_b - value_a
            rows.append(
                [entry.workload, entry.point_label, metric, value_a, value_b, delta]
            )
    table = format_table(
        ["workload", "point", "metric", name_a, name_b, "delta"], rows
    )
    return f"{header}\n{table}"
