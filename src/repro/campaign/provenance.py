"""Per-entry provenance: which code produced a stored result.

Every store entry records the package version and (when the working tree is
a git checkout) the commit hash that executed the job.  Provenance is
*descriptive*, never part of the job identity: two entries for the same key
are considered equal when their job and result payloads match, regardless of
which version wrote them.  Mixing versions in one store is legal — results
are deterministic functions of the job spec, so a version bump that does not
change the simulation leaves entries byte-identical apart from this field —
but it is worth a warning, because a version bump that *does* change the
simulation would make the store internally inconsistent without one.
"""

from __future__ import annotations

import subprocess
import warnings
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterable, Mapping


class ProvenanceWarning(RuntimeWarning):
    """A store mixes entries written by different code versions."""


@lru_cache(maxsize=1)
def package_version() -> str:
    """Version of the :mod:`repro` package executing right now."""
    from .. import __version__

    return __version__


@lru_cache(maxsize=1)
def git_revision() -> str | None:
    """Commit hash of the working tree, or ``None`` outside a git checkout.

    Best-effort: any failure (no git binary, not a repository, sandboxed
    environment) degrades to ``None`` rather than failing the campaign.
    """
    package_dir = Path(__file__).resolve().parent
    try:
        completed = subprocess.run(
            ["git", "-C", str(package_dir), "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    revision = completed.stdout.strip()
    return revision or None


def provenance_dict() -> dict[str, Any]:
    """The provenance record stamped onto new store entries."""
    return {"version": package_version(), "git": git_revision()}


def provenance_label(provenance: Mapping[str, Any] | None) -> str:
    """Compact human-readable form, e.g. ``1.0.0@a1b2c3d4e5f6``."""
    if not provenance:
        return "unknown"
    version = provenance.get("version", "unknown")
    revision = provenance.get("git")
    return f"{version}@{revision}" if revision else str(version)


def warn_on_mixed_provenance(
    provenances: Iterable[Mapping[str, Any] | None], context: str
) -> None:
    """Issue one :class:`ProvenanceWarning` when several versions are mixed.

    Args:
        provenances: Provenance records of the entries under inspection
            (``None`` for entries written before provenance existed).
        context: Where the mix was observed (store path, merge description),
            quoted in the warning message.
    """
    labels = sorted({provenance_label(p) for p in provenances})
    if len(labels) > 1:
        warnings.warn(
            f"{context} mixes entries from {len(labels)} code versions: "
            f"{', '.join(labels)}; results are only comparable if the "
            "simulation is unchanged between them",
            ProvenanceWarning,
            stacklevel=3,
        )
