"""Declarative campaign and job specifications.

A *campaign* is a cross-product of (workload × swept-parameter point), each
point evaluated as one *job*: a baseline-vs-alternatives scheme comparison on
a single workload trace, exactly what :func:`repro.sim.compare_schemes`
computes.  Jobs are deterministic given their settings (the trace generator
and fault models are seeded), so a job's content hash doubles as a cache key
in the result store: the same spec always maps to the same key, and a key
hit means the cached result is bit-identical to re-executing the job.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any, Mapping, Sequence

from ..core import ProtectionScheme
from ..errors import CampaignError
from ..sim.experiment import ExperimentSettings
from .hashing import content_hash

#: Job/record schema version, bumped whenever the serialised layout changes
#: so stale stores fail loudly instead of aliasing new keys.
SCHEMA_VERSION = 1

#: Swept values must be JSON scalars so points hash canonically.
_SCALAR_TYPES = (bool, int, float, str, type(None))

#: Top-level ``ExperimentSettings`` fields a campaign may sweep directly.
#: Nested configuration fields are swept through *dotted paths* instead
#: (``l2_config.associativity``, ``l2_config.ecc.kind``,
#: ``mtj.read_current_ua``, ...), validated against the base settings by
#: :func:`validate_sweep_path`.
SWEEPABLE_FIELDS = frozenset(
    f.name for f in fields(ExperimentSettings) if f.name not in ("l2_config", "mtj")
)


def _field_names(obj: Any) -> list[str]:
    return [f.name for f in fields(obj)]


def validate_sweep_path(base: Any, path: str) -> None:
    """Check that ``path`` names a sweepable (possibly nested) scalar field.

    Walks the dataclass structure of ``base`` (normally an
    :class:`~repro.sim.ExperimentSettings`) segment by segment.  Errors name
    the exact unknown segment and list the valid choices at that level, so
    ``l2_config.assoc`` fails with *"unknown segment 'assoc'"* rather than a
    generic rejection.

    Raises:
        CampaignError: for empty segments, unknown segments, descending
            through a scalar, or a path that stops at a nested config.
    """
    segments = path.split(".")
    current = base
    for depth, segment in enumerate(segments):
        if not segment:
            raise CampaignError(
                f"cannot sweep {path!r}: empty path segment"
            )
        if not is_dataclass(current):
            prefix = ".".join(segments[:depth])
            raise CampaignError(
                f"cannot sweep {path!r}: {prefix!r} is a scalar field with no "
                f"sub-fields (drop the trailing '.{segment}')"
            )
        names = _field_names(current)
        if segment not in names:
            prefix = ".".join(segments[: depth + 1])
            where = (
                f"in {'.'.join(segments[:depth])!r}" if depth else "at the top level"
            )
            raise CampaignError(
                f"cannot sweep {path!r}: unknown segment {segment!r} "
                f"({prefix!r}) {where}; valid fields: {sorted(names)}"
            )
        current = getattr(current, segment)
    if is_dataclass(current):
        raise CampaignError(
            f"cannot sweep {path!r}: it names a whole nested configuration; "
            f"sweep one of its fields instead: "
            f"{sorted(f'{path}.{name}' for name in _field_names(current))}"
        )


def _replace_path(obj: Any, segments: Sequence[str], value: Any) -> Any:
    """Rebuild ``obj`` with the field at the segment path replaced.

    Frozen dataclasses rebuild level by level with
    :func:`dataclasses.replace`, so each level re-validates itself (and
    coerces enum strings) in its ``__post_init__`` exactly as a hand-built
    configuration would.
    """
    head = segments[0]
    if len(segments) == 1:
        replacement = value
    else:
        replacement = _replace_path(getattr(obj, head), segments[1:], value)
    try:
        return replace(obj, **{head: replacement})
    except (TypeError, ValueError) as exc:
        raise CampaignError(
            f"cannot apply swept value {value!r} to {'.'.join(segments)!r}: {exc}"
        ) from exc


def apply_sweep_point(
    settings: ExperimentSettings, point: Sequence[tuple[str, Any]]
) -> ExperimentSettings:
    """Return ``settings`` with every ``(path, value)`` of a point applied.

    Paths may be plain :class:`~repro.sim.ExperimentSettings` fields or
    dotted paths into the nested ``l2_config``/``mtj`` configurations; each
    path is validated against ``settings`` before application.
    """
    for path, value in point:
        validate_sweep_path(settings, path)
        settings = _replace_path(settings, path.split("."), value)
    return settings


def _normalise_scheme(scheme: ProtectionScheme | str) -> str:
    try:
        return ProtectionScheme(scheme).value
    except ValueError as exc:
        raise CampaignError(f"unknown protection scheme: {scheme!r}") from exc


def _normalise_point(point: Any) -> tuple[tuple[str, Any], ...]:
    items = point.items() if isinstance(point, Mapping) else point
    normalised = []
    for name, value in items:
        if not isinstance(name, str) or not name:
            raise CampaignError("sweep parameter names must be non-empty strings")
        if not isinstance(value, _SCALAR_TYPES):
            raise CampaignError(
                f"swept value for {name!r} must be a JSON scalar, got {type(value).__name__}"
            )
        normalised.append((name, value))
    return tuple(normalised)


@dataclass(frozen=True)
class JobSpec:
    """One unit of campaign work: compare schemes on one workload.

    Attributes:
        workload: SPEC-named workload profile to evaluate.
        settings: Fully resolved experiment settings for this job (sweep
            point already applied, seed already strided).
        baseline: Scheme the alternatives are normalised against.
        alternatives: Schemes evaluated against the baseline.
        point: The swept-parameter assignment this job realises, as ordered
            ``(name, value)`` pairs; empty for unswept campaigns.  Part of
            the job identity so reports can group results by point.
    """

    workload: str
    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    baseline: str = ProtectionScheme.CONVENTIONAL.value
    alternatives: tuple[str, ...] = (ProtectionScheme.REAP.value,)
    point: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.workload:
            raise CampaignError("job workload must be non-empty")
        object.__setattr__(self, "baseline", _normalise_scheme(self.baseline))
        if not self.alternatives:
            raise CampaignError("job needs at least one alternative scheme")
        object.__setattr__(
            self,
            "alternatives",
            tuple(_normalise_scheme(s) for s in self.alternatives),
        )
        object.__setattr__(self, "point", _normalise_point(self.point))

    @property
    def key(self) -> str:
        """Content hash identifying this job in the result store."""
        return content_hash({"schema": SCHEMA_VERSION, "job": self.to_dict()})

    @property
    def point_label(self) -> str:
        """Human-readable sweep-point label, e.g. ``p_cell=1e-07``."""
        if not self.point:
            return "-"
        return ",".join(f"{name}={value}" for name, value in self.point)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary."""
        return {
            "workload": self.workload,
            "settings": self.settings.to_dict(),
            "baseline": self.baseline,
            "alternatives": list(self.alternatives),
            "point": [[name, value] for name, value in self.point],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Build from a plain dictionary (inverse of :meth:`to_dict`)."""
        try:
            return cls(
                workload=data["workload"],
                settings=ExperimentSettings.from_dict(data["settings"]),
                baseline=data.get("baseline", ProtectionScheme.CONVENTIONAL.value),
                alternatives=tuple(data.get("alternatives", ("reap",))),
                point=tuple((n, v) for n, v in data.get("point", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"malformed job payload: {exc}") from exc


@dataclass(frozen=True)
class CampaignSpec:
    """A cross-product of workloads, schemes, and swept parameters.

    Attributes:
        name: Campaign name (reporting only; not part of job identity).
        workloads: Workload profile names, evaluated in order.
        base_settings: Settings shared by every job before the sweep point
            is applied.
        baseline: Baseline scheme for every comparison.
        alternatives: Alternative schemes for every comparison.
        sweep: Ordered ``(parameter, values)`` pairs; the campaign evaluates
            the full cross-product of the value lists.  Parameters are
            scalar :class:`ExperimentSettings` fields or dotted paths into
            the nested configurations (``l2_config.associativity``,
            ``l2_config.ecc.kind``, ``mtj.read_current_ua``).  A mapping is
            also accepted and normalised.
        stride_seed: Offset each job's seed by its workload index (matching
            :class:`repro.sim.ExperimentRunner`), so workloads draw
            independent traces.
    """

    name: str
    workloads: tuple[str, ...]
    base_settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    baseline: str = ProtectionScheme.CONVENTIONAL.value
    alternatives: tuple[str, ...] = (ProtectionScheme.REAP.value,)
    sweep: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    stride_seed: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign name must be non-empty")
        object.__setattr__(self, "workloads", tuple(self.workloads))
        if not self.workloads:
            raise CampaignError("campaign needs at least one workload")
        object.__setattr__(self, "baseline", _normalise_scheme(self.baseline))
        if not self.alternatives:
            raise CampaignError("campaign needs at least one alternative scheme")
        object.__setattr__(
            self,
            "alternatives",
            tuple(_normalise_scheme(s) for s in self.alternatives),
        )
        sweep = self.sweep
        items = sweep.items() if isinstance(sweep, Mapping) else sweep
        normalised = []
        for parameter, values in items:
            if "." in parameter:
                validate_sweep_path(self.base_settings, parameter)
            elif parameter not in SWEEPABLE_FIELDS:
                raise CampaignError(
                    f"cannot sweep {parameter!r}; sweepable fields: "
                    f"{sorted(SWEEPABLE_FIELDS)}, or a dotted path into "
                    "'l2_config' / 'mtj' (e.g. 'l2_config.associativity', "
                    "'l2_config.ecc.kind')"
                )
            values = tuple(values)
            if not values:
                raise CampaignError(f"sweep for {parameter!r} has no values")
            for value in values:
                if not isinstance(value, _SCALAR_TYPES):
                    raise CampaignError(
                        f"swept value for {parameter!r} must be a JSON scalar"
                    )
            normalised.append((parameter, values))
        object.__setattr__(self, "sweep", tuple(normalised))

    def points(self) -> list[tuple[tuple[str, Any], ...]]:
        """All sweep points, in cross-product order; ``[()]`` when unswept."""
        if not self.sweep:
            return [()]
        names = [parameter for parameter, _ in self.sweep]
        value_lists = [values for _, values in self.sweep]
        return [
            tuple(zip(names, combination))
            for combination in itertools.product(*value_lists)
        ]

    def settings_at(self, point: Sequence[tuple[str, Any]]) -> ExperimentSettings:
        """Base settings with one sweep point applied (dotted paths included)."""
        return apply_sweep_point(self.base_settings, point)

    def jobs(self) -> list[JobSpec]:
        """Expand the campaign into its job list (points outer, workloads inner)."""
        expanded = []
        for point in self.points():
            point_settings = self.settings_at(point)
            for index, workload in enumerate(self.workloads):
                seed = point_settings.seed + index if self.stride_seed else point_settings.seed
                expanded.append(
                    JobSpec(
                        workload=workload,
                        settings=replace(point_settings, seed=seed),
                        baseline=self.baseline,
                        alternatives=self.alternatives,
                        point=tuple(point),
                    )
                )
        return expanded

    @property
    def num_jobs(self) -> int:
        """Total number of jobs the campaign expands to."""
        num_points = 1
        for _, values in self.sweep:
            num_points *= len(values)
        return num_points * len(self.workloads)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary."""
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "base_settings": self.base_settings.to_dict(),
            "baseline": self.baseline,
            "alternatives": list(self.alternatives),
            "sweep": [[parameter, list(values)] for parameter, values in self.sweep],
            "stride_seed": self.stride_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build from a plain dictionary (inverse of :meth:`to_dict`)."""
        try:
            return cls(
                name=data["name"],
                workloads=tuple(data["workloads"]),
                base_settings=ExperimentSettings.from_dict(data.get("base_settings", {})),
                baseline=data.get("baseline", ProtectionScheme.CONVENTIONAL.value),
                alternatives=tuple(data.get("alternatives", ("reap",))),
                sweep=tuple(
                    (parameter, tuple(values))
                    for parameter, values in data.get("sweep", ())
                ),
                stride_seed=bool(data.get("stride_seed", True)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"malformed campaign payload: {exc}") from exc
