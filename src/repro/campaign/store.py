"""Persistent JSONL result store keyed by job content hash.

One line per completed job:

``{"job": {...}, "key": "<sha256>", "result": {...}, "schema": 1}``

Lines are canonical JSON (sorted keys, no whitespace), so a given job always
serialises to the same bytes regardless of worker count or completion order
— the property the resume test pins down.  The file is append-only while a
campaign runs (crash-safe resumability: every completed job survives), and
:meth:`ResultStore.compact` rewrites it sorted by key for deterministic
whole-file bytes.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import CampaignError
from ..sim.results import SchemeRunResult, WorkloadComparison
from .hashing import canonical_json
from .spec import SCHEMA_VERSION, JobSpec


def run_result_to_dict(result: SchemeRunResult) -> dict[str, Any]:
    """Serialise one scheme run to a plain dictionary."""
    payload = asdict(result)
    payload["extra"] = dict(result.extra)
    return payload


def run_result_from_dict(data: Mapping[str, Any]) -> SchemeRunResult:
    """Rebuild a scheme run from its dictionary form."""
    try:
        payload = dict(data)
        payload["extra"] = dict(payload.get("extra", {}))
        return SchemeRunResult(**payload)
    except TypeError as exc:
        raise CampaignError(f"malformed run-result payload: {exc}") from exc


def comparison_to_dict(comparison: WorkloadComparison) -> dict[str, Any]:
    """Serialise a workload comparison to a plain dictionary."""
    return {
        "workload": comparison.workload,
        "baseline": run_result_to_dict(comparison.baseline),
        "alternatives": [run_result_to_dict(r) for r in comparison.alternatives],
    }


def comparison_from_dict(data: Mapping[str, Any]) -> WorkloadComparison:
    """Rebuild a workload comparison from its dictionary form."""
    try:
        return WorkloadComparison(
            workload=data["workload"],
            baseline=run_result_from_dict(data["baseline"]),
            alternatives=tuple(
                run_result_from_dict(r) for r in data["alternatives"]
            ),
        )
    except (KeyError, TypeError) as exc:
        raise CampaignError(f"malformed comparison payload: {exc}") from exc


class ResultStore:
    """JSONL-on-disk store of completed campaign jobs.

    Args:
        path: Store file location; parent directories are created.  The file
            itself is created on the first :meth:`put`.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._lines: dict[str, str] = {}
        if self._path.exists():
            self._load()

    def _load(self) -> None:
        with self._path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise CampaignError(
                        f"{self._path}:{line_number}: invalid JSON: {exc}"
                    ) from exc
                if not isinstance(record, dict) or "key" not in record:
                    raise CampaignError(
                        f"{self._path}:{line_number}: record has no 'key' field"
                    )
                if record.get("schema") != SCHEMA_VERSION:
                    raise CampaignError(
                        f"{self._path}:{line_number}: schema "
                        f"{record.get('schema')!r} != {SCHEMA_VERSION} "
                        "(store written by an incompatible version)"
                    )
                # Re-canonicalise so equality checks compare canonical bytes
                # even if the file was hand-edited or pretty-printed.
                self._lines[record["key"]] = canonical_json(record)

    # -- queries --------------------------------------------------------------

    @property
    def path(self) -> Path:
        """Location of the backing JSONL file."""
        return self._path

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, key: str) -> bool:
        return key in self._lines

    def keys(self) -> Iterator[str]:
        """Iterate over stored job keys (insertion order)."""
        return iter(self._lines)

    def record(self, key: str) -> dict[str, Any] | None:
        """Full stored record for a key (``None`` when absent)."""
        line = self._lines.get(key)
        return None if line is None else json.loads(line)

    def entry_line(self, key: str) -> str | None:
        """The exact canonical JSONL line stored for a key."""
        return self._lines.get(key)

    def get(self, key: str) -> WorkloadComparison | None:
        """Deserialise the stored comparison for a key (``None`` when absent)."""
        record = self.record(key)
        return None if record is None else comparison_from_dict(record["result"])

    def job(self, key: str) -> JobSpec | None:
        """Deserialise the stored job spec for a key (``None`` when absent)."""
        record = self.record(key)
        return None if record is None else JobSpec.from_dict(record["job"])

    # -- mutation -------------------------------------------------------------

    def put(self, job: JobSpec, comparison: WorkloadComparison) -> bool:
        """Record one completed job.

        Returns ``True`` when the entry was written, ``False`` when an
        identical entry was already present (idempotent re-put).

        Raises:
            CampaignError: if the key is present with a *different* payload —
                a determinism violation or a hash collision, either of which
                must fail loudly rather than silently overwrite.
        """
        record = {
            "schema": SCHEMA_VERSION,
            "key": job.key,
            "job": job.to_dict(),
            "result": comparison_to_dict(comparison),
        }
        line = canonical_json(record)
        existing = self._lines.get(job.key)
        if existing is not None:
            if existing == line:
                return False
            raise CampaignError(
                f"store already holds a different result for key {job.key} "
                f"({job.workload!r} @ {job.point_label}); refusing to overwrite"
            )
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._lines[job.key] = line
        return True

    def compact(self) -> None:
        """Rewrite the file with entries sorted by key (deterministic bytes)."""
        ordered = [self._lines[key] for key in sorted(self._lines)]
        tmp_path = self._path.with_suffix(self._path.suffix + ".tmp")
        tmp_path.write_text(
            "".join(line + "\n" for line in ordered), encoding="utf-8"
        )
        tmp_path.replace(self._path)
        self._lines = {json.loads(line)["key"]: line for line in ordered}
