"""Persistent JSONL result stores keyed by job content hash.

One line per completed job:

``{"job": {...}, "key": "<sha256>", "provenance": {...}, "result": {...},
"schema": 1}``

Lines are canonical JSON (sorted keys, no whitespace), so a given job always
serialises to the same bytes regardless of worker count, completion order,
or execution backend — the property the resume and distributed tests pin
down.  Files are append-only while a campaign runs (crash-safe
resumability: every completed job survives), each append is a single
``O_APPEND`` write of one whole line (safe for concurrent writers on a
local filesystem), and :meth:`ResultStore.compact` rewrites files sorted by
key for deterministic whole-file bytes.

Two rules keep stores mergeable across machines and code versions:

* An entry's *payload* is its ``job`` + ``result``; the ``provenance``
  field (package version + git hash, see
  :mod:`repro.campaign.provenance`) describes who wrote it and is never
  part of equality.  Re-putting an identical payload is idempotent even
  across versions; putting a *different* payload for an existing key is a
  determinism violation and fails loudly.
* A file whose final line is truncated (a writer died mid-append) is
  recovered by truncating back to the last complete line, with a warning;
  a corrupt line elsewhere is real corruption and raises.

:class:`ShardedResultStore` in :mod:`repro.campaign.shards` stores the same
records across one file per key prefix and shares all of this machinery.
"""

from __future__ import annotations

import json
import os
import warnings
from contextlib import contextmanager
from dataclasses import asdict
from pathlib import Path
from typing import Any, Iterator, Mapping

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..errors import CampaignError
from ..sim.results import SchemeRunResult, WorkloadComparison
from .faults import FaultInjected, _maybe_torn_length
from .hashing import canonical_json
from .provenance import provenance_dict, warn_on_mixed_provenance
from .spec import SCHEMA_VERSION, JobSpec


def run_result_to_dict(result: SchemeRunResult) -> dict[str, Any]:
    """Serialise one scheme run to a plain dictionary."""
    payload = asdict(result)
    payload["extra"] = dict(result.extra)
    return payload


def run_result_from_dict(data: Mapping[str, Any]) -> SchemeRunResult:
    """Rebuild a scheme run from its dictionary form."""
    try:
        payload = dict(data)
        payload["extra"] = dict(payload.get("extra", {}))
        return SchemeRunResult(**payload)
    except TypeError as exc:
        raise CampaignError(f"malformed run-result payload: {exc}") from exc


def comparison_to_dict(comparison: WorkloadComparison) -> dict[str, Any]:
    """Serialise a workload comparison to a plain dictionary."""
    return {
        "workload": comparison.workload,
        "baseline": run_result_to_dict(comparison.baseline),
        "alternatives": [run_result_to_dict(r) for r in comparison.alternatives],
    }


def comparison_from_dict(data: Mapping[str, Any]) -> WorkloadComparison:
    """Rebuild a workload comparison from its dictionary form."""
    try:
        return WorkloadComparison(
            workload=data["workload"],
            baseline=run_result_from_dict(data["baseline"]),
            alternatives=tuple(
                run_result_from_dict(r) for r in data["alternatives"]
            ),
        )
    except (KeyError, TypeError) as exc:
        raise CampaignError(f"malformed comparison payload: {exc}") from exc


def record_payload_line(record: Mapping[str, Any]) -> str:
    """Canonical bytes of the identity-bearing part of a store record.

    Two entries for the same key agree when their payload lines agree; the
    provenance field is deliberately excluded so stores written by different
    (behaviourally identical) code versions stay mergeable.
    """
    return canonical_json({"job": record.get("job"), "result": record.get("result")})


@contextmanager
def _file_lock(fd: int):
    """Exclusive advisory lock on ``fd`` (no-op where flock is unavailable).

    Serialises appends against the crash-repair truncation in
    :func:`load_jsonl_records`, so a reader can never mistake an in-flight
    append for a crashed writer's partial tail and truncate it away.
    """
    if fcntl is None:
        yield
        return
    fcntl.flock(fd, fcntl.LOCK_EX)
    try:
        yield
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)


def _append_line(path: Path, line: str) -> None:
    """Append one record line atomically enough for concurrent writers.

    A single ``write(2)`` of a whole line through an ``O_APPEND`` descriptor
    does not interleave with other writers on local filesystems, so several
    processes may share one store file and every line stays parseable.  The
    advisory lock additionally fences the append against a concurrent
    loader's crash repair.
    """
    data = (line + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        with _file_lock(fd):
            torn = _maybe_torn_length(len(data))
            if torn is not None:
                # Injected torn write: persist a prefix of the record and
                # crash out of the append, exactly the disk state a writer
                # killed mid-write(2) leaves behind.  The loader's tail
                # repair must recover it.
                os.write(fd, data[:torn])
                os.fsync(fd)
                raise FaultInjected(
                    f"injected torn append to {path} ({torn}/{len(data)} bytes)"
                )
            os.write(fd, data)
            os.fsync(fd)
    finally:
        os.close(fd)


def _repair_file(path: Path, expected_raw: str, repaired: str) -> bool:
    """Rewrite ``path`` under the append lock, re-checking its content first.

    The loader decides to repair from an *unlocked* read, which may have
    raced a live appender; under the exclusive lock the file is re-read and
    the repair only applied if the content is still exactly what the
    decision was based on.  Returns ``True`` when the repair was applied —
    ``False`` means a writer got in between and the caller must re-load.
    """
    fd = os.open(path, os.O_RDWR, 0o644)
    try:
        with _file_lock(fd):
            chunks = []
            while chunk := os.read(fd, 1 << 20):
                chunks.append(chunk)
            current = b"".join(chunks).decode("utf-8")
            if current != expected_raw:
                return False
            os.lseek(fd, 0, os.SEEK_SET)
            data = repaired.encode("utf-8")
            os.write(fd, data)
            os.ftruncate(fd, len(data))
            os.fsync(fd)
            return True
    finally:
        os.close(fd)


def load_jsonl_records(path: Path, lines: dict[str, str]) -> None:
    """Load one JSONL store file into ``lines`` (key -> canonical line).

    Recovers from a truncated final line — the signature of a writer killed
    mid-append — by truncating the file back to the last complete record
    (with a :class:`RuntimeWarning`).  Any other malformed line raises
    :class:`~repro.errors.CampaignError`: complete-but-corrupt records are
    data corruption, not a crash artifact, and must not be dropped silently.

    Repairs are fenced against live appenders: the rewrite happens under
    the same advisory lock :func:`_append_line` takes and re-checks the
    file content first, so an append caught mid-flight by the initial read
    triggers a re-load instead of a destructive truncation.
    """
    for _attempt in range(8):
        if _load_jsonl_once(path, lines):
            return
        # A concurrent writer landed between our read and the locked
        # repair; its append completed the tail, so re-read from scratch.
        lines.clear()
    raise CampaignError(
        f"{path}: could not obtain a stable view of the store "
        "(concurrent writers kept modifying it during crash repair)"
    )


def _load_jsonl_once(path: Path, lines: dict[str, str]) -> bool:
    """One load pass; ``False`` when a racing writer forces a re-read."""
    raw = path.read_text(encoding="utf-8")
    consumed = 0
    for line_number, line in enumerate(raw.splitlines(keepends=True), start=1):
        complete = line.endswith("\n")
        stripped = line.strip()
        if stripped:
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as exc:
                if not complete:
                    # Tail of a crashed append: drop it and repair the file
                    # so future appends start on a fresh line.
                    if not _repair_file(path, raw, raw[:consumed]):
                        return False
                    warnings.warn(
                        f"{path}: discarding truncated final record "
                        f"(line {line_number}); a writer likely died "
                        "mid-append",
                        RuntimeWarning,
                        stacklevel=5,
                    )
                    return True
                raise CampaignError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict) or "key" not in record:
                raise CampaignError(
                    f"{path}:{line_number}: record has no 'key' field"
                )
            if record.get("schema") != SCHEMA_VERSION:
                raise CampaignError(
                    f"{path}:{line_number}: schema "
                    f"{record.get('schema')!r} != {SCHEMA_VERSION} "
                    "(store written by an incompatible version)"
                )
            # Re-canonicalise so equality checks compare canonical bytes
            # even if the file was hand-edited or pretty-printed.
            lines[record["key"]] = canonical_json(record)
        if not complete:
            # A final record that parsed but lost its newline: repair it so
            # the next append does not glue onto it.
            return _repair_file(path, raw, raw + "\n")
        consumed += len(line)
    return True


class BaseResultStore:
    """Shared query/mutation machinery of the JSONL-backed stores.

    Subclasses provide the on-disk layout: :meth:`_load` fills the in-memory
    ``key -> canonical line`` map and :meth:`_shard_path` names the file a
    key's line is appended to.
    """

    def __init__(self) -> None:
        self._lines: dict[str, str] = {}

    # -- layout hooks ----------------------------------------------------------

    @property
    def path(self) -> Path:
        """Location of the store (file or directory)."""
        raise NotImplementedError

    def _shard_path(self, key: str) -> Path:
        """File that holds (or will hold) the entry for ``key``."""
        raise NotImplementedError

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._lines)

    def __contains__(self, key: str) -> bool:
        return key in self._lines

    def keys(self) -> Iterator[str]:
        """Iterate over stored job keys (insertion order)."""
        return iter(self._lines)

    def record(self, key: str) -> dict[str, Any] | None:
        """Full stored record for a key (``None`` when absent)."""
        line = self._lines.get(key)
        return None if line is None else json.loads(line)

    def entry_line(self, key: str) -> str | None:
        """The exact canonical JSONL line stored for a key."""
        return self._lines.get(key)

    def payload_line(self, key: str) -> str | None:
        """Canonical provenance-free payload bytes for a key."""
        record = self.record(key)
        return None if record is None else record_payload_line(record)

    def get(self, key: str) -> WorkloadComparison | None:
        """Deserialise the stored comparison for a key (``None`` when absent)."""
        record = self.record(key)
        return None if record is None else comparison_from_dict(record["result"])

    def job(self, key: str) -> JobSpec | None:
        """Deserialise the stored job spec for a key (``None`` when absent)."""
        record = self.record(key)
        return None if record is None else JobSpec.from_dict(record["job"])

    def provenances(self) -> list[Mapping[str, Any] | None]:
        """Provenance records of every entry (``None`` for legacy entries)."""
        return [json.loads(line).get("provenance") for line in self._lines.values()]

    def check_provenance(self) -> None:
        """Warn when entries from several code versions share this store."""
        warn_on_mixed_provenance(self.provenances(), f"store {self.path}")

    # -- mutation --------------------------------------------------------------

    def put(self, job: JobSpec, comparison: WorkloadComparison) -> bool:
        """Record one completed job.

        Returns ``True`` when the entry was written, ``False`` when an entry
        with an identical payload was already present (idempotent re-put,
        even when the existing entry was written by a different version).

        Raises:
            CampaignError: if the key is present with a *different* payload —
                a determinism violation or a hash collision, either of which
                must fail loudly rather than silently overwrite.
        """
        record = {
            "schema": SCHEMA_VERSION,
            "key": job.key,
            "job": job.to_dict(),
            "provenance": provenance_dict(),
            "result": comparison_to_dict(comparison),
        }
        line = canonical_json(record)
        if not self._admit_line(job.key, line):
            return False
        _append_line(self._shard_path(job.key), line)
        self._lines[job.key] = line
        return True

    def put_line(self, key: str, line: str) -> bool:
        """Record one entry from its exact canonical line (merge tool path).

        Preserves the source bytes — and therefore the source provenance —
        verbatim.  Same idempotence/conflict contract as :meth:`put`.
        """
        if not self._admit_line(key, line):
            return False
        _append_line(self._shard_path(key), line)
        self._lines[key] = line
        return True

    def _admit_line(self, key: str, line: str) -> bool:
        """Whether a new line for ``key`` must be appended (conflict-checked)."""
        existing = self._lines.get(key)
        if existing is None:
            return True
        if existing == line or record_payload_line(
            json.loads(existing)
        ) == record_payload_line(json.loads(line)):
            return False
        record = json.loads(line)
        job = record.get("job", {})
        raise CampaignError(
            f"store already holds a different result for key {key} "
            f"({job.get('workload')!r} @ {_point_label(job)}); "
            "refusing to overwrite"
        )


def _point_label(job_payload: Mapping[str, Any]) -> str:
    point = job_payload.get("point") or ()
    if not point:
        return "-"
    return ",".join(f"{name}={value}" for name, value in point)


class ResultStore(BaseResultStore):
    """Single-file JSONL store of completed campaign jobs.

    Args:
        path: Store file location; parent directories are created.  The file
            itself is created on the first :meth:`put`.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._path.exists():
            load_jsonl_records(self._path, self._lines)

    @property
    def path(self) -> Path:
        """Location of the backing JSONL file."""
        return self._path

    @property
    def checkpoint_path(self) -> Path:
        """Where a coordinator serving this store checkpoints its queue."""
        return self._path.with_name(self._path.name + ".checkpoint.json")

    def _shard_path(self, key: str) -> Path:
        return self._path

    def compact(self) -> None:
        """Rewrite the file with entries sorted by key (deterministic bytes)."""
        ordered = [self._lines[key] for key in sorted(self._lines)]
        tmp_path = self._path.with_suffix(self._path.suffix + ".tmp")
        tmp_path.write_text(
            "".join(line + "\n" for line in ordered), encoding="utf-8"
        )
        tmp_path.replace(self._path)
        self._lines = {json.loads(line)["key"]: line for line in ordered}
