"""Aggregation from the result store back into the paper's figure builders.

A campaign's store holds one comparison per (workload × sweep point).  These
helpers slice the store along the sweep axis and feed the per-point
comparison lists into the existing :mod:`repro.analysis` figure builders, so
cached campaign results regenerate Fig. 5 / Fig. 6 without re-simulating
anything.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Sequence

from ..analysis.figures import (
    Figure5Data,
    Figure6Data,
    comparisons_to_figure5,
    comparisons_to_figure6,
)
from ..errors import CampaignError
from ..sim.results import WorkloadComparison, format_table
from .runner import CampaignResult
from .spec import CampaignSpec, JobSpec
from .store import BaseResultStore


def missing_jobs(spec: CampaignSpec, store: BaseResultStore) -> list[JobSpec]:
    """Jobs of ``spec`` that have no entry in ``store`` yet."""
    return [job for job in spec.jobs() if job.key not in store]


def comparisons_at_point(
    spec: CampaignSpec,
    store: BaseResultStore,
    point: Sequence[tuple[str, Any]] = (),
) -> list[WorkloadComparison]:
    """Stored comparisons for one sweep point, in workload order.

    Raises:
        CampaignError: if the point is not part of the campaign or any of
            its jobs is missing from the store (run the campaign first).
    """
    point = tuple(point)
    if point not in spec.points():
        raise CampaignError(f"point {point!r} is not part of campaign {spec.name!r}")
    comparisons = []
    for job in spec.jobs():
        if job.point != point:
            continue
        comparison = store.get(job.key)
        if comparison is None:
            raise CampaignError(
                f"store {store.path} is missing job {job.workload!r} @ "
                f"{job.point_label} (key {job.key[:12]}...); run the campaign first"
            )
        comparisons.append(comparison)
    return comparisons


def figure5_from_store(
    spec: CampaignSpec,
    store: BaseResultStore,
    point: Sequence[tuple[str, Any]] = (),
) -> Figure5Data:
    """Build Fig. 5 (MTTF improvement) from stored results at one point."""
    return comparisons_to_figure5(comparisons_at_point(spec, store, point))


def figure6_from_store(
    spec: CampaignSpec,
    store: BaseResultStore,
    point: Sequence[tuple[str, Any]] = (),
) -> Figure6Data:
    """Build Fig. 6 (dynamic energy) from stored results at one point."""
    return comparisons_to_figure6(comparisons_at_point(spec, store, point))


#: Per-job summary columns shared by the text table and the CSV export.
_SUMMARY_HEADERS = (
    "workload",
    "point",
    "scheme",
    "mttf improvement",
    "energy overhead (%)",
    "status",
    "elapsed (s)",
)

_SUMMARY_CSV_HEADERS = (
    "workload",
    "point",
    "scheme",
    "mttf_improvement",
    "energy_overhead_percent",
    "status",
    "elapsed_s",
)


def _summary_rows(result: CampaignResult) -> list[list[Any]]:
    """One row per outcome, reporting the first alternative scheme's
    headline metrics (MTTF improvement and dynamic-energy overhead against
    the baseline)."""
    rows = []
    for outcome in result.outcomes:
        job = outcome.job
        scheme = job.alternatives[0]
        comparison = outcome.comparison
        rows.append(
            [
                job.workload,
                job.point_label,
                scheme,
                comparison.mttf_improvement(scheme),
                comparison.energy_overhead_percent(scheme),
                "cached" if outcome.cached else "ran",
                outcome.elapsed_s,
            ]
        )
    return rows


def render_campaign_summary(result: CampaignResult) -> str:
    """Fixed-width per-job summary table of a finished campaign run."""
    table = format_table(list(_SUMMARY_HEADERS), _summary_rows(result))
    footer = (
        f"{len(result.outcomes)} jobs: {result.executed} executed, "
        f"{result.cached} cached | backend={result.backend} "
        f"workers={result.workers} | wall time {result.elapsed_s:.2f}s"
    )
    return f"{table}\n{footer}"


def campaign_summary_to_csv(result: CampaignResult, path: str | Path) -> Path:
    """Write the per-job summary to a CSV file and return its path."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_SUMMARY_CSV_HEADERS)
        for row in _summary_rows(result):
            writer.writerow(row[:-1] + [f"{row[-1]:.6f}"])
    return path
