"""Sharded JSONL result store: one file per key prefix, concurrent-safe.

A :class:`ShardedResultStore` is a directory holding

* ``store.json`` — a tiny manifest (``{"schema": 1, "shard_width": 2}``)
  that marks the directory as a sharded store and fixes the prefix width;
* ``shard-<prefix>.jsonl`` — one append-only JSONL file per key prefix,
  holding exactly the records :class:`~repro.campaign.store.ResultStore`
  would hold, in the same canonical byte form.

Keys are SHA-256 content hashes, so prefix sharding spreads entries
uniformly; with the default width of 2 a store fans out over up to 256
files.  Sharding buys two things over the single-file store:

* **Concurrent writers.** Every append is a single ``O_APPEND`` write of a
  whole line, and writers of different jobs usually land on different
  files, so several campaign processes (or several coordinators on a
  shared filesystem) can fill one store simultaneously.
* **Cheap merging.** Two stores filled on different machines merge
  shard-by-shard (:func:`repro.campaign.tools.merge_stores`); after
  :meth:`compact`, equal stores are byte-identical file-by-file.

The store implements the exact :class:`ResultStore` interface, so every
campaign/report/CLI entry point accepts either interchangeably.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..errors import CampaignError
from .hashing import canonical_json
from .spec import SCHEMA_VERSION
from .store import BaseResultStore, load_jsonl_records

#: Manifest file marking a directory as a sharded store.
MANIFEST_NAME = "store.json"

#: Coordinator checkpoint file kept beside the shards (not a shard itself:
#: the shard glob only matches ``shard-*.jsonl``).
CHECKPOINT_NAME = "coordinator-checkpoint.json"

#: Default number of leading key hex digits used as the shard name.
DEFAULT_SHARD_WIDTH = 2

_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".jsonl"


class ShardedResultStore(BaseResultStore):
    """Directory-of-shards JSONL store of completed campaign jobs.

    Args:
        path: Store directory; created (with parents and manifest) when it
            does not exist yet.
        shard_width: Number of leading key hex digits per shard file, fixed
            at creation time.  Reopening an existing store reads the width
            from its manifest; passing a conflicting explicit width raises.
    """

    def __init__(self, path: str | Path, shard_width: int | None = None) -> None:
        super().__init__()
        self._path = Path(path)
        if self._path.exists() and not self._path.is_dir():
            raise CampaignError(
                f"sharded store path {self._path} exists and is not a directory "
                "(use ResultStore for single-file stores)"
            )
        manifest_path = self._path / MANIFEST_NAME
        if manifest_path.exists():
            manifest = self._read_manifest(manifest_path)
            stored_width = manifest["shard_width"]
            if shard_width is not None and shard_width != stored_width:
                raise CampaignError(
                    f"store {self._path} was created with shard_width="
                    f"{stored_width}, cannot reopen with {shard_width}"
                )
            self._shard_width = stored_width
        else:
            if self._path.exists() and any(self._shard_files()):
                raise CampaignError(
                    f"{self._path} holds shard files but no {MANIFEST_NAME} "
                    "manifest; refusing to guess the shard width"
                )
            self._shard_width = (
                DEFAULT_SHARD_WIDTH if shard_width is None else shard_width
            )
            if not 1 <= self._shard_width <= 8:
                raise CampaignError("shard_width must be between 1 and 8")
            self._path.mkdir(parents=True, exist_ok=True)
            tmp = manifest_path.with_suffix(".tmp")
            tmp.write_text(
                canonical_json(
                    {"schema": SCHEMA_VERSION, "shard_width": self._shard_width}
                )
                + "\n",
                encoding="utf-8",
            )
            tmp.replace(manifest_path)
        self._load()

    def _read_manifest(self, manifest_path: Path) -> dict:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable store manifest {manifest_path}: {exc}") from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("schema") != SCHEMA_VERSION
            or not isinstance(manifest.get("shard_width"), int)
        ):
            raise CampaignError(
                f"store manifest {manifest_path} is malformed or written by "
                "an incompatible version"
            )
        return manifest

    def _shard_files(self) -> list[Path]:
        return sorted(
            p
            for p in self._path.glob(f"{_SHARD_PREFIX}*{_SHARD_SUFFIX}")
            if p.is_file()
        )

    def _load(self) -> None:
        self._lines.clear()
        for shard in self._shard_files():
            load_jsonl_records(shard, self._lines)

    # -- layout ----------------------------------------------------------------

    @property
    def path(self) -> Path:
        """Store directory."""
        return self._path

    @property
    def checkpoint_path(self) -> Path:
        """Where a coordinator serving this store checkpoints its queue."""
        return self._path / CHECKPOINT_NAME

    @property
    def shard_width(self) -> int:
        """Number of leading key hex digits per shard."""
        return self._shard_width

    def shard_name(self, key: str) -> str:
        """Shard file name holding entries whose keys share ``key``'s prefix."""
        return f"{_SHARD_PREFIX}{key[: self._shard_width]}{_SHARD_SUFFIX}"

    def _shard_path(self, key: str) -> Path:
        return self._path / self.shard_name(key)

    def shard_paths(self) -> list[Path]:
        """Existing shard files, sorted by name."""
        return self._shard_files()

    # -- maintenance -----------------------------------------------------------

    def refresh(self) -> int:
        """Re-scan the shard files and return the number of new entries.

        Concurrent writers append entries this process has not seen;
        refreshing folds them in (the in-memory map is rebuilt, so repaired
        or compacted shards are also picked up).
        """
        before = len(self._lines)
        self._load()
        return len(self._lines) - before

    def compact(self) -> None:
        """Rewrite every shard with entries sorted by key.

        After compaction two stores with equal entries and equal shard
        width are byte-identical file-by-file — the comparison the
        distributed end-to-end test performs.
        """
        by_shard: dict[str, list[str]] = {}
        for key in sorted(self._lines):
            by_shard.setdefault(self.shard_name(key), []).append(self._lines[key])
        for shard in self._shard_files():
            if shard.name not in by_shard:
                os.unlink(shard)
        for name, lines in by_shard.items():
            shard = self._path / name
            tmp = shard.with_suffix(shard.suffix + ".tmp")
            tmp.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
            tmp.replace(shard)
