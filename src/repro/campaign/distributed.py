"""Multi-machine campaign execution: coordinator, workers, frame protocol.

The distributed backend splits a campaign across processes that need share
nothing but a TCP connection:

* The **coordinator** (:class:`Coordinator`) owns the pending-job queue.
  It answers *pull* requests — work-stealing scheduling: an idle worker
  pulls its next job the moment it is free, so fast machines naturally
  take more jobs — and collects streamed results.  Every handed-out job
  carries a **lease**; a worker renews its lease with heartbeats while it
  computes, and a lease that expires (worker death, network partition)
  puts the job back on the queue for someone else.  A job that fails
  repeatedly (``max_attempts``) fails the campaign loudly — or, with
  ``quarantine=True``, is parked on a poison list so the rest of the
  campaign still completes.
* A **worker** (:func:`run_worker`) is a dumb loop: pull, execute the
  process-agnostic payload via
  :func:`repro.campaign.execution.execute_payload`, stream the result
  back, repeat until the coordinator says it is done.  Workers hold no
  campaign state, so killing one at any moment loses nothing but the
  lease-timeout worth of wall time.  Transient coordinator outages are
  ridden out with seeded exponential backoff
  (``reconnect_timeout_s``) instead of killing the worker.

Jobs are deterministic, so it does not matter *which* worker runs one:
results stream back as the same dictionaries the in-process backends
produce, and store entries stay byte-identical to a serial run.  Duplicate
completions (a lease expired but the original worker finished anyway) are
detected by key and ignored — both copies are identical by construction —
and a *late* result whose job has already been requeued is rejected so the
retry attempt's result is the one that counts.

The wire format is deliberately primitive: one length-prefixed JSON frame
(4-byte big-endian length, UTF-8 JSON body) per message, one
request/response exchange per connection.  Messages:

========== ============================== ===================================
direction  message                        response
========== ============================== ===================================
worker →   ``{"type": "pull", ...}``      ``job`` | ``wait`` | ``shutdown``
worker →   ``{"type": "result", ...}``    ``ack``
worker →   ``{"type": "error", ...}``     ``ack``
worker →   ``{"type": "heartbeat", ...}`` ``ack``
========== ============================== ===================================

Frames are unauthenticated by default and must then only be exposed on
trusted networks (bind to localhost or a private interface).  With a
shared secret (``auth_key`` / ``REPRO_AUTH_KEY``, see :class:`FrameAuth`)
every frame body is prefixed with an HMAC-SHA256 tag, verified in constant
time; lease grants additionally carry a single-use nonce that result,
error and heartbeat frames must echo, so captured frames cannot be
replayed against a live lease.  Unsigned, truncated or garbage frames are
dropped without a reply — and without disturbing the campaign.

Crash recovery: give the coordinator a ``checkpoint`` path and it
periodically snapshots its job queue, attempts, poison list and lease
table (atomic ``mkstemp`` + ``rename``, the artifact-cache publish
discipline).  :meth:`Coordinator.resume_from_checkpoint` rebuilds pending
work by diffing the checkpoint against the *result store* — the durable
truth — so a killed-and-restarted coordinator finishes the campaign with
a byte-identical store.

All network and store paths consult :mod:`repro.campaign.faults`, so every
failure mode above can be injected deterministically in the chaos suite.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import queue
import random
import secrets
import socket
import struct
import tempfile
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from ..errors import CampaignError, FrameAuthError
from ..telemetry import activate, emit_counter, emit_event
from ..telemetry import current as telemetry_current
from .faults import (
    FAULT_PLAN_ENV,
    FaultInjected,
    activate_faults,
    current_injector,
    enable_faults_for_process,
    fault_point,
)
from .spec import SCHEMA_VERSION

#: Upper bound on one frame's body, to fail fast on garbage length prefixes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Environment variable carrying the shared frame-authentication key.
AUTH_KEY_ENV = "REPRO_AUTH_KEY"

#: ``kind`` marker of a coordinator checkpoint file.
CHECKPOINT_KIND = "coordinator-checkpoint"

_LENGTH = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Frame authentication
# ---------------------------------------------------------------------------


class FrameAuth:
    """HMAC-SHA256 signer/verifier for protocol frames.

    When enabled on both sides, every frame body becomes ``MAC || JSON``
    (the 4-byte length prefix covers both).  Verification is constant-time
    (:func:`hmac.compare_digest`); a frame that is unsigned, shorter than
    one MAC, or signed with a different key raises
    :class:`~repro.errors.FrameAuthError` at the receiver, which drops the
    connection without replying.  The key is an operational secret — like
    every other transport knob it never enters job identity or store bytes.
    """

    #: Length of the HMAC-SHA256 tag prefixed to each signed frame body.
    MAC_BYTES = 32

    def __init__(self, key: str | bytes) -> None:
        if isinstance(key, str):
            key = key.encode("utf-8")
        if not key:
            raise CampaignError("frame auth key must be non-empty")
        self._key = bytes(key)

    def sign(self, body: bytes) -> bytes:
        """The MAC to prefix to ``body``."""
        return hmac.new(self._key, body, hashlib.sha256).digest()

    def verify(self, mac: bytes, body: bytes) -> bool:
        """Constant-time check that ``mac`` signs ``body`` under this key."""
        return hmac.compare_digest(mac, self.sign(body))

    @classmethod
    def resolve(cls, key: "str | bytes | FrameAuth | None" = None) -> "FrameAuth | None":
        """Map a CLI/env spelling to an instance (``None`` = auth off).

        An explicit ``key`` wins; otherwise the ``REPRO_AUTH_KEY``
        environment variable is consulted, so coordinator and workers can
        share a secret without putting it on command lines.
        """
        if isinstance(key, FrameAuth):
            return key
        if key is None:
            key = os.environ.get(AUTH_KEY_ENV)
        if not key:
            return None
        return cls(key)


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------


def send_frame(
    sock: socket.socket, message: dict[str, Any], auth: FrameAuth | None = None
) -> None:
    """Send one length-prefixed JSON frame (signed when ``auth`` is given)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CampaignError(f"frame of {len(body)} bytes exceeds the protocol limit")
    if auth is not None:
        body = auth.sign(body) + body
    emit_counter(
        "net.frame",
        _LENGTH.size + len(body),
        direction="send",
        msg=str(message.get("type", "?")),
    )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, auth: FrameAuth | None = None
) -> dict[str, Any] | None:
    """Receive one frame; ``None`` on a clean peer shutdown.

    With ``auth`` given, the leading MAC is stripped and verified before
    the body is even parsed; a missing or mismatched MAC raises
    :class:`~repro.errors.FrameAuthError` so callers can reject hostile
    peers without ever feeding their bytes to the JSON decoder.
    """
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise CampaignError(f"peer announced a {length}-byte frame; refusing")
    body = _recv_exact(sock, length)
    if body is None:
        raise CampaignError("connection closed mid-frame")
    if auth is not None:
        if len(body) < FrameAuth.MAC_BYTES:
            raise FrameAuthError(
                "frame shorter than one MAC: unsigned or truncated"
            )
        mac, body = body[: FrameAuth.MAC_BYTES], body[FrameAuth.MAC_BYTES :]
        if not auth.verify(mac, body):
            raise FrameAuthError("frame failed HMAC verification")
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict) or "type" not in message:
        raise CampaignError("malformed protocol frame (no 'type')")
    emit_counter(
        "net.frame",
        _LENGTH.size + length,
        direction="recv",
        msg=str(message.get("type", "?")),
    )
    return message


def parse_address(address: str) -> tuple[str, int]:
    """Split ``tcp://host:port`` into its components."""
    if not address.startswith("tcp://"):
        raise CampaignError(
            f"unsupported backend address {address!r}; expected tcp://HOST:PORT"
        )
    host, separator, port_text = address[len("tcp://") :].rpartition(":")
    if not separator or not host:
        raise CampaignError(f"malformed backend address {address!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise CampaignError(f"malformed port in backend address {address!r}") from exc
    if not 0 <= port <= 65535:
        raise CampaignError(f"port out of range in backend address {address!r}")
    return host, port


def _exchange(
    address: str,
    message: dict[str, Any],
    timeout_s: float,
    auth: FrameAuth | None,
) -> dict[str, Any]:
    host, port = parse_address(address)
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        send_frame(sock, message, auth)
        reply = recv_frame(sock, auth)
    if reply is None:
        raise CampaignError(f"coordinator at {address} closed without replying")
    return reply


def _send_corrupted(
    address: str,
    message: dict[str, Any],
    timeout_s: float,
    auth: FrameAuth | None,
    injector,
) -> None:
    """Deliver ``message`` with one seeded byte flipped (fault injection)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if auth is not None:
        body = auth.sign(body) + body
    body = injector.corrupt_bytes(body)
    try:
        host, port = parse_address(address)
        with socket.create_connection((host, port), timeout=timeout_s) as sock:
            sock.sendall(_LENGTH.pack(len(body)) + body)
            recv_frame(sock)
    except (OSError, CampaignError, json.JSONDecodeError, UnicodeDecodeError):
        pass


def request(
    address: str,
    message: dict[str, Any],
    timeout_s: float = 10.0,
    auth: FrameAuth | None = None,
) -> dict[str, Any]:
    """One request/response exchange with the coordinator at ``address``.

    When a fault injector is active in this context, the exchange may be
    dropped, corrupted, duplicated or delayed per the plan; injected
    losses surface as :class:`~repro.campaign.faults.FaultInjected` (a
    :class:`~repro.errors.CampaignError`), taking exactly the paths a real
    network failure would.
    """
    injector = current_injector()
    if injector is None:
        return _exchange(address, message, timeout_s, auth)
    fate = injector.frame_fate(str(message.get("type", "?")))
    if fate is None:
        return _exchange(address, message, timeout_s, auth)
    if fate == "drop":
        raise FaultInjected(
            f"injected drop of {message.get('type')!r} frame to {address}"
        )
    if fate == "delay":
        time.sleep(injector.plan.delay_s)
        return _exchange(address, message, timeout_s, auth)
    if fate == "corrupt":
        _send_corrupted(address, message, timeout_s, auth, injector)
        raise FaultInjected(
            f"injected corruption of {message.get('type')!r} frame to {address}"
        )
    if fate == "duplicate":
        reply = _exchange(address, message, timeout_s, auth)
        try:
            _exchange(address, message, timeout_s, auth)
        except (OSError, CampaignError):
            pass
        return reply
    # fate == "drop_reply": the frame arrives but the reply is lost.
    try:
        _exchange(address, message, timeout_s, auth)
    except (OSError, CampaignError):
        pass
    raise FaultInjected(
        f"injected reply drop for {message.get('type')!r} frame to {address}"
    )


# ---------------------------------------------------------------------------
# Coordinator checkpoints
# ---------------------------------------------------------------------------


def load_checkpoint(path: str | Path) -> dict[str, Any] | None:
    """Read a coordinator checkpoint; ``None`` when the file is absent.

    Raises :class:`~repro.errors.CampaignError` when the file exists but
    is not a checkpoint this version understands — resuming from garbage
    must fail loudly, never silently drop jobs.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"unreadable coordinator checkpoint {path}: {exc}") from exc
    if (
        not isinstance(state, dict)
        or state.get("kind") != CHECKPOINT_KIND
        or state.get("schema") != SCHEMA_VERSION
        or not isinstance(state.get("payloads"), dict)
    ):
        raise CampaignError(
            f"{path} is not a coordinator checkpoint (or was written by an "
            "incompatible version)"
        )
    return state


def recover_pending_payloads(
    checkpoint: Mapping[str, Any], store: Any | None = None
) -> dict[str, dict[str, Any]]:
    """The checkpointed jobs that still need to run, diffed against ``store``.

    The checkpoint's own ``completed`` list is deliberately *not* trusted:
    a coordinator can crash after marking a job completed but before the
    store append became durable (a torn write), and re-running a completed
    job is idempotent while skipping an incomplete one loses data.  The
    result store — refreshed first, when it supports
    ``refresh()`` — is the durable truth; only quarantined (poisoned) jobs
    are excluded on the checkpoint's say-so, since they have no store entry
    by definition.
    """
    completed = set(checkpoint.get("poisoned") or {})
    if store is not None:
        refresh = getattr(store, "refresh", None)
        if callable(refresh):
            refresh()
        completed.update(store.keys())
    payloads = checkpoint.get("payloads") or {}
    return {key: payload for key, payload in payloads.items() if key not in completed}


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class _Lease:
    key: str
    worker: str
    deadline: float
    #: ``time.monotonic()`` at hand-out, for coordinator-observed elapsed.
    granted: float
    #: Replay nonce the holder must echo (``None`` when auth is off).
    nonce: str | None = None


class Coordinator:
    """Serves the pending-job queue to pull-based workers over TCP.

    Args:
        address: ``tcp://host:port`` to listen on; port ``0`` binds an
            ephemeral port (read :attr:`address` for the resolved one).
        lease_timeout_s: How long a handed-out job may go without a
            heartbeat or result before it is requeued for another worker.
        max_attempts: How many times one job may be handed out before the
            campaign fails (guards against a job that kills every worker
            that touches it).
        auth_key: Shared HMAC key (string, bytes or :class:`FrameAuth`);
            defaults to the ``REPRO_AUTH_KEY`` environment variable, and
            auth is off when neither is set.
        quarantine: Park a job that exhausts ``max_attempts`` on the
            poison list (reported at the end of :meth:`results` and via
            ``repro-reap stats``) instead of failing the whole campaign.
        checkpoint: Path to periodically snapshot the queue/lease state to
            (atomic replace); ``None`` disables checkpointing.
        checkpoint_interval_s: Minimum seconds between checkpoint writes.
        frame_timeout_s: Per-connection send/recv timeout.

    The listening socket opens at construction, so workers may connect
    (and politely ``wait``) before :meth:`submit` provides any jobs.
    """

    def __init__(
        self,
        address: str = "tcp://127.0.0.1:0",
        lease_timeout_s: float = 30.0,
        max_attempts: int = 3,
        auth_key: "str | bytes | FrameAuth | None" = None,
        quarantine: bool = False,
        checkpoint: str | Path | None = None,
        checkpoint_interval_s: float = 2.0,
        frame_timeout_s: float = 10.0,
    ) -> None:
        if lease_timeout_s <= 0:
            raise CampaignError("lease_timeout_s must be positive")
        if max_attempts < 1:
            raise CampaignError("max_attempts must be >= 1")
        if frame_timeout_s <= 0:
            raise CampaignError("frame_timeout_s must be positive")
        host, port = parse_address(address)
        self._lease_timeout = lease_timeout_s
        self._max_attempts = max_attempts
        self._auth = FrameAuth.resolve(auth_key)
        self._quarantine = quarantine
        self._frame_timeout = frame_timeout_s
        self._checkpoint_path = Path(checkpoint) if checkpoint is not None else None
        if self._checkpoint_path is not None:
            self._checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        self._checkpoint_interval = checkpoint_interval_s
        self._checkpoint_lock = threading.Lock()
        self._checkpoint_dirty = False
        self._last_checkpoint = 0.0
        self._lock = threading.Lock()
        self._pending: deque[str] = deque()
        self._payloads: dict[str, dict[str, Any]] = {}
        self._leases: dict[int, _Lease] = {}
        self._leased_keys: dict[str, int] = {}
        self._attempts: dict[str, int] = {}
        self._completed: set[str] = set()
        self._poisoned: dict[str, str] = {}
        #: Submitted jobs whose fate is settled (completed or poisoned).
        self._resolved = 0
        self._expected = 0
        self._next_lease = 1
        self._requeues = 0
        self._workers_seen: set[str] = set()
        self._events: queue.Queue[tuple[str, Any]] = queue.Queue()
        # Connection-handler threads start with empty contexts, so capture
        # the creating scope's telemetry session and re-enter it in them.
        self._telemetry = telemetry_current()
        self._closed = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._host = host
        self._port = self._listener.getsockname()[1]
        self._thread = threading.Thread(
            target=self._serve, name="campaign-coordinator", daemon=True
        )
        self._thread.start()

    # -- public surface --------------------------------------------------------

    @property
    def address(self) -> str:
        """The resolved ``tcp://host:port`` workers should connect to."""
        return f"tcp://{self._host}:{self._port}"

    @property
    def workers_seen(self) -> set[str]:
        """Identifiers of every worker that has pulled so far."""
        with self._lock:
            return set(self._workers_seen)

    @property
    def requeues(self) -> int:
        """How many leases expired and were handed to another worker."""
        with self._lock:
            return self._requeues

    @property
    def poisoned(self) -> dict[str, str]:
        """Quarantined jobs: ``key -> last error`` (empty without faults)."""
        with self._lock:
            return dict(self._poisoned)

    def submit(self, payloads: dict[str, dict[str, Any]]) -> None:
        """Queue the given ``key -> payload`` jobs for pulling workers."""
        with self._lock:
            for key, payload in payloads.items():
                if key in self._payloads:
                    continue
                if key in self._completed:
                    if key in self._poisoned:
                        # Known-poisoned from a resumed checkpoint: account
                        # for it so results() reports the quarantine
                        # instead of silently never delivering the job.
                        self._payloads[key] = payload
                        self._expected += 1
                        self._resolved += 1
                        self._events.put(("poisoned", (key, self._poisoned[key])))
                    continue
                self._payloads[key] = payload
                self._pending.append(key)
                self._expected += 1
            self._checkpoint_dirty = True
        self._write_checkpoint(force=True)

    def resume_from_checkpoint(self, store: Any | None = None) -> int:
        """Restore unfinished work from this coordinator's checkpoint file.

        Diffs the checkpointed job queue against ``store`` (the durable
        truth — see :func:`recover_pending_payloads`), restores the
        attempt counters and poison list, and submits what remains.
        Returns the number of jobs resubmitted; ``0`` when no checkpoint
        exists yet.
        """
        if self._checkpoint_path is None:
            raise CampaignError("coordinator has no checkpoint path to resume from")
        state = load_checkpoint(self._checkpoint_path)
        if state is None:
            return 0
        pending = recover_pending_payloads(state, store)
        with self._lock:
            for key, reason in (state.get("poisoned") or {}).items():
                if key not in self._poisoned:
                    self._poisoned[key] = str(reason)
                    self._completed.add(key)
            for key, count in (state.get("attempts") or {}).items():
                if key in pending:
                    self._attempts[key] = max(self._attempts.get(key, 0), int(count))
        self.submit(pending)
        return len(pending)

    def results(
        self, timeout_s: float | None = None
    ) -> Iterator[tuple[str, dict[str, Any], float]]:
        """Yield ``(key, result, elapsed)`` as workers stream jobs back.

        Blocks until every submitted job has completed.  Raises
        :class:`~repro.errors.CampaignError` when a job exhausts its
        attempts (at the end of the stream when ``quarantine`` is on, so
        every healthy job is still delivered first), and — when
        ``timeout_s`` is given — when no job completes for that long (an
        idle timeout: no workers, dead network).
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        delivered = 0
        poisoned: list[tuple[str, str]] = []
        while True:
            with self._lock:
                if delivered + len(poisoned) >= self._expected:
                    break
            try:
                wait = (
                    1.0
                    if deadline is None
                    else max(0.0, min(1.0, deadline - time.monotonic()))
                )
                kind, value = self._events.get(timeout=wait)
            except queue.Empty:
                self._sweep_expired_leases()
                if deadline is not None and time.monotonic() >= deadline:
                    raise CampaignError(
                        f"distributed campaign timed out after {timeout_s}s "
                        f"({delivered}/{self._expected} jobs completed; "
                        f"workers seen: {sorted(self.workers_seen) or 'none'})"
                    )
                continue
            if kind == "failed":
                key, message = value
                raise CampaignError(
                    f"job {key[:12]}... failed on every attempt "
                    f"({self._max_attempts}); last error: {message}"
                )
            if deadline is not None:
                deadline = time.monotonic() + timeout_s
            if kind == "poisoned":
                poisoned.append(value)
                continue
            delivered += 1
            yield value
            self._write_checkpoint()
        if poisoned:
            summary = "; ".join(
                f"{key[:12]}... ({message})" for key, message in poisoned
            )
            raise CampaignError(
                f"{len(poisoned)} job(s) quarantined after {self._max_attempts} "
                f"failed attempts each: {summary}"
            )

    def close(self) -> None:
        """Stop serving; subsequent worker requests see a refused connection."""
        if self._closed.is_set():
            return
        self._write_checkpoint(force=True)
        self._closed.set()
        try:
            # Unblock accept() promptly with a self-connection.
            poke_host = "127.0.0.1" if self._host == "0.0.0.0" else self._host
            with socket.create_connection((poke_host, self._port), timeout=1.0):
                pass
        except OSError:
            pass
        self._listener.close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- checkpointing ---------------------------------------------------------

    def _write_checkpoint(self, force: bool = False) -> None:
        """Snapshot the queue/lease state to the checkpoint path.

        Throttled to ``checkpoint_interval_s`` unless ``force``; published
        with ``mkstemp`` + ``os.replace`` (the artifact-cache discipline),
        so readers only ever see a complete checkpoint.
        """
        path = self._checkpoint_path
        if path is None:
            return
        now = time.monotonic()
        with self._lock:
            if not force and (
                not self._checkpoint_dirty
                or now - self._last_checkpoint < self._checkpoint_interval
            ):
                return
            state = {
                "kind": CHECKPOINT_KIND,
                "schema": SCHEMA_VERSION,
                "payloads": dict(self._payloads),
                "attempts": dict(self._attempts),
                "completed": sorted(self._completed),
                "poisoned": dict(self._poisoned),
                "leases": [
                    {
                        "key": lease.key,
                        "worker": lease.worker,
                        "expires_in_s": max(0.0, lease.deadline - now),
                    }
                    for lease in self._leases.values()
                ],
            }
            self._checkpoint_dirty = False
            self._last_checkpoint = now
            pending_count = len(self._pending)
            lease_count = len(self._leases)
        with self._checkpoint_lock:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(state, handle, sort_keys=True, separators=(",", ":"))
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        emit_event(
            "coordinator.checkpoint",
            jobs=len(state["payloads"]),
            completed=len(state["completed"]),
            pending=pending_count,
            leases=lease_count,
        )

    # -- server internals ------------------------------------------------------

    def _serve(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return
            if self._closed.is_set():
                conn.close()
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            with activate(self._telemetry), conn:
                conn.settimeout(self._frame_timeout)
                try:
                    message = recv_frame(conn, self._auth)
                except FrameAuthError:
                    # Unsigned/forged/truncated frame: drop the connection
                    # without a reply.  Never fatal — a hostile peer must
                    # not be able to disturb the campaign.
                    emit_event("coordinator.auth_reject")
                    return
                except (CampaignError, json.JSONDecodeError, UnicodeDecodeError):
                    emit_event("coordinator.frame_reject")
                    return
                if message is None:
                    return
                send_frame(conn, self._dispatch(message), self._auth)
        except (OSError, CampaignError, json.JSONDecodeError):
            # A broken worker connection never takes the coordinator down;
            # the lease mechanism covers whatever the worker was holding.
            pass

    def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        kind = message.get("type")
        if kind == "pull":
            return self._handle_pull(str(message.get("worker", "?")))
        if kind == "result":
            return self._handle_result(message)
        if kind == "error":
            return self._handle_error(message)
        if kind == "heartbeat":
            return self._handle_heartbeat(message)
        return {"type": "error", "message": f"unknown message type {kind!r}"}

    def _sweep_expired_leases(self) -> None:
        now = time.monotonic()
        requeued: list[_Lease] = []
        with self._lock:
            expired = [
                lease_id
                for lease_id, lease in self._leases.items()
                if lease.deadline <= now
            ]
            for lease_id in expired:
                lease = self._leases.pop(lease_id)
                self._leased_keys.pop(lease.key, None)
                if lease.key in self._completed:
                    continue
                # The worker died (or lost its network): put the job back.
                self._requeues += 1
                self._pending.append(lease.key)
                requeued.append(lease)
            if expired:
                self._checkpoint_dirty = True
        for lease in requeued:
            emit_event(
                "coordinator.lease_expire",
                worker=lease.worker,
                key=lease.key,
                held_s=now - lease.granted,
            )
        self._write_checkpoint()

    def _poison(self, key: str, message: str) -> None:
        """Park an exhausted job (caller holds the lock)."""
        self._poisoned[key] = message
        self._events.put(("poisoned", (key, message)))
        emit_event(
            "job.poisoned",
            key=key,
            message=message,
            attempts=self._attempts.get(key, 0),
        )

    def _handle_pull(self, worker: str) -> dict[str, Any]:
        self._sweep_expired_leases()
        with self._lock:
            self._workers_seen.add(worker)
            while self._pending:
                key = self._pending.popleft()
                if key in self._completed or key in self._leased_keys:
                    continue
                attempts = self._attempts.get(key, 0) + 1
                if attempts > self._max_attempts:
                    self._completed.add(key)
                    self._resolved += 1
                    self._checkpoint_dirty = True
                    if self._quarantine:
                        self._poison(key, "lease expired on every attempt")
                    else:
                        self._events.put(
                            ("failed", (key, "lease expired on every attempt"))
                        )
                    continue
                self._attempts[key] = attempts
                lease_id = self._next_lease
                self._next_lease += 1
                now = time.monotonic()
                nonce = secrets.token_hex(16) if self._auth is not None else None
                self._leases[lease_id] = _Lease(
                    key=key,
                    worker=worker,
                    deadline=now + self._lease_timeout,
                    granted=now,
                    nonce=nonce,
                )
                self._leased_keys[key] = lease_id
                self._checkpoint_dirty = True
                emit_event(
                    "coordinator.lease_grant",
                    worker=worker,
                    key=key,
                    attempt=attempts,
                )
                reply = {
                    "type": "job",
                    "lease": lease_id,
                    "key": key,
                    "payload": self._payloads[key],
                    "heartbeat_s": self._lease_timeout / 4.0,
                }
                if nonce is not None:
                    reply["nonce"] = nonce
                return reply
            if self._expected > 0 and self._resolved >= self._expected:
                return {"type": "shutdown"}
            # Nothing to hand out right now: jobs not submitted yet, or all
            # leased to other workers (one may yet expire and requeue).
            return {"type": "wait", "delay_s": min(1.0, self._lease_timeout / 10.0)}

    def _nonce_ok(self, message: dict[str, Any], lease: _Lease | None) -> bool:
        """Whether the message may act on its (live) lease.

        Only meaningful with auth enabled: the lease nonce travelled inside
        a signed grant, so echoing it proves the sender *is* the worker the
        job was granted to — a captured result frame replayed later, or a
        forged frame guessing lease ids, is rejected without releasing the
        lease.
        """
        if self._auth is None or lease is None:
            return True
        return message.get("nonce") == lease.nonce

    def _release(self, message: dict[str, Any]) -> tuple[str | None, _Lease | None]:
        """Drop the message's lease; returns the key it covered (if known)
        and the lease itself (``None`` when it already expired)."""
        lease_id = message.get("lease")
        lease = self._leases.pop(lease_id, None)
        if lease is not None:
            self._leased_keys.pop(lease.key, None)
            return lease.key, lease
        return message.get("key"), None

    def _handle_result(self, message: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            live = self._leases.get(message.get("lease"))
            if not self._nonce_ok(message, live):
                return {"type": "ack", "accepted": False}
            held_lease = live is not None
            key, lease = self._release(message)
            if key is None or key in self._completed or key not in self._payloads:
                # Duplicate completion after a lease expiry, or garbage.
                return {"type": "ack", "accepted": False}
            if not held_lease and (key in self._leased_keys or key in self._pending):
                # Late result: the sender's lease expired and the job was
                # requeued (or re-leased).  The retry attempt owns the job
                # now — rejecting the stale copy (exactly once) keeps one
                # completion per attempt and no duplicate store entries.
                return {"type": "ack", "accepted": False}
            self._completed.add(key)
            self._resolved += 1
            self._checkpoint_dirty = True
            worker_elapsed = float(message.get("elapsed", 0.0))
            self._events.put(("result", (key, message["result"], worker_elapsed)))
        # Both clocks on one event: the worker-reported compute time and the
        # coordinator-observed lease time (their gap is dispatch overhead).
        emit_event(
            "coordinator.result",
            worker=str(message.get("worker", "?")),
            key=key,
            worker_elapsed_s=worker_elapsed,
            observed_elapsed_s=(
                time.monotonic() - lease.granted if lease is not None else 0.0
            ),
        )
        return {"type": "ack", "accepted": True}

    def _handle_error(self, message: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            live = self._leases.get(message.get("lease"))
            if not self._nonce_ok(message, live):
                return {"type": "ack", "accepted": False}
            held_lease = live is not None
            key, _lease = self._release(message)
            if key is None or key in self._completed or key not in self._payloads:
                return {"type": "ack", "accepted": False}
            if not held_lease and (key in self._leased_keys or key in self._pending):
                # Stale report: the sender's lease already expired and the
                # job was requeued (or handed to someone else).  Whoever
                # holds it now decides its fate; double-queueing it — or
                # worse, failing the campaign under someone else's feet —
                # would be wrong.
                return {"type": "ack", "accepted": False}
            attempts = self._attempts.get(key, 0)
            self._checkpoint_dirty = True
            if attempts >= self._max_attempts:
                self._completed.add(key)
                self._resolved += 1
                if self._quarantine:
                    self._poison(key, str(message.get("message", "?")))
                else:
                    self._events.put(
                        ("failed", (key, str(message.get("message", "?"))))
                    )
            else:
                self._pending.append(key)
        emit_event(
            "coordinator.error",
            worker=str(message.get("worker", "?")),
            key=key,
            message=str(message.get("message", "?")),
        )
        return {"type": "ack", "accepted": True}

    def _handle_heartbeat(self, message: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            lease = self._leases.get(message.get("lease"))
            if lease is None:
                # Expired and requeued: tell the worker its work is moot.
                return {"type": "ack", "known": False}
            if not self._nonce_ok(message, lease):
                # Forged renewal: ignore it without touching the deadline,
                # and without telling the forger whether the lease lives.
                return {"type": "ack", "known": False}
            lease.deadline = time.monotonic() + self._lease_timeout
        emit_event(
            "coordinator.lease_renew", worker=lease.worker, key=lease.key
        )
        return {"type": "ack", "known": True}


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


def default_worker_id() -> str:
    """Hostname+pid identifier reported with every pull."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat:
    """Renews one job lease in the background while the job computes.

    Renewal failures are *surfaced*, never fatal: any exception — a
    connection reset mid-renewal included — sets :attr:`trouble` (and
    :attr:`last_error`) for the main loop to observe and keeps the thread
    alive for the next interval, because the worker's reconnect logic owns
    recovery.  A coordinator reply of ``known: False`` sets
    :attr:`lease_lost` and stops renewing: the lease expired and the job
    was requeued, so the eventual (stale) result will be rejected.
    """

    def __init__(
        self,
        address: str,
        lease: int,
        interval_s: float,
        auth: FrameAuth | None = None,
        nonce: str | None = None,
        timeout_s: float = 10.0,
    ) -> None:
        self._address = address
        self._lease = lease
        self._auth = auth
        self._nonce = nonce
        self._timeout = timeout_s
        self._interval = max(0.05, interval_s)
        self._stop = threading.Event()
        #: Set while the latest renewal attempt failed; cleared on success.
        self.trouble = threading.Event()
        #: Set when the coordinator reported the lease expired.
        self.lease_lost = threading.Event()
        self.last_error: BaseException | None = None
        # Renewal frames should count against the worker's telemetry
        # session (and fault plan), so carry both into the thread's empty
        # context.
        self._telemetry = telemetry_current()
        self._injector = current_injector()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        with activate(self._telemetry), activate_faults(self._injector):
            while not self._stop.wait(self._interval):
                injector = current_injector()
                if injector is not None and injector.heartbeat_stalled():
                    continue
                message: dict[str, Any] = {"type": "heartbeat", "lease": self._lease}
                if self._nonce is not None:
                    message["nonce"] = self._nonce
                try:
                    ack = request(
                        self._address,
                        message,
                        timeout_s=self._timeout,
                        auth=self._auth,
                    )
                except Exception as exc:  # noqa: BLE001 - surfaced, never fatal
                    # Transient coordinator trouble: the lease may expire
                    # and the job may be re-run elsewhere — correct either
                    # way, because stale completions are rejected by key.
                    self.last_error = exc
                    self.trouble.set()
                    continue
                if ack.get("type") == "ack" and not ack.get("known", True):
                    self.lease_lost.set()
                    return
                self.trouble.clear()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class _Reconnector:
    """Seeded exponential backoff over one continuous coordinator outage.

    ``backoff()`` sleeps and returns ``True`` while the outage is younger
    than ``budget_s``; ``False`` means give up (for a worker: the campaign
    has moved on without us).  Delays double from ``base_s`` up to
    ``max_s`` with multiplicative jitter from a seeded RNG (default seed:
    a hash of the worker id, so two workers on one host never thunder in
    lockstep yet each replays deterministically).  ``reset()`` on any
    successful exchange re-arms the budget.
    """

    def __init__(
        self,
        worker: str,
        budget_s: float,
        base_s: float = 0.1,
        max_s: float = 2.0,
        seed: int | None = None,
    ) -> None:
        self._worker = worker
        self._budget = budget_s
        self._base = base_s
        self._max = max_s
        self._rng = random.Random(
            zlib.crc32(worker.encode("utf-8")) if seed is None else seed
        )
        self._delay = base_s
        self._outage_started: float | None = None
        self._attempt = 0

    def reset(self) -> None:
        self._outage_started = None
        self._delay = self._base
        self._attempt = 0

    def backoff(self, exc: BaseException) -> bool:
        now = time.monotonic()
        if self._outage_started is None:
            self._outage_started = now
        remaining = self._budget - (now - self._outage_started)
        if remaining <= 0:
            return False
        self._attempt += 1
        delay = min(self._delay, self._max) * (0.5 + self._rng.random())
        delay = min(delay, remaining)
        self._delay = min(self._delay * 2.0, self._max)
        emit_event(
            "worker.reconnect",
            worker=self._worker,
            attempt=self._attempt,
            delay_s=delay,
            error=f"{type(exc).__name__}: {exc}",
        )
        time.sleep(delay)
        return True


def run_worker(
    address: str,
    worker_id: str | None = None,
    max_jobs: int | None = None,
    connect_retry_s: float = 30.0,
    poll_interval_s: float = 0.2,
    reconnect_timeout_s: float = 5.0,
    backoff_base_s: float = 0.1,
    backoff_max_s: float = 2.0,
    backoff_seed: int | None = None,
    frame_timeout_s: float = 10.0,
    auth_key: "str | bytes | FrameAuth | None" = None,
) -> int:
    """Pull-and-execute loop against the coordinator at ``address``.

    Runs until the coordinator reports the campaign complete (or stays
    unreachable for ``reconnect_timeout_s`` after this worker has spoken
    to it at least once — the coordinator staying gone *is* the shutdown
    signal for stragglers).  Returns the number of jobs executed.

    Args:
        address: ``tcp://host:port`` of the coordinator.
        worker_id: Identifier reported with every pull (default
            ``hostname-pid``).
        max_jobs: Stop after this many jobs (``None`` = unlimited); the
            distributed tests use it to model bounded workers.
        connect_retry_s: How long to keep retrying the *first* contact, so
            workers may be started before the coordinator.
        poll_interval_s: Sleep between first-contact retries/idle polls.
        reconnect_timeout_s: How long one continuous coordinator outage
            may last (after first contact) before the worker gives up and
            exits cleanly; transient hiccups inside the budget are ridden
            out with exponential backoff instead of killing the worker.
        backoff_base_s: First reconnect delay; doubles per retry.
        backoff_max_s: Reconnect delay ceiling.
        backoff_seed: Jitter seed (default: derived from the worker id).
        frame_timeout_s: Per-exchange connect/send/recv timeout.
        auth_key: Shared HMAC frame key (default: ``REPRO_AUTH_KEY``).
    """
    from ..sim.engine import deduplicate_fallback_warnings

    # Spawned worker processes inherit their chaos plan (if any) through
    # the environment, mirroring the telemetry/artifact-cache env hooks.
    if os.environ.get(FAULT_PLAN_ENV):
        enable_faults_for_process()

    # One worker lifetime warns at most once per distinct auto-fallback
    # reason, like the process-pool workers.  The scoped form (not the
    # process-wide enable) keeps in-process callers — tests, notebooks
    # driving run_worker directly — unaffected after the worker returns.
    with deduplicate_fallback_warnings():
        return _run_worker_loop(
            address,
            worker_id or default_worker_id(),
            max_jobs,
            connect_retry_s,
            poll_interval_s,
            reconnect_timeout_s,
            backoff_base_s,
            backoff_max_s,
            backoff_seed,
            frame_timeout_s,
            FrameAuth.resolve(auth_key),
        )


def _deliver(
    address: str,
    message: dict[str, Any],
    outage: _Reconnector,
    timeout_s: float,
    auth: FrameAuth | None,
) -> dict[str, Any] | None:
    """Send one report frame, retrying through coordinator outages.

    Returns the ack, or ``None`` when the outage budget ran out (the
    campaign has moved on without us).  Retrying a report that *did*
    arrive (its ack was lost) is safe: completions are idempotent and the
    duplicate is acknowledged ``accepted: False``.
    """
    while True:
        try:
            reply = request(address, message, timeout_s=timeout_s, auth=auth)
        except (OSError, CampaignError) as exc:
            if outage.backoff(exc):
                continue
            return None
        outage.reset()
        return reply


def _run_worker_loop(
    address: str,
    worker: str,
    max_jobs: int | None,
    connect_retry_s: float,
    poll_interval_s: float,
    reconnect_timeout_s: float,
    backoff_base_s: float,
    backoff_max_s: float,
    backoff_seed: int | None,
    frame_timeout_s: float,
    auth: FrameAuth | None,
) -> int:
    executed = 0
    contacted = False
    first_deadline = time.monotonic() + connect_retry_s
    outage = _Reconnector(
        worker, reconnect_timeout_s, backoff_base_s, backoff_max_s, backoff_seed
    )
    while True:
        try:
            reply = request(
                address,
                {"type": "pull", "worker": worker},
                timeout_s=frame_timeout_s,
                auth=auth,
            )
        except (OSError, CampaignError) as exc:
            if not contacted:
                if time.monotonic() >= first_deadline:
                    raise CampaignError(
                        f"worker {worker} could not reach coordinator at "
                        f"{address} within {connect_retry_s}s: {exc}"
                    ) from exc
                time.sleep(poll_interval_s)
                continue
            # Coordinator unreachable mid-campaign: back off and retry
            # until the outage budget runs out (restart recovery window),
            # then exit cleanly — the campaign finished or moved on.
            if outage.backoff(exc):
                continue
            return executed
        contacted = True
        outage.reset()
        kind = reply.get("type")
        if kind == "shutdown":
            return executed
        if kind == "wait":
            time.sleep(float(reply.get("delay_s", poll_interval_s)))
            continue
        if kind != "job":
            raise CampaignError(f"unexpected coordinator reply {kind!r}")
        lease = reply["lease"]
        nonce = reply.get("nonce")
        fault_point("worker.after_pull")
        heartbeat = _Heartbeat(
            address,
            lease,
            float(reply.get("heartbeat_s", 5.0)),
            auth=auth,
            nonce=nonce,
            timeout_s=frame_timeout_s,
        )
        try:
            from .execution import execute_payload

            try:
                key, result, elapsed = execute_payload(reply["payload"])
            except Exception as exc:  # noqa: BLE001 - reported to coordinator
                error_frame: dict[str, Any] = {
                    "type": "error",
                    "lease": lease,
                    "key": reply.get("key"),
                    "worker": worker,
                    "message": f"{type(exc).__name__}: {exc}",
                }
                if nonce is not None:
                    error_frame["nonce"] = nonce
                if _deliver(address, error_frame, outage, frame_timeout_s, auth) is None:
                    return executed
                continue
        finally:
            heartbeat.stop()
        fault_point("worker.before_result")
        result_frame: dict[str, Any] = {
            "type": "result",
            "lease": lease,
            "key": key,
            "worker": worker,
            "result": result,
            "elapsed": elapsed,
        }
        if nonce is not None:
            result_frame["nonce"] = nonce
        if _deliver(address, result_frame, outage, frame_timeout_s, auth) is None:
            # Coordinator gone for the whole budget: our lease expired,
            # someone else completed the job, the campaign moved on.
            return executed
        executed += 1
        if max_jobs is not None and executed >= max_jobs:
            return executed


def run_worker_pool(address: str, processes: int, **worker_kwargs: Any) -> list[int]:
    """Run ``processes`` workers against one coordinator from this machine.

    A convenience for multi-core worker hosts (and the CLI's ``worker
    --jobs N``): each worker is an independent OS process running
    :func:`run_worker`, so one of them dying never takes down the others.
    Returns the per-worker executed-job counts.
    """
    import multiprocessing

    from ..telemetry import current_spec

    if processes < 1:
        raise CampaignError("worker pool needs at least one process")
    if processes == 1:
        return [run_worker(address, **worker_kwargs)]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with context.Pool(
        processes=processes,
        initializer=_initialize_worker_process,
        initargs=(current_spec(),),
    ) as pool:
        async_results = [
            pool.apply_async(run_worker, (address,), worker_kwargs)
            for _ in range(processes)
        ]
        return [result.get() for result in async_results]


def _initialize_worker_process(telemetry_spec: str | None) -> None:
    """Worker-pool initializer: inherit (or clear) the telemetry session."""
    from ..telemetry import enable_telemetry_for_process

    enable_telemetry_for_process(telemetry_spec, worker=default_worker_id())
