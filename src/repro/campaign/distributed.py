"""Multi-machine campaign execution: coordinator, workers, frame protocol.

The distributed backend splits a campaign across processes that need share
nothing but a TCP connection:

* The **coordinator** (:class:`Coordinator`) owns the pending-job queue.
  It answers *pull* requests — work-stealing scheduling: an idle worker
  pulls its next job the moment it is free, so fast machines naturally
  take more jobs — and collects streamed results.  Every handed-out job
  carries a **lease**; a worker renews its lease with heartbeats while it
  computes, and a lease that expires (worker death, network partition)
  puts the job back on the queue for someone else.  A job that fails
  repeatedly (``max_attempts``) fails the campaign loudly.
* A **worker** (:func:`run_worker`) is a dumb loop: pull, execute the
  process-agnostic payload via
  :func:`repro.campaign.execution.execute_payload`, stream the result
  back, repeat until the coordinator says it is done.  Workers hold no
  campaign state, so killing one at any moment loses nothing but the
  lease-timeout worth of wall time.

Jobs are deterministic, so it does not matter *which* worker runs one:
results stream back as the same dictionaries the in-process backends
produce, and store entries stay byte-identical to a serial run.  Duplicate
completions (a lease expired but the original worker finished anyway) are
detected by key and ignored — both copies are identical by construction.

The wire format is deliberately primitive: one length-prefixed JSON frame
(4-byte big-endian length, UTF-8 JSON body) per message, one
request/response exchange per connection.  Messages:

========== ============================== ===================================
direction  message                        response
========== ============================== ===================================
worker →   ``{"type": "pull", ...}``      ``job`` | ``wait`` | ``shutdown``
worker →   ``{"type": "result", ...}``    ``ack``
worker →   ``{"type": "error", ...}``     ``ack``
worker →   ``{"type": "heartbeat", ...}`` ``ack``
========== ============================== ===================================

The protocol carries no authentication and must only be exposed on trusted
networks (bind to localhost or a private interface).
"""

from __future__ import annotations

import json
import os
import queue
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import CampaignError
from ..telemetry import activate, emit_counter, emit_event
from ..telemetry import current as telemetry_current

#: Upper bound on one frame's body, to fail fast on garbage length prefixes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Frame protocol
# ---------------------------------------------------------------------------


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Send one length-prefixed JSON frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CampaignError(f"frame of {len(body)} bytes exceeds the protocol limit")
    emit_counter(
        "net.frame",
        _LENGTH.size + len(body),
        direction="send",
        msg=str(message.get("type", "?")),
    )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Receive one frame; ``None`` on a clean peer shutdown."""
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise CampaignError(f"peer announced a {length}-byte frame; refusing")
    body = _recv_exact(sock, length)
    if body is None:
        raise CampaignError("connection closed mid-frame")
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, dict) or "type" not in message:
        raise CampaignError("malformed protocol frame (no 'type')")
    emit_counter(
        "net.frame",
        _LENGTH.size + length,
        direction="recv",
        msg=str(message.get("type", "?")),
    )
    return message


def parse_address(address: str) -> tuple[str, int]:
    """Split ``tcp://host:port`` into its components."""
    if not address.startswith("tcp://"):
        raise CampaignError(
            f"unsupported backend address {address!r}; expected tcp://HOST:PORT"
        )
    host, separator, port_text = address[len("tcp://") :].rpartition(":")
    if not separator or not host:
        raise CampaignError(f"malformed backend address {address!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise CampaignError(f"malformed port in backend address {address!r}") from exc
    if not 0 <= port <= 65535:
        raise CampaignError(f"port out of range in backend address {address!r}")
    return host, port


def request(address: str, message: dict[str, Any], timeout_s: float = 10.0) -> dict[str, Any]:
    """One request/response exchange with the coordinator at ``address``."""
    host, port = parse_address(address)
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        send_frame(sock, message)
        reply = recv_frame(sock)
    if reply is None:
        raise CampaignError(f"coordinator at {address} closed without replying")
    return reply


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class _Lease:
    key: str
    worker: str
    deadline: float
    #: ``time.monotonic()`` at hand-out, for coordinator-observed elapsed.
    granted: float


class Coordinator:
    """Serves the pending-job queue to pull-based workers over TCP.

    Args:
        address: ``tcp://host:port`` to listen on; port ``0`` binds an
            ephemeral port (read :attr:`address` for the resolved one).
        lease_timeout_s: How long a handed-out job may go without a
            heartbeat or result before it is requeued for another worker.
        max_attempts: How many times one job may be handed out before the
            campaign fails (guards against a job that kills every worker
            that touches it).

    The listening socket opens at construction, so workers may connect
    (and politely ``wait``) before :meth:`submit` provides any jobs.
    """

    def __init__(
        self,
        address: str = "tcp://127.0.0.1:0",
        lease_timeout_s: float = 30.0,
        max_attempts: int = 3,
    ) -> None:
        if lease_timeout_s <= 0:
            raise CampaignError("lease_timeout_s must be positive")
        if max_attempts < 1:
            raise CampaignError("max_attempts must be >= 1")
        host, port = parse_address(address)
        self._lease_timeout = lease_timeout_s
        self._max_attempts = max_attempts
        self._lock = threading.Lock()
        self._pending: deque[str] = deque()
        self._payloads: dict[str, dict[str, Any]] = {}
        self._leases: dict[int, _Lease] = {}
        self._leased_keys: dict[str, int] = {}
        self._attempts: dict[str, int] = {}
        self._completed: set[str] = set()
        self._expected = 0
        self._next_lease = 1
        self._requeues = 0
        self._workers_seen: set[str] = set()
        self._events: queue.Queue[tuple[str, Any]] = queue.Queue()
        # Connection-handler threads start with empty contexts, so capture
        # the creating scope's telemetry session and re-enter it in them.
        self._telemetry = telemetry_current()
        self._closed = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._host = host
        self._port = self._listener.getsockname()[1]
        self._thread = threading.Thread(
            target=self._serve, name="campaign-coordinator", daemon=True
        )
        self._thread.start()

    # -- public surface --------------------------------------------------------

    @property
    def address(self) -> str:
        """The resolved ``tcp://host:port`` workers should connect to."""
        return f"tcp://{self._host}:{self._port}"

    @property
    def workers_seen(self) -> set[str]:
        """Identifiers of every worker that has pulled so far."""
        with self._lock:
            return set(self._workers_seen)

    @property
    def requeues(self) -> int:
        """How many leases expired and were handed to another worker."""
        with self._lock:
            return self._requeues

    def submit(self, payloads: dict[str, dict[str, Any]]) -> None:
        """Queue the given ``key -> payload`` jobs for pulling workers."""
        with self._lock:
            for key, payload in payloads.items():
                if key in self._payloads or key in self._completed:
                    continue
                self._payloads[key] = payload
                self._pending.append(key)
                self._expected += 1

    def results(
        self, timeout_s: float | None = None
    ) -> Iterator[tuple[str, dict[str, Any], float]]:
        """Yield ``(key, result, elapsed)`` as workers stream jobs back.

        Blocks until every submitted job has completed.  Raises
        :class:`~repro.errors.CampaignError` when a job exhausts its
        attempts, and — when ``timeout_s`` is given — when no job completes
        for that long (an idle timeout: no workers, dead network).
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        delivered = 0
        while True:
            with self._lock:
                if delivered >= self._expected:
                    return
            try:
                wait = (
                    1.0
                    if deadline is None
                    else max(0.0, min(1.0, deadline - time.monotonic()))
                )
                kind, value = self._events.get(timeout=wait)
            except queue.Empty:
                self._sweep_expired_leases()
                if deadline is not None and time.monotonic() >= deadline:
                    raise CampaignError(
                        f"distributed campaign timed out after {timeout_s}s "
                        f"({delivered}/{self._expected} jobs completed; "
                        f"workers seen: {sorted(self.workers_seen) or 'none'})"
                    )
                continue
            if kind == "failed":
                key, message = value
                raise CampaignError(
                    f"job {key[:12]}... failed on every attempt "
                    f"({self._max_attempts}); last error: {message}"
                )
            delivered += 1
            if deadline is not None:
                deadline = time.monotonic() + timeout_s
            yield value

    def close(self) -> None:
        """Stop serving; subsequent worker requests see a refused connection."""
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            # Unblock accept() promptly with a self-connection.
            poke_host = "127.0.0.1" if self._host == "0.0.0.0" else self._host
            with socket.create_connection((poke_host, self._port), timeout=1.0):
                pass
        except OSError:
            pass
        self._listener.close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # -- server internals ------------------------------------------------------

    def _serve(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                return
            if self._closed.is_set():
                conn.close()
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            with activate(self._telemetry), conn:
                conn.settimeout(10.0)
                message = recv_frame(conn)
                if message is None:
                    return
                send_frame(conn, self._dispatch(message))
        except (OSError, CampaignError, json.JSONDecodeError):
            # A broken worker connection never takes the coordinator down;
            # the lease mechanism covers whatever the worker was holding.
            pass

    def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        kind = message.get("type")
        if kind == "pull":
            return self._handle_pull(str(message.get("worker", "?")))
        if kind == "result":
            return self._handle_result(message)
        if kind == "error":
            return self._handle_error(message)
        if kind == "heartbeat":
            return self._handle_heartbeat(message)
        return {"type": "error", "message": f"unknown message type {kind!r}"}

    def _sweep_expired_leases(self) -> None:
        now = time.monotonic()
        requeued: list[_Lease] = []
        with self._lock:
            expired = [
                lease_id
                for lease_id, lease in self._leases.items()
                if lease.deadline <= now
            ]
            for lease_id in expired:
                lease = self._leases.pop(lease_id)
                self._leased_keys.pop(lease.key, None)
                if lease.key in self._completed:
                    continue
                # The worker died (or lost its network): put the job back.
                self._requeues += 1
                self._pending.append(lease.key)
                requeued.append(lease)
        for lease in requeued:
            emit_event(
                "coordinator.lease_expire",
                worker=lease.worker,
                key=lease.key,
                held_s=now - lease.granted,
            )

    def _handle_pull(self, worker: str) -> dict[str, Any]:
        self._sweep_expired_leases()
        with self._lock:
            self._workers_seen.add(worker)
            while self._pending:
                key = self._pending.popleft()
                if key in self._completed or key in self._leased_keys:
                    continue
                attempts = self._attempts.get(key, 0) + 1
                if attempts > self._max_attempts:
                    self._completed.add(key)
                    self._events.put(
                        ("failed", (key, "lease expired on every attempt"))
                    )
                    continue
                self._attempts[key] = attempts
                lease_id = self._next_lease
                self._next_lease += 1
                now = time.monotonic()
                self._leases[lease_id] = _Lease(
                    key=key,
                    worker=worker,
                    deadline=now + self._lease_timeout,
                    granted=now,
                )
                self._leased_keys[key] = lease_id
                emit_event(
                    "coordinator.lease_grant",
                    worker=worker,
                    key=key,
                    attempt=attempts,
                )
                return {
                    "type": "job",
                    "lease": lease_id,
                    "key": key,
                    "payload": self._payloads[key],
                    "heartbeat_s": self._lease_timeout / 4.0,
                }
            if self._expected > 0 and len(self._completed) >= self._expected:
                return {"type": "shutdown"}
            # Nothing to hand out right now: jobs not submitted yet, or all
            # leased to other workers (one may yet expire and requeue).
            return {"type": "wait", "delay_s": min(1.0, self._lease_timeout / 10.0)}

    def _release(self, message: dict[str, Any]) -> tuple[str | None, _Lease | None]:
        """Drop the message's lease; returns the key it covered (if known)
        and the lease itself (``None`` when it already expired)."""
        lease_id = message.get("lease")
        lease = self._leases.pop(lease_id, None)
        if lease is not None:
            self._leased_keys.pop(lease.key, None)
            return lease.key, lease
        return message.get("key"), None

    def _handle_result(self, message: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            key, lease = self._release(message)
            if key is None or key in self._completed or key not in self._payloads:
                # Duplicate completion after a lease expiry, or garbage.
                return {"type": "ack", "accepted": False}
            self._completed.add(key)
            worker_elapsed = float(message.get("elapsed", 0.0))
            self._events.put(("result", (key, message["result"], worker_elapsed)))
        # Both clocks on one event: the worker-reported compute time and the
        # coordinator-observed lease time (their gap is dispatch overhead).
        emit_event(
            "coordinator.result",
            worker=str(message.get("worker", "?")),
            key=key,
            worker_elapsed_s=worker_elapsed,
            observed_elapsed_s=(
                time.monotonic() - lease.granted if lease is not None else 0.0
            ),
        )
        return {"type": "ack", "accepted": True}

    def _handle_error(self, message: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            held_lease = message.get("lease") in self._leases
            key, _lease = self._release(message)
            if key is None or key in self._completed or key not in self._payloads:
                return {"type": "ack", "accepted": False}
            if not held_lease and (key in self._leased_keys or key in self._pending):
                # Stale report: the sender's lease already expired and the
                # job was requeued (or handed to someone else).  Whoever
                # holds it now decides its fate; double-queueing it — or
                # worse, failing the campaign under someone else's feet —
                # would be wrong.
                return {"type": "ack", "accepted": False}
            attempts = self._attempts.get(key, 0)
            if attempts >= self._max_attempts:
                self._completed.add(key)
                self._events.put(("failed", (key, str(message.get("message", "?")))))
            else:
                self._pending.append(key)
        emit_event(
            "coordinator.error",
            worker=str(message.get("worker", "?")),
            key=key,
            message=str(message.get("message", "?")),
        )
        return {"type": "ack", "accepted": True}

    def _handle_heartbeat(self, message: dict[str, Any]) -> dict[str, Any]:
        with self._lock:
            lease = self._leases.get(message.get("lease"))
            if lease is None:
                # Expired and requeued: tell the worker its work is moot.
                return {"type": "ack", "known": False}
            lease.deadline = time.monotonic() + self._lease_timeout
        emit_event(
            "coordinator.lease_renew", worker=lease.worker, key=lease.key
        )
        return {"type": "ack", "known": True}


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


def default_worker_id() -> str:
    """Hostname+pid identifier reported with every pull."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat:
    """Renews one job lease in the background while the job computes."""

    def __init__(self, address: str, lease: int, interval_s: float) -> None:
        self._address = address
        self._lease = lease
        self._interval = max(0.05, interval_s)
        self._stop = threading.Event()
        # Renewal frames should count against the worker's telemetry
        # session, so carry it into the heartbeat thread's empty context.
        self._telemetry = telemetry_current()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        with activate(self._telemetry):
            while not self._stop.wait(self._interval):
                try:
                    request(
                        self._address, {"type": "heartbeat", "lease": self._lease}
                    )
                except (OSError, CampaignError):
                    # Transient coordinator trouble: the lease may expire and
                    # the job may be re-run elsewhere — correct either way,
                    # because duplicate completions deduplicate by key.
                    pass

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def run_worker(
    address: str,
    worker_id: str | None = None,
    max_jobs: int | None = None,
    connect_retry_s: float = 30.0,
    poll_interval_s: float = 0.2,
) -> int:
    """Pull-and-execute loop against the coordinator at ``address``.

    Runs until the coordinator reports the campaign complete (or
    disappears after this worker has spoken to it at least once — the
    coordinator closing its socket *is* the shutdown signal for stragglers).
    Returns the number of jobs executed.

    Args:
        address: ``tcp://host:port`` of the coordinator.
        worker_id: Identifier reported with every pull (default
            ``hostname-pid``).
        max_jobs: Stop after this many jobs (``None`` = unlimited); the
            distributed tests use it to model bounded workers.
        connect_retry_s: How long to keep retrying the *first* contact, so
            workers may be started before the coordinator.
        poll_interval_s: Sleep between retries/idle polls.
    """
    from ..sim.engine import deduplicate_fallback_warnings

    # One worker lifetime warns at most once per distinct auto-fallback
    # reason, like the process-pool workers.  The scoped form (not the
    # process-wide enable) keeps in-process callers — tests, notebooks
    # driving run_worker directly — unaffected after the worker returns.
    with deduplicate_fallback_warnings():
        return _run_worker_loop(
            address, worker_id, max_jobs, connect_retry_s, poll_interval_s
        )


def _run_worker_loop(
    address: str,
    worker_id: str | None,
    max_jobs: int | None,
    connect_retry_s: float,
    poll_interval_s: float,
) -> int:
    worker = worker_id or default_worker_id()
    executed = 0
    contacted = False
    first_deadline = time.monotonic() + connect_retry_s
    while True:
        try:
            reply = request(address, {"type": "pull", "worker": worker})
            contacted = True
        except (OSError, CampaignError) as exc:
            if contacted:
                # Coordinator gone after a completed campaign: clean exit.
                return executed
            if time.monotonic() >= first_deadline:
                raise CampaignError(
                    f"worker {worker} could not reach coordinator at "
                    f"{address} within {connect_retry_s}s: {exc}"
                ) from exc
            time.sleep(poll_interval_s)
            continue
        kind = reply.get("type")
        if kind == "shutdown":
            return executed
        if kind == "wait":
            time.sleep(float(reply.get("delay_s", poll_interval_s)))
            continue
        if kind != "job":
            raise CampaignError(f"unexpected coordinator reply {kind!r}")
        lease = reply["lease"]
        heartbeat = _Heartbeat(address, lease, float(reply.get("heartbeat_s", 5.0)))
        try:
            from .execution import execute_payload

            try:
                key, result, elapsed = execute_payload(reply["payload"])
            except Exception as exc:  # noqa: BLE001 - reported to coordinator
                try:
                    request(
                        address,
                        {
                            "type": "error",
                            "lease": lease,
                            "key": reply.get("key"),
                            "worker": worker,
                            "message": f"{type(exc).__name__}: {exc}",
                        },
                    )
                except (OSError, CampaignError):
                    return executed
                continue
        finally:
            heartbeat.stop()
        try:
            request(
                address,
                {
                    "type": "result",
                    "lease": lease,
                    "key": key,
                    "worker": worker,
                    "result": result,
                    "elapsed": elapsed,
                },
            )
        except (OSError, CampaignError):
            # Coordinator gone mid-report: our lease expired, someone else
            # completed the job, and the campaign finished without us.
            return executed
        executed += 1
        if max_jobs is not None and executed >= max_jobs:
            return executed


def run_worker_pool(address: str, processes: int, **worker_kwargs: Any) -> list[int]:
    """Run ``processes`` workers against one coordinator from this machine.

    A convenience for multi-core worker hosts (and the CLI's ``worker
    --jobs N``): each worker is an independent OS process running
    :func:`run_worker`, so one of them dying never takes down the others.
    Returns the per-worker executed-job counts.
    """
    import multiprocessing

    from ..telemetry import current_spec

    if processes < 1:
        raise CampaignError("worker pool needs at least one process")
    if processes == 1:
        return [run_worker(address, **worker_kwargs)]
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with context.Pool(
        processes=processes,
        initializer=_initialize_worker_process,
        initargs=(current_spec(),),
    ) as pool:
        async_results = [
            pool.apply_async(run_worker, (address,), worker_kwargs)
            for _ in range(processes)
        ]
        return [result.get() for result in async_results]


def _initialize_worker_process(telemetry_spec: str | None) -> None:
    """Worker-pool initializer: inherit (or clear) the telemetry session."""
    from ..telemetry import enable_telemetry_for_process

    enable_telemetry_for_process(telemetry_spec, worker=default_worker_id())
