"""Process-agnostic job payloads: the unit every execution backend moves.

A payload is a plain dictionary — ``{"job": <JobSpec dict>, "engine": ...,
"kernel": ...}`` — that serialises identically under pickling (process
pools) and JSON framing (the TCP protocol), so the same job produces the
same bytes no matter which backend carries it.  The engine/kernel choices
(and the optional ``artifact_cache`` directory) ride along *outside* the
job spec: they select how the job is simulated, never what it computes, so
they are not part of the job identity or store key.
"""

from __future__ import annotations

import os
from typing import Any

from ..telemetry import span
from ..workloads.artifacts import ARTIFACT_CACHE_ENV, ArtifactCache
from .spec import JobSpec


def payload_for(
    job: JobSpec,
    engine: str = "auto",
    kernel: str = "auto",
    artifact_cache: str | None = None,
) -> dict[str, Any]:
    """Build the transportable payload for one job."""
    payload: dict[str, Any] = {"job": job.to_dict(), "engine": engine, "kernel": kernel}
    if artifact_cache is not None:
        payload["artifact_cache"] = str(artifact_cache)
    return payload


def _payload_artifact_cache(payload: dict[str, Any]) -> ArtifactCache | None:
    """Resolve the artifact cache a payload should use on this machine.

    The worker's own environment wins when set (``REPRO_ARTIFACT_CACHE``,
    including the disabling spellings): a remote worker knows its local
    disk better than the coordinator that built the payload.  Otherwise the
    payload's ``artifact_cache`` field — the coordinator's CLI knob — is
    used, and absent both, caching is off.
    """
    spec = os.environ.get(ARTIFACT_CACHE_ENV)
    if spec is None:
        spec = payload.get("artifact_cache")
    return ArtifactCache.resolve(spec)


def job_accesses(job: JobSpec) -> int:
    """Simulated accesses one job represents (baseline plus alternatives)."""
    return job.settings.num_accesses * (1 + len(job.alternatives))


def execute_payload(payload: dict[str, Any]) -> tuple[str, dict[str, Any], float]:
    """Execute one job from its payload dictionary.

    Returns ``(key, comparison dict, elapsed seconds)`` — everything a
    backend streams back to the runner.  Shared verbatim by the serial
    backend, the ``multiprocessing`` pool workers and the TCP workers, so
    all backends perform the identical computation.

    The elapsed seconds come from a ``job.execute`` telemetry span, which
    measures unconditionally: with telemetry enabled the same timing also
    lands in the event stream (annotated with the workload, sweep point and
    engine/kernel request), so there is exactly one clock per job.
    """
    from ..sim.experiment import compare_schemes
    from .faults import fault_point
    from .store import comparison_to_dict

    fault_point("worker.execute")
    job = JobSpec.from_dict(payload["job"])
    execute_span = span(
        "job.execute",
        workload=job.workload,
        point=job.point_label,
        engine=payload.get("engine", "auto"),
        kernel=payload.get("kernel", "auto"),
        accesses=job_accesses(job),
    )
    with execute_span:
        comparison = compare_schemes(
            job.workload,
            baseline=job.baseline,
            alternatives=job.alternatives,
            settings=job.settings,
            engine=payload.get("engine", "auto"),
            kernel=payload.get("kernel", "auto"),
            artifact_cache=_payload_artifact_cache(payload),
        )
    return job.key, comparison_to_dict(comparison), execute_span.duration_s
