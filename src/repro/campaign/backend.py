"""Pluggable execution backends for :class:`repro.campaign.CampaignRunner`.

A backend answers exactly one question: *given these job payloads, stream
back their results*.  Everything else — store caching, resumability,
outcome ordering, reporting — lives in the runner, so backends compose with
every store layout and every spec.  Jobs are deterministic, which gives the
subsystem its core invariant: **the backend is never part of job identity**
(like the engine/kernel choice), and every backend produces byte-identical
store entries.

Three backends ship:

* :class:`SerialBackend` — in-process, in-order; zero serialisation
  overhead and the reference for byte-identity.
* :class:`ProcessPoolBackend` — ``multiprocessing`` fan-out across local
  cores (the historical ``jobs=N`` behaviour).
* :class:`TCPBackend` — a :class:`~repro.campaign.distributed.Coordinator`
  serving any number of :func:`~repro.campaign.distributed.run_worker`
  processes on any number of machines.

:func:`resolve_backend` maps the CLI/user spelling (``"serial"``,
``"local"``, ``"tcp://host:port"``) to an instance.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Iterator

from ..errors import CampaignError


def _initialize_pool_worker(telemetry_spec: str | None) -> None:
    """Initializer for local pool workers: warning dedup plus telemetry.

    Workers deduplicate fallback warnings for their whole lifetime and
    inherit the parent's telemetry session by sink spec — or have a
    fork-inherited session explicitly cleared when the parent's sink is
    process-local (``telemetry_spec is None``), so renderers never draw
    from two processes.
    """
    from ..sim.engine import enable_fallback_warning_dedup
    from ..telemetry import enable_telemetry_for_process

    enable_fallback_warning_dedup()
    enable_telemetry_for_process(telemetry_spec, worker=f"pool-{os.getpid()}")


class ExecutionBackend:
    """How a campaign's pending jobs get executed.

    :meth:`execute` streams ``(key, comparison dict, elapsed seconds)``
    tuples back to the runner in completion order.
    """

    #: Short name used in reports (``local``, ``serial``, ``tcp``).
    name = "backend"

    @property
    def workers(self) -> int:
        """Worker parallelism this backend provided (1 for serial)."""
        return 1

    def execute(
        self, payloads: list[dict[str, Any]]
    ) -> Iterator[tuple[str, dict[str, Any], float]]:
        """Execute every payload, yielding results in completion order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources held for the run (idempotent; no-op here).

        The runner calls this when a campaign finishes even if nothing was
        pending — a fully-cached run must still shut a TCP coordinator
        down so its workers stop polling and its port is freed.
        """

    def describe(self) -> str:
        """Human-readable label for progress output."""
        return self.name


class SerialBackend(ExecutionBackend):
    """Execute jobs one after another in this process."""

    name = "serial"

    def execute(
        self, payloads: list[dict[str, Any]]
    ) -> Iterator[tuple[str, dict[str, Any], float]]:
        from ..sim.engine import deduplicate_fallback_warnings
        from .execution import execute_payload

        # One campaign run warns at most once per distinct fallback reason,
        # instead of once per job.
        with deduplicate_fallback_warnings():
            for payload in payloads:
                yield execute_payload(payload)


class ProcessPoolBackend(ExecutionBackend):
    """Fan jobs out over a local ``multiprocessing`` pool."""

    name = "local"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise CampaignError("jobs must be >= 1")
        self._jobs = jobs

    @property
    def workers(self) -> int:
        return self._jobs

    def execute(
        self, payloads: list[dict[str, Any]]
    ) -> Iterator[tuple[str, dict[str, Any], float]]:
        if self._jobs == 1 or len(payloads) == 1:
            yield from SerialBackend().execute(payloads)
            return
        from ..telemetry import current_spec
        from .execution import execute_payload

        # Fork keeps worker start-up cheap where available (Linux/macOS);
        # elsewhere fall back to the platform default start method.  Workers
        # deduplicate fallback warnings for their whole lifetime, so a
        # parallel campaign warns once per worker at most, not per job, and
        # inherit the active telemetry session the same way.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else None)
        with context.Pool(
            processes=min(self._jobs, len(payloads)),
            initializer=_initialize_pool_worker,
            initargs=(current_spec(),),
        ) as pool:
            yield from pool.imap_unordered(execute_payload, payloads)

    def describe(self) -> str:
        return f"local[{self._jobs}]"


class TCPBackend(ExecutionBackend):
    """Serve jobs to remote pull-based workers from an in-process coordinator.

    Args:
        address: ``tcp://host:port`` to listen on (port 0 = ephemeral; see
            :attr:`address` for the resolved value).
        lease_timeout_s: Worker-death detection window; an unheartbeated
            job is requeued after this long.
        max_attempts: Hand-outs per job before the campaign fails.
        idle_timeout_s: Fail the run when no job completes for this long
            (``None`` = wait forever for workers).
        auth_key: Shared HMAC frame key (default: the ``REPRO_AUTH_KEY``
            environment variable; auth off when neither is set).  Purely
            operational — never part of job identity or store bytes.
        quarantine: Park jobs that exhaust ``max_attempts`` on a poison
            list instead of failing the whole campaign.
        checkpoint: Path the coordinator checkpoints its queue/lease state
            to (see :meth:`resume_from_checkpoint`); ``None`` disables.
        frame_timeout_s: Per-connection send/recv timeout.

    The coordinator binds at construction so its address can be given to
    workers before :meth:`execute` starts serving jobs.
    """

    name = "tcp"

    def __init__(
        self,
        address: str = "tcp://127.0.0.1:0",
        lease_timeout_s: float = 30.0,
        max_attempts: int = 3,
        idle_timeout_s: float | None = None,
        auth_key: Any = None,
        quarantine: bool = False,
        checkpoint: Any = None,
        frame_timeout_s: float = 10.0,
    ) -> None:
        from .distributed import Coordinator

        self._coordinator = Coordinator(
            address,
            lease_timeout_s=lease_timeout_s,
            max_attempts=max_attempts,
            auth_key=auth_key,
            quarantine=quarantine,
            checkpoint=checkpoint,
            frame_timeout_s=frame_timeout_s,
        )
        self._idle_timeout = idle_timeout_s

    def resume_from_checkpoint(self, store: Any | None = None) -> int:
        """Resubmit unfinished work from the coordinator's checkpoint file.

        Diffs the checkpoint against ``store`` (refreshed first when it
        supports ``refresh()``) so only jobs without a durable store entry
        are requeued; returns how many were resubmitted.
        """
        return self._coordinator.resume_from_checkpoint(store)

    @property
    def address(self) -> str:
        """Resolved coordinator address for workers to connect to."""
        return self._coordinator.address

    @property
    def coordinator(self):
        """The underlying :class:`~repro.campaign.distributed.Coordinator`."""
        return self._coordinator

    @property
    def workers(self) -> int:
        return max(1, len(self._coordinator.workers_seen))

    def execute(
        self, payloads: list[dict[str, Any]]
    ) -> Iterator[tuple[str, dict[str, Any], float]]:
        from .spec import JobSpec

        keyed = {
            JobSpec.from_dict(payload["job"]).key: payload for payload in payloads
        }
        self._coordinator.submit(keyed)
        try:
            for key, result, elapsed in self._coordinator.results(
                timeout_s=self._idle_timeout
            ):
                # A resumed checkpoint may carry jobs outside this run's
                # payload set; let workers finish them, but only stream
                # what this run asked for back to its runner.
                if key in keyed:
                    yield key, result, elapsed
        finally:
            self._coordinator.close()

    def close(self) -> None:
        self._coordinator.close()

    def describe(self) -> str:
        return self.address


def resolve_backend(
    backend: "str | ExecutionBackend | None", jobs: int = 1
) -> ExecutionBackend:
    """Map a backend spelling to an instance.

    ``None`` keeps the historical behaviour: serial for ``jobs == 1``, a
    local process pool otherwise.  Strings accept ``"serial"``, ``"local"``
    (honouring ``jobs``), and ``"tcp://HOST:PORT"``.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        return SerialBackend() if jobs == 1 else ProcessPoolBackend(jobs)
    if backend == "serial":
        return SerialBackend()
    if backend == "local":
        return SerialBackend() if jobs == 1 else ProcessPoolBackend(jobs)
    if backend.startswith("tcp://"):
        return TCPBackend(backend)
    raise CampaignError(
        f"unknown backend {backend!r}; choose 'serial', 'local' or tcp://HOST:PORT"
    )
