"""Campaign execution: serial or multiprocessing fan-out with caching.

The runner expands a :class:`~repro.campaign.spec.CampaignSpec` (or takes an
explicit job list), skips every job whose key is already in the result
store, and executes the rest — serially, or across a ``multiprocessing``
pool when ``jobs > 1``.  Each job is an independent deterministic
simulation, so parallel execution produces byte-identical store entries to
serial execution; only completion order differs, and outcomes are reported
back in spec order regardless.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from ..errors import CampaignError
from ..sim.engine import (
    ENGINE_CHOICES,
    deduplicate_fallback_warnings,
    enable_fallback_warning_dedup,
)
from ..sim.fastpath import KERNEL_CHOICES
from ..sim.experiment import compare_schemes
from ..sim.results import WorkloadComparison
from .spec import CampaignSpec, JobSpec
from .store import ResultStore, comparison_from_dict, comparison_to_dict


def _run_comparison(
    job: JobSpec, engine: str = "auto", kernel: str = "auto"
) -> WorkloadComparison:
    return compare_schemes(
        job.workload,
        baseline=job.baseline,
        alternatives=job.alternatives,
        settings=job.settings,
        engine=engine,
        kernel=kernel,
    )


def _execute_job(payload: dict[str, Any]) -> tuple[str, dict[str, Any], float]:
    """Worker entry point: run one job from its dictionary form.

    Takes and returns plain dictionaries so the payload pickles identically
    under any multiprocessing start method.  The engine choice rides along
    outside the job spec — it selects how the job is simulated, never what
    it computes, so it is not part of the job identity or store key.
    """
    job = JobSpec.from_dict(payload["job"])
    start = time.perf_counter()
    comparison = _run_comparison(
        job,
        engine=payload.get("engine", "auto"),
        kernel=payload.get("kernel", "auto"),
    )
    elapsed = time.perf_counter() - start
    return job.key, comparison_to_dict(comparison), elapsed


@dataclass(frozen=True)
class JobOutcome:
    """One finished job: its spec, result, and how it was obtained.

    Attributes:
        job: The job specification.
        comparison: The comparison result (from cache or fresh execution).
        elapsed_s: Execution wall time; ``0.0`` for cache hits.
        cached: ``True`` when the result came from the store without running.
    """

    job: JobSpec
    comparison: WorkloadComparison
    elapsed_s: float
    cached: bool


@dataclass(frozen=True)
class CampaignResult:
    """Everything a finished campaign run produced.

    Attributes:
        outcomes: One outcome per job, in spec order.
        executed: Number of jobs actually simulated this run.
        cached: Number of jobs satisfied from the result store.
        elapsed_s: Wall time of the whole run.
        workers: Worker processes used (1 = serial).
    """

    outcomes: tuple[JobOutcome, ...]
    executed: int
    cached: int
    elapsed_s: float
    workers: int

    @property
    def comparisons(self) -> list[WorkloadComparison]:
        """The comparison results, in spec order."""
        return [outcome.comparison for outcome in self.outcomes]


class CampaignRunner:
    """Executes a campaign against an optional persistent result store.

    Args:
        spec: A campaign specification, or an explicit job list for callers
            (like :func:`repro.sim.sweep`) that build jobs directly.
        store: Result store for caching/resumability; ``None`` disables
            persistence and every job executes.
        jobs: Worker processes; ``1`` (the default) runs serially in-process.
        engine: Simulation engine every job runs under (``"reference"``,
            ``"fast"`` or ``"auto"``, the default).  Engines are numerically
            identical,
            so store entries stay byte-identical across engine choices and
            the engine is deliberately *not* part of the job key.
        kernel: Fast-path kernel tier every job runs under (``"loop"``,
            ``"soa"`` or ``"auto"``, the default); bit-identical kernels,
            so the kernel is not part of the job key either.
    """

    def __init__(
        self,
        spec: CampaignSpec | Sequence[JobSpec],
        store: ResultStore | None = None,
        jobs: int = 1,
        engine: str = "auto",
        kernel: str = "auto",
    ) -> None:
        if isinstance(spec, CampaignSpec):
            self._jobs_list = spec.jobs()
        else:
            self._jobs_list = list(spec)
            if not all(isinstance(j, JobSpec) for j in self._jobs_list):
                raise CampaignError("explicit job lists must contain JobSpec objects")
        if not self._jobs_list:
            raise CampaignError("campaign expanded to zero jobs")
        if jobs < 1:
            raise CampaignError("jobs must be >= 1")
        if engine not in ENGINE_CHOICES:
            raise CampaignError(
                f"unknown engine {engine!r}; choose one of {ENGINE_CHOICES}"
            )
        if kernel not in KERNEL_CHOICES:
            raise CampaignError(
                f"unknown kernel {kernel!r}; choose one of {KERNEL_CHOICES}"
            )
        self._store = store
        self._workers = jobs
        self._engine = engine
        self._kernel = kernel

    @property
    def jobs_list(self) -> list[JobSpec]:
        """The expanded job list, in execution (spec) order."""
        return list(self._jobs_list)

    def run(
        self, progress: Callable[[JobOutcome], None] | None = None
    ) -> CampaignResult:
        """Execute the campaign and return all outcomes in spec order.

        Args:
            progress: Optional callback invoked with each :class:`JobOutcome`
                as it completes (cache hits first, then executed jobs in
                completion order).
        """
        start = time.perf_counter()
        by_key: dict[str, JobOutcome] = {}
        pending: dict[str, JobSpec] = {}

        for job in self._jobs_list:
            key = job.key
            if key in by_key or key in pending:
                continue
            cached = self._store.get(key) if self._store is not None else None
            if cached is not None:
                outcome = JobOutcome(
                    job=job, comparison=cached, elapsed_s=0.0, cached=True
                )
                by_key[key] = outcome
                if progress is not None:
                    progress(outcome)
            else:
                pending[key] = job

        if pending:
            if self._workers > 1 and len(pending) > 1:
                self._run_parallel(pending, by_key, progress)
            else:
                self._run_serial(pending, by_key, progress)

        outcomes = tuple(by_key[job.key] for job in self._jobs_list)
        executed = sum(1 for o in by_key.values() if not o.cached)
        return CampaignResult(
            outcomes=outcomes,
            executed=executed,
            cached=len(by_key) - executed,
            elapsed_s=time.perf_counter() - start,
            workers=self._workers,
        )

    def _record(
        self,
        job: JobSpec,
        comparison: WorkloadComparison,
        elapsed: float,
        by_key: dict[str, JobOutcome],
        progress: Callable[[JobOutcome], None] | None,
    ) -> None:
        if self._store is not None:
            self._store.put(job, comparison)
        outcome = JobOutcome(
            job=job, comparison=comparison, elapsed_s=elapsed, cached=False
        )
        by_key[job.key] = outcome
        if progress is not None:
            progress(outcome)

    def _run_serial(
        self,
        pending: dict[str, JobSpec],
        by_key: dict[str, JobOutcome],
        progress: Callable[[JobOutcome], None] | None,
    ) -> None:
        # One campaign run warns at most once per distinct fallback reason,
        # instead of once per job.
        with deduplicate_fallback_warnings():
            for job in pending.values():
                job_start = time.perf_counter()
                comparison = _run_comparison(
                    job, engine=self._engine, kernel=self._kernel
                )
                elapsed = time.perf_counter() - job_start
                self._record(job, comparison, elapsed, by_key, progress)

    def _run_parallel(
        self,
        pending: dict[str, JobSpec],
        by_key: dict[str, JobOutcome],
        progress: Callable[[JobOutcome], None] | None,
    ) -> None:
        # Fork keeps worker start-up cheap where available (Linux/macOS);
        # elsewhere fall back to the platform default start method.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else None)
        payloads = [
            {"job": job.to_dict(), "engine": self._engine, "kernel": self._kernel}
            for job in pending.values()
        ]
        # Workers deduplicate fallback warnings for their whole lifetime, so
        # a parallel campaign warns once per worker at most, not per job.
        with context.Pool(
            processes=min(self._workers, len(payloads)),
            initializer=enable_fallback_warning_dedup,
        ) as pool:
            for key, result, elapsed in pool.imap_unordered(_execute_job, payloads):
                comparison = comparison_from_dict(result)
                self._record(pending[key], comparison, elapsed, by_key, progress)


def run_campaign(
    spec: CampaignSpec | Sequence[JobSpec],
    store: ResultStore | str | Path | None = None,
    jobs: int = 1,
    progress: Callable[[JobOutcome], None] | None = None,
    engine: str = "auto",
    kernel: str = "auto",
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`CampaignRunner`.

    Args:
        spec: Campaign specification or explicit job list.
        store: Result store, a path to open one at, or ``None`` for no
            persistence.
        jobs: Worker processes.
        progress: Optional per-job completion callback.
        engine: Simulation engine for every executed job; engines are
            numerically identical, so the store stays consistent across
            engine choices.
        kernel: Fast-path kernel tier for every executed job (bit-identical
            kernels; not part of any job key).
    """
    if isinstance(store, (str, Path)):
        store = ResultStore(store)
    return CampaignRunner(
        spec, store=store, jobs=jobs, engine=engine, kernel=kernel
    ).run(progress=progress)
