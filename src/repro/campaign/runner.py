"""Campaign execution: pluggable backends over a cached result store.

The runner expands a :class:`~repro.campaign.spec.CampaignSpec` (or takes an
explicit job list), skips every job whose key is already in the result
store, and hands the rest to an :class:`~repro.campaign.backend
.ExecutionBackend` — in-process, a local ``multiprocessing`` pool, or a TCP
coordinator feeding remote workers.  Each job is an independent
deterministic simulation, so every backend produces byte-identical store
entries; only completion order differs, and outcomes are reported back in
spec order regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from ..errors import CampaignError
from ..sim.engine import ENGINE_CHOICES
from ..sim.fastpath import KERNEL_CHOICES
from ..sim.results import WorkloadComparison
from ..telemetry import emit_event, span
from .backend import ExecutionBackend, resolve_backend
from .execution import execute_payload, job_accesses, payload_for
from .spec import CampaignSpec, JobSpec
from .store import BaseResultStore, comparison_from_dict

# Retained as the multiprocessing entry point name older pickles may hold.
_execute_job = execute_payload


@dataclass(frozen=True)
class JobOutcome:
    """One finished job: its spec, result, and how it was obtained.

    Attributes:
        job: The job specification.
        comparison: The comparison result (from cache or fresh execution).
        elapsed_s: Execution wall time; ``0.0`` for cache hits.
        cached: ``True`` when the result came from the store without running.
    """

    job: JobSpec
    comparison: WorkloadComparison
    elapsed_s: float
    cached: bool


@dataclass(frozen=True)
class CampaignResult:
    """Everything a finished campaign run produced.

    Attributes:
        outcomes: One outcome per job, in spec order.
        executed: Number of jobs actually simulated this run.
        cached: Number of jobs satisfied from the result store.
        elapsed_s: Wall time of the whole run.
        workers: Worker parallelism used (1 = serial).
        backend: Name of the execution backend that ran the jobs.
    """

    outcomes: tuple[JobOutcome, ...]
    executed: int
    cached: int
    elapsed_s: float
    workers: int
    backend: str = "serial"

    @property
    def comparisons(self) -> list[WorkloadComparison]:
        """The comparison results, in spec order."""
        return [outcome.comparison for outcome in self.outcomes]


class CampaignRunner:
    """Executes a campaign against an optional persistent result store.

    Args:
        spec: A campaign specification, or an explicit job list for callers
            (like :func:`repro.sim.sweep`) that build jobs directly.
        store: Result store for caching/resumability; ``None`` disables
            persistence and every job executes.  Accepts the single-file
            :class:`~repro.campaign.ResultStore` and the directory-backed
            :class:`~repro.campaign.ShardedResultStore` interchangeably.
        jobs: Worker processes for the default local backend; ``1`` (the
            default) runs serially in-process.
        engine: Simulation engine every job runs under (``"reference"``,
            ``"fast"`` or ``"auto"``, the default).  Engines are numerically
            identical, so store entries stay byte-identical across engine
            choices and the engine is deliberately *not* part of the job key.
        kernel: Fast-path kernel tier every job runs under (``"loop"``,
            ``"soa"`` or ``"auto"``, the default); bit-identical kernels,
            so the kernel is not part of the job key either.
        backend: Execution backend — an
            :class:`~repro.campaign.backend.ExecutionBackend` instance, or
            one of the spellings ``"serial"``, ``"local"``,
            ``"tcp://HOST:PORT"``.  Like the engine and kernel, the backend
            selects *where* jobs run, never *what* they compute, so it is
            not part of job identity and all backends fill stores with
            byte-identical entries.
        artifact_cache: Optional artifact-cache directory rode along with
            every payload (see :mod:`repro.workloads.artifacts`): workers
            serve decoded traces from it so a sweep decodes each workload
            once per machine.  Purely operational — results and store
            entries are byte-identical with the cache cold, warm or
            disabled, and the knob never enters job identity.
    """

    def __init__(
        self,
        spec: CampaignSpec | Sequence[JobSpec],
        store: BaseResultStore | None = None,
        jobs: int = 1,
        engine: str = "auto",
        kernel: str = "auto",
        backend: str | ExecutionBackend | None = None,
        artifact_cache: str | Path | None = None,
    ) -> None:
        if isinstance(spec, CampaignSpec):
            self._jobs_list = spec.jobs()
        else:
            self._jobs_list = list(spec)
            if not all(isinstance(j, JobSpec) for j in self._jobs_list):
                raise CampaignError("explicit job lists must contain JobSpec objects")
        if not self._jobs_list:
            raise CampaignError("campaign expanded to zero jobs")
        if jobs < 1:
            raise CampaignError("jobs must be >= 1")
        if engine not in ENGINE_CHOICES:
            raise CampaignError(
                f"unknown engine {engine!r}; choose one of {ENGINE_CHOICES}"
            )
        if kernel not in KERNEL_CHOICES:
            raise CampaignError(
                f"unknown kernel {kernel!r}; choose one of {KERNEL_CHOICES}"
            )
        self._store = store
        self._backend = resolve_backend(backend, jobs)
        self._engine = engine
        self._kernel = kernel
        self._artifact_cache = (
            str(artifact_cache) if artifact_cache is not None else None
        )

    @property
    def jobs_list(self) -> list[JobSpec]:
        """The expanded job list, in execution (spec) order."""
        return list(self._jobs_list)

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend this runner hands pending jobs to."""
        return self._backend

    def run(
        self, progress: Callable[[JobOutcome], None] | None = None
    ) -> CampaignResult:
        """Execute the campaign and return all outcomes in spec order.

        Args:
            progress: Optional callback invoked with each :class:`JobOutcome`
                as it completes (cache hits first, then executed jobs in
                completion order).
        """
        run_span = span(
            "campaign.run",
            jobs=len(self._jobs_list),
            workers=self._backend.workers,
            backend=self._backend.name,
            engine=self._engine,
            kernel=self._kernel,
        ).start()
        by_key: dict[str, JobOutcome] = {}
        pending: dict[str, JobSpec] = {}

        for job in self._jobs_list:
            key = job.key
            if key in by_key or key in pending:
                continue
            cached = self._store.get(key) if self._store is not None else None
            if cached is not None:
                outcome = JobOutcome(
                    job=job, comparison=cached, elapsed_s=0.0, cached=True
                )
                by_key[key] = outcome
                self._emit_job_event(outcome)
                if progress is not None:
                    progress(outcome)
            else:
                pending[key] = job

        try:
            if pending:
                payloads = [
                    payload_for(
                        job,
                        engine=self._engine,
                        kernel=self._kernel,
                        artifact_cache=self._artifact_cache,
                    )
                    for job in pending.values()
                ]
                for key, result, elapsed in self._backend.execute(payloads):
                    comparison = comparison_from_dict(result)
                    self._record(pending[key], comparison, elapsed, by_key, progress)
        finally:
            # Even a fully-cached run releases the backend: a TCP
            # coordinator must stop serving so idle workers shut down and
            # its port is freed.
            self._backend.close()

        missing = [job for job in self._jobs_list if job.key not in by_key]
        if missing:
            # A backend that under-delivers (quarantined jobs, a resumed
            # coordinator serving a different job set) must fail with the
            # campaign's vocabulary, not a KeyError.
            labels = ", ".join(
                f"{job.workload}@{job.point_label}" for job in missing[:5]
            )
            raise CampaignError(
                f"backend {self._backend.describe()} completed without "
                f"delivering {len(missing)} of {len(self._jobs_list)} jobs "
                f"({labels}{', ...' if len(missing) > 5 else ''}); "
                "check quarantine reports and re-run to retry"
            )
        outcomes = tuple(by_key[job.key] for job in self._jobs_list)
        executed = sum(1 for o in by_key.values() if not o.cached)
        cached_count = len(by_key) - executed
        run_span.add(executed=executed, cached=cached_count)
        run_span.finish()
        return CampaignResult(
            outcomes=outcomes,
            executed=executed,
            cached=cached_count,
            elapsed_s=run_span.duration_s,
            workers=self._backend.workers,
            backend=self._backend.name,
        )

    @staticmethod
    def _emit_job_event(outcome: JobOutcome) -> None:
        """One ``campaign.job`` telemetry event per finished job.

        Cache hits report zero accesses so throughput aggregations count
        only simulated work.
        """
        emit_event(
            "campaign.job",
            workload=outcome.job.workload,
            point=outcome.job.point_label,
            cached=outcome.cached,
            elapsed_s=outcome.elapsed_s,
            accesses=0 if outcome.cached else job_accesses(outcome.job),
        )

    def _record(
        self,
        job: JobSpec,
        comparison: WorkloadComparison,
        elapsed: float,
        by_key: dict[str, JobOutcome],
        progress: Callable[[JobOutcome], None] | None,
    ) -> None:
        if self._store is not None:
            self._store.put(job, comparison)
        outcome = JobOutcome(
            job=job, comparison=comparison, elapsed_s=elapsed, cached=False
        )
        by_key[job.key] = outcome
        self._emit_job_event(outcome)
        if progress is not None:
            progress(outcome)


def run_campaign(
    spec: CampaignSpec | Sequence[JobSpec],
    store: BaseResultStore | str | Path | None = None,
    jobs: int = 1,
    progress: Callable[[JobOutcome], None] | None = None,
    engine: str = "auto",
    kernel: str = "auto",
    backend: str | ExecutionBackend | None = None,
    artifact_cache: str | Path | None = None,
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`CampaignRunner`.

    Args:
        spec: Campaign specification or explicit job list.
        store: Result store, a path to open one at (``.jsonl`` file or
            sharded directory, see :func:`repro.campaign.open_store`), or
            ``None`` for no persistence.
        jobs: Worker processes for the default local backend.
        progress: Optional per-job completion callback.
        engine: Simulation engine for every executed job; engines are
            numerically identical, so the store stays consistent across
            engine choices.
        kernel: Fast-path kernel tier for every executed job (bit-identical
            kernels; not part of any job key).
        backend: Execution backend instance or spelling (``"serial"``,
            ``"local"``, ``"tcp://HOST:PORT"``); never part of job identity.
        artifact_cache: Optional artifact-cache directory shared across
            jobs (see :class:`CampaignRunner`); operational only, results
            stay byte-identical.
    """
    if isinstance(store, (str, Path)):
        from .tools import open_store

        store = open_store(store)
    return CampaignRunner(
        spec,
        store=store,
        jobs=jobs,
        engine=engine,
        kernel=kernel,
        backend=backend,
        artifact_cache=artifact_cache,
    ).run(progress=progress)
