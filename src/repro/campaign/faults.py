"""Deterministic fault injection for the distributed campaign tier.

Chaos testing a coordinator/worker system needs faults that are *seeded*
(the same plan replays the same faults), *scoped* (a test injecting frame
drops must not perturb an unrelated campaign in the same process), and
*free* when disabled (the production path pays one context-variable load
and a ``None`` check, exactly like telemetry).  This module provides all
three:

* :class:`FaultPlan` — a frozen, JSON-serialisable description of which
  faults to inject: frame drop/corrupt/duplicate/delay probabilities,
  heartbeat stalls, process kills at named sites, and torn store appends.
* :class:`FaultInjector` — the runtime: one seeded RNG plus per-site visit
  counters, consulted by the instrumented code paths
  (:func:`repro.campaign.distributed.request`, the heartbeat thread,
  :func:`repro.campaign.store._append_line`, and the named
  :func:`fault_point` sites inside the worker loop).
* :func:`inject_faults` — context-manager scoping, mirroring
  :func:`repro.telemetry.telemetry`; :func:`enable_faults_for_process`
  installs a process-wide injector in spawned workers from the
  ``REPRO_FAULT_PLAN`` environment variable (a JSON plan).

Faults are an operational knob like the engine or the artifact cache: they
select *how unreliably* a campaign executes, never what it computes, so
they are not part of job identity and a faulted campaign that converges
fills a store byte-identical to an unfaulted serial run — the property the
chaos suite pins down.
"""

from __future__ import annotations

import json
import os
import random
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator, Mapping

from ..errors import CampaignError

#: Environment variable carrying a JSON :class:`FaultPlan` into workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status of a process killed by a ``kill_at`` fault, distinguishable
#: from real crashes in chaos-test assertions.
KILL_EXIT_CODE = 43


class FaultInjected(CampaignError):
    """An injected fault fired (dropped frame, torn write, ...).

    Deliberately a :class:`~repro.errors.CampaignError` subclass: injected
    faults must exercise exactly the error-handling paths real network and
    disk failures take, so production code never needs to know it exists.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults one injector should produce.

    Probabilities are per-opportunity (one frame exchange, one heartbeat
    renewal); ``kill_at`` and ``torn_write_at`` are exact 1-based ordinals
    so tests can place a fault deterministically ("kill this worker on its
    first job", "tear the second shard append").
    """

    seed: int = 0
    #: Probability a request frame is dropped before it is sent.
    drop_request_p: float = 0.0
    #: Probability the reply to a delivered request is discarded.
    drop_reply_p: float = 0.0
    #: Probability a request frame's bytes are corrupted on the wire.
    corrupt_p: float = 0.0
    #: Probability a (non-pull) request is sent twice.
    duplicate_p: float = 0.0
    #: Probability a request is delayed by ``delay_s`` before sending.
    delay_p: float = 0.0
    delay_s: float = 0.02
    #: Probability one heartbeat renewal is silently skipped.
    heartbeat_stall_p: float = 0.0
    #: site name -> 1-based visit numbers at which to kill the process.
    kill_at: Mapping[str, tuple[int, ...]] = field(default_factory=dict)
    #: 1-based store-append ordinals to tear (partial write + crash).
    torn_write_at: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "drop_request_p",
            "drop_reply_p",
            "corrupt_p",
            "duplicate_p",
            "delay_p",
            "heartbeat_stall_p",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CampaignError(f"FaultPlan.{name} must be in [0, 1], got {value}")
        # Normalise the mapping/sequence fields so plans hash/compare and
        # JSON round-trips are exact.
        object.__setattr__(
            self,
            "kill_at",
            {str(k): tuple(int(n) for n in v) for k, v in dict(self.kill_at).items()},
        )
        object.__setattr__(
            self, "torn_write_at", tuple(int(n) for n in self.torn_write_at)
        )

    def to_json(self) -> str:
        """Serialise the plan for the ``REPRO_FAULT_PLAN`` environment hop."""
        payload = asdict(self)
        payload["kill_at"] = {k: list(v) for k, v in self.kill_at.items()}
        payload["torn_write_at"] = list(self.torn_write_at)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"malformed fault plan JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise CampaignError("fault plan JSON must be an object")
        try:
            return cls(
                **{
                    **payload,
                    "kill_at": {
                        k: tuple(v) for k, v in payload.get("kill_at", {}).items()
                    },
                    "torn_write_at": tuple(payload.get("torn_write_at", ())),
                }
            )
        except TypeError as exc:
            raise CampaignError(f"malformed fault plan: {exc}") from exc


class FaultInjector:
    """Runtime decision-maker for one :class:`FaultPlan`.

    Thread-safe: handler threads, heartbeat threads and the worker main
    loop may consult one injector concurrently.  Decisions draw from a
    single seeded RNG in consultation order, so a single-threaded test
    replays identically; ``kill_at``/``torn_write_at`` use per-site visit
    counters and are exact regardless of interleaving.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._visits: dict[str, int] = {}
        self._appends = 0
        #: fault kind -> number of times it fired (test introspection).
        self.fired: dict[str, int] = {}

    def _record(self, kind: str) -> None:
        self.fired[kind] = self.fired.get(kind, 0) + 1

    def frame_fate(self, msg_type: str) -> str | None:
        """Decide one request's fate: ``None`` (deliver) or a fault kind.

        Returns one of ``"drop"``, ``"corrupt"``, ``"duplicate"``,
        ``"delay"``, ``"drop_reply"``.  Duplication is only offered to
        idempotent message types (everything but ``pull`` — duplicating a
        pull would grant a lease nobody services and force a requeue wait).
        """
        plan = self.plan
        with self._lock:
            roll = self._rng.random
            if plan.drop_request_p and roll() < plan.drop_request_p:
                self._record("drop")
                return "drop"
            if plan.corrupt_p and roll() < plan.corrupt_p:
                self._record("corrupt")
                return "corrupt"
            if (
                plan.duplicate_p
                and msg_type != "pull"
                and roll() < plan.duplicate_p
            ):
                self._record("duplicate")
                return "duplicate"
            if plan.delay_p and roll() < plan.delay_p:
                self._record("delay")
                return "delay"
            if plan.drop_reply_p and roll() < plan.drop_reply_p:
                self._record("drop_reply")
                return "drop_reply"
        return None

    def heartbeat_stalled(self) -> bool:
        """Whether to silently skip one heartbeat renewal."""
        plan = self.plan
        if not plan.heartbeat_stall_p:
            return False
        with self._lock:
            if self._rng.random() < plan.heartbeat_stall_p:
                self._record("heartbeat_stall")
                return True
        return False

    def should_kill(self, site: str) -> bool:
        """Whether this (1-based) visit to ``site`` is a scheduled kill."""
        ordinals = self.plan.kill_at.get(site)
        with self._lock:
            visit = self._visits.get(site, 0) + 1
            self._visits[site] = visit
        if ordinals and visit in ordinals:
            self._record("kill")
            return True
        return False

    def torn_length(self, nbytes: int) -> int | None:
        """Bytes to actually write for this append; ``None`` = write whole.

        Counts appends per process; an append whose 1-based ordinal is in
        ``torn_write_at`` is torn at a seeded offset strictly inside the
        payload (at least 1 byte written, at least 1 byte lost).
        """
        with self._lock:
            self._appends += 1
            if self._appends not in self.plan.torn_write_at or nbytes < 2:
                return None
            self._record("torn_write")
            return self._rng.randrange(1, nbytes)

    def corrupt_bytes(self, payload: bytes) -> bytes:
        """Return ``payload`` with one seeded byte flipped."""
        if not payload:
            return payload
        with self._lock:
            index = self._rng.randrange(len(payload))
            flip = 1 + self._rng.randrange(255)
        corrupted = bytearray(payload)
        corrupted[index] ^= flip
        return bytes(corrupted)


# ---------------------------------------------------------------------------
# Scoping (mirrors repro.telemetry: contextvar first, process-global second)
# ---------------------------------------------------------------------------

_active: ContextVar[FaultInjector | None] = ContextVar(
    "repro_fault_injector", default=None
)
_process_injector: FaultInjector | None = None


def current_injector() -> FaultInjector | None:
    """The injector governing this context (``None`` = no faults)."""
    injector = _active.get()
    if injector is not None:
        return injector
    return _process_injector


@contextmanager
def inject_faults(plan: FaultPlan | FaultInjector) -> Iterator[FaultInjector]:
    """Scope a fault injector to the calling context (and its children)."""
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    token = _active.set(injector)
    try:
        yield injector
    finally:
        _active.reset(token)


@contextmanager
def activate_faults(injector: FaultInjector | None) -> Iterator[None]:
    """Re-enter a captured injector in a freshly started thread.

    Threads begin with empty context, so long-lived helper threads (the
    heartbeat renewer) capture :func:`current_injector` at construction and
    re-enter it here — the same discipline
    :func:`repro.telemetry.activate` applies to telemetry sessions.
    ``None`` is a no-op, keeping call sites unconditional.
    """
    if injector is None:
        yield
        return
    token = _active.set(injector)
    try:
        yield
    finally:
        _active.reset(token)


def enable_faults_for_process(spec: str | None = None) -> FaultInjector | None:
    """Install (or clear) the process-wide injector from a JSON plan.

    Worker processes call this at start-up with ``spec`` defaulting to the
    ``REPRO_FAULT_PLAN`` environment variable, so chaos tests can arm
    spawned workers without threading a plan through every call signature.
    An absent/empty spec *clears* any inherited injector (fork safety).
    """
    global _process_injector
    if spec is None:
        spec = os.environ.get(FAULT_PLAN_ENV)
    if not spec:
        _process_injector = None
        return None
    _process_injector = FaultInjector(FaultPlan.from_json(spec))
    return _process_injector


def fault_point(site: str) -> None:
    """Named kill site: dies with :data:`KILL_EXIT_CODE` when scheduled.

    Sprinkled at the moments a worker is most dangerous to lose — after
    taking a lease, after computing but before reporting — so chaos tests
    can assert the lease/requeue machinery covers every window.  Free when
    no injector is active.
    """
    injector = current_injector()
    if injector is not None and injector.should_kill(site):
        os._exit(KILL_EXIT_CODE)


def _maybe_torn_length(nbytes: int) -> int | None:
    """Store-writer hook: how many bytes this append should really write."""
    injector = current_injector()
    if injector is None:
        return None
    return injector.torn_length(nbytes)
