"""Parallel, resumable experiment campaigns with a persistent result store.

The paper's evaluation sweeps many (workload × scheme × parameter) points;
this package turns those one-off runs into managed *campaigns*:

* :mod:`~repro.campaign.spec` — :class:`CampaignSpec` / :class:`JobSpec`,
  declarative descriptions of the cross-product to evaluate, each job
  deterministic given its seed.
* :mod:`~repro.campaign.runner` — :class:`CampaignRunner` /
  :func:`run_campaign`, serial or ``multiprocessing`` fan-out with per-job
  timing and progress callbacks.
* :mod:`~repro.campaign.store` — :class:`ResultStore`, a JSONL-on-disk store
  keyed by a content hash of the job spec.  Re-running a campaign skips
  completed jobs, and parallel runs produce byte-identical entries to
  serial ones.
* :mod:`~repro.campaign.report` — aggregation from the store back into the
  :mod:`repro.analysis` figure builders.

Quickstart::

    from repro.campaign import CampaignSpec, run_campaign
    from repro.sim import ExperimentSettings

    spec = CampaignSpec(
        name="p-cell-sweep",
        workloads=("gcc", "mcf"),
        base_settings=ExperimentSettings(num_accesses=20_000),
        sweep=(("p_cell", (1e-9, 1e-8, 1e-7)),),
    )
    result = run_campaign(spec, store="campaign_store.jsonl", jobs=4)
    print(result.executed, "executed,", result.cached, "cached")
"""

from .hashing import canonical_json, content_hash
from .report import (
    campaign_summary_to_csv,
    comparisons_at_point,
    figure5_from_store,
    figure6_from_store,
    missing_jobs,
    render_campaign_summary,
)
from .runner import CampaignResult, CampaignRunner, JobOutcome, run_campaign
from .spec import SWEEPABLE_FIELDS, CampaignSpec, JobSpec
from .store import (
    ResultStore,
    comparison_from_dict,
    comparison_to_dict,
    run_result_from_dict,
    run_result_to_dict,
)

__all__ = [
    "CampaignSpec",
    "JobSpec",
    "SWEEPABLE_FIELDS",
    "CampaignRunner",
    "CampaignResult",
    "JobOutcome",
    "run_campaign",
    "ResultStore",
    "comparison_to_dict",
    "comparison_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "canonical_json",
    "content_hash",
    "missing_jobs",
    "comparisons_at_point",
    "figure5_from_store",
    "figure6_from_store",
    "render_campaign_summary",
    "campaign_summary_to_csv",
]
