"""Parallel, resumable, distributable experiment campaigns.

The paper's evaluation sweeps many (workload × scheme × parameter) points;
this package turns those one-off runs into managed *campaigns*:

* :mod:`~repro.campaign.spec` — :class:`CampaignSpec` / :class:`JobSpec`,
  declarative descriptions of the cross-product to evaluate, each job
  deterministic given its seed.  Sweeps accept dotted paths into the
  nested configurations (``l2_config.associativity``, ``l2_config.ecc.kind``).
* :mod:`~repro.campaign.runner` — :class:`CampaignRunner` /
  :func:`run_campaign` over a pluggable
  :class:`~repro.campaign.backend.ExecutionBackend`: in-process serial, a
  local ``multiprocessing`` pool, or a TCP coordinator feeding remote
  workers.  Backends never affect job identity or store bytes.
* :mod:`~repro.campaign.distributed` — the coordinator/worker protocol:
  length-prefixed JSON frames (optionally HMAC-signed, ``REPRO_AUTH_KEY``),
  work-stealing pulls, heartbeat leases with requeue on worker death,
  worker reconnect backoff, poison-job quarantine, and coordinator
  checkpoint/resume for crash recovery.
* :mod:`~repro.campaign.faults` — deterministic, seeded fault injection
  (dropped/corrupted frames, heartbeat stalls, worker kills, torn store
  writes) scoped like telemetry; drives the chaos suite.
* :mod:`~repro.campaign.store` / :mod:`~repro.campaign.shards` —
  :class:`ResultStore` (one JSONL file) and :class:`ShardedResultStore`
  (one JSONL shard per key prefix, concurrent-writer safe), both keyed by
  job content hash and carrying per-entry provenance (package version +
  git hash).  Re-running a campaign skips completed jobs, and every
  backend produces byte-identical entries.
* :mod:`~repro.campaign.tools` — :func:`merge_stores` / :func:`diff_stores`
  to combine per-machine stores and compare before/after campaigns.
* :mod:`~repro.campaign.report` — aggregation from the store back into the
  :mod:`repro.analysis` figure builders.

Quickstart::

    from repro.campaign import CampaignSpec, run_campaign
    from repro.sim import ExperimentSettings

    spec = CampaignSpec(
        name="p-cell-sweep",
        workloads=("gcc", "mcf"),
        base_settings=ExperimentSettings(num_accesses=20_000),
        sweep=(("p_cell", (1e-9, 1e-8, 1e-7)),),
    )
    result = run_campaign(spec, store="campaign_store.jsonl", jobs=4)
    print(result.executed, "executed,", result.cached, "cached")

Distributed quickstart (coordinator side)::

    from repro.campaign import TCPBackend, run_campaign

    backend = TCPBackend("tcp://0.0.0.0:7654")
    result = run_campaign(spec, store="store_dir/", backend=backend)

and on every worker machine::

    repro-reap worker tcp://coordinator-host:7654 --jobs 8
"""

from .backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    TCPBackend,
    resolve_backend,
)
from .distributed import (
    Coordinator,
    FrameAuth,
    load_checkpoint,
    recover_pending_payloads,
    run_worker,
    run_worker_pool,
)
from .execution import execute_payload, payload_for
from .faults import (
    FaultInjected,
    FaultInjector,
    FaultPlan,
    enable_faults_for_process,
    fault_point,
    inject_faults,
)
from .hashing import canonical_json, content_hash
from .provenance import ProvenanceWarning, provenance_dict
from .report import (
    campaign_summary_to_csv,
    comparisons_at_point,
    figure5_from_store,
    figure6_from_store,
    missing_jobs,
    render_campaign_summary,
)
from .runner import CampaignResult, CampaignRunner, JobOutcome, run_campaign
from .shards import ShardedResultStore
from .spec import (
    SWEEPABLE_FIELDS,
    CampaignSpec,
    JobSpec,
    apply_sweep_point,
    validate_sweep_path,
)
from .store import (
    BaseResultStore,
    ResultStore,
    comparison_from_dict,
    comparison_to_dict,
    run_result_from_dict,
    run_result_to_dict,
)
from .tools import (
    EntryDiff,
    MergeReport,
    StoreDiff,
    diff_stores,
    merge_stores,
    open_store,
    render_store_diff,
)

__all__ = [
    "CampaignSpec",
    "JobSpec",
    "SWEEPABLE_FIELDS",
    "apply_sweep_point",
    "validate_sweep_path",
    "CampaignRunner",
    "CampaignResult",
    "JobOutcome",
    "run_campaign",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "TCPBackend",
    "resolve_backend",
    "Coordinator",
    "FrameAuth",
    "load_checkpoint",
    "recover_pending_payloads",
    "run_worker",
    "run_worker_pool",
    "FaultPlan",
    "FaultInjector",
    "FaultInjected",
    "inject_faults",
    "enable_faults_for_process",
    "fault_point",
    "payload_for",
    "execute_payload",
    "BaseResultStore",
    "ResultStore",
    "ShardedResultStore",
    "open_store",
    "merge_stores",
    "diff_stores",
    "render_store_diff",
    "MergeReport",
    "StoreDiff",
    "EntryDiff",
    "ProvenanceWarning",
    "provenance_dict",
    "comparison_to_dict",
    "comparison_from_dict",
    "run_result_to_dict",
    "run_result_from_dict",
    "canonical_json",
    "content_hash",
    "missing_jobs",
    "comparisons_at_point",
    "figure5_from_store",
    "figure6_from_store",
    "render_campaign_summary",
    "campaign_summary_to_csv",
]
