"""Builders for the paper's tables and scalar overhead claims.

* :func:`build_table1` — Table I, the cache-hierarchy configuration.
* :func:`build_area_table` — the Section V-B area argument: the ECC decoder
  is ~0.1% of the cache, so replicating it 8x stays below 1% overhead.
* :func:`build_latency_table` — the Section V-B performance argument: REAP's
  read-hit latency is less than or equal to the conventional cache's.
* :func:`numeric_example` — the Section III-B / IV worked example
  (Eqs. 4, 5 and the 50x REAP factor).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.readpath import ReadPathTiming
from ..config import (
    CacheLevelConfig,
    HierarchyConfig,
    ReadPathMode,
    paper_hierarchy,
    paper_l2_config,
)
from ..ecc import build_ecc_scheme
from ..energy import NVSimLikeModel
from ..reliability import (
    accumulated_failure_probability,
    block_failure_probability,
    reap_failure_probability,
)
from ..units import to_kib


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    level: str
    size_kib: float
    associativity: int
    block_size_bytes: int
    write_policy: str
    technology: str


def build_table1(hierarchy: HierarchyConfig | None = None) -> list[Table1Row]:
    """Reproduce Table I from the configured hierarchy."""
    hierarchy = hierarchy or paper_hierarchy()
    rows = []
    for level in hierarchy.levels():
        rows.append(
            Table1Row(
                level=level.name,
                size_kib=to_kib(level.size_bytes),
                associativity=level.associativity,
                block_size_bytes=level.block_size_bytes,
                write_policy=level.write_policy.value,
                technology=level.technology.value,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Area overhead (Section V-B)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AreaOverheadReport:
    """Area accounting of the conventional vs. REAP L2.

    Attributes:
        conventional_total_mm2: Total area with a single ECC decoder.
        reap_total_mm2: Total area with one decoder per way.
        decoder_area_fraction: One decoder's share of the conventional cache.
        overhead_fraction: (REAP - conventional) / conventional.
        num_decoders_conventional: Decoder instances in the baseline.
        num_decoders_reap: Decoder instances in REAP.
    """

    conventional_total_mm2: float
    reap_total_mm2: float
    decoder_area_fraction: float
    overhead_fraction: float
    num_decoders_conventional: int
    num_decoders_reap: int

    @property
    def overhead_percent(self) -> float:
        """Area overhead in percent."""
        return self.overhead_fraction * 100.0


def build_area_table(config: CacheLevelConfig | None = None) -> AreaOverheadReport:
    """Compute the REAP area overhead for an L2 configuration."""
    config = config or paper_l2_config()
    ecc = build_ecc_scheme(config.ecc, config.block_size_bits)
    model = NVSimLikeModel(config, ecc)
    conventional = model.area(read_path=ReadPathMode.PARALLEL)
    reap = model.area(read_path=ReadPathMode.REAP)
    single_decoder = model.ecc_profile.decoder_area_mm2
    return AreaOverheadReport(
        conventional_total_mm2=conventional.total_mm2,
        reap_total_mm2=reap.total_mm2,
        decoder_area_fraction=single_decoder / conventional.total_mm2,
        overhead_fraction=reap.total_mm2 / conventional.total_mm2 - 1.0,
        num_decoders_conventional=model.num_ecc_decoders(ReadPathMode.PARALLEL),
        num_decoders_reap=model.num_ecc_decoders(ReadPathMode.REAP),
    )


# ---------------------------------------------------------------------------
# Access-time comparison (Section V-B)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LatencyReport:
    """Read-hit latency of the three read-path organisations."""

    conventional_ns: float
    reap_ns: float
    serial_ns: float

    @property
    def reap_is_no_slower(self) -> bool:
        """The paper's claim: REAP does not lengthen the access."""
        return self.reap_ns <= self.conventional_ns

    @property
    def serial_penalty_ns(self) -> float:
        """Extra latency the rejected serial alternative pays vs. conventional."""
        return self.serial_ns - self.conventional_ns


def build_latency_table(
    config: CacheLevelConfig | None = None, timing: ReadPathTiming | None = None
) -> LatencyReport:
    """Compare the read-hit latency of the three organisations."""
    config = config or paper_l2_config()
    ecc = build_ecc_scheme(config.ecc, config.block_size_bits)
    model = NVSimLikeModel(config, ecc, timing=timing)
    return LatencyReport(
        conventional_ns=model.read_hit_latency_ns(ReadPathMode.PARALLEL),
        reap_ns=model.read_hit_latency_ns(ReadPathMode.REAP),
        serial_ns=model.read_hit_latency_ns(ReadPathMode.SERIAL),
    )


# ---------------------------------------------------------------------------
# Section III-B / IV worked example
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NumericExample:
    """The paper's worked example on accumulation and REAP.

    Attributes:
        p_cell: Per-read, per-cell disturbance probability used.
        num_ones: '1' cells in the example line.
        num_reads: Total reads between checks (concealed + demand).
        single_read_failure: Eq. (4) — uncorrectable probability without
            concealed reads.
        accumulated_failure: Eq. (5) — uncorrectable probability with the
            concealed reads accumulated.
        reap_failure: Section IV — uncorrectable probability under REAP.
        accumulation_penalty: accumulated / single.
        reap_gain: accumulated / REAP (the paper's "50x lower").
    """

    p_cell: float
    num_ones: int
    num_reads: int
    single_read_failure: float
    accumulated_failure: float
    reap_failure: float
    accumulation_penalty: float
    reap_gain: float


def numeric_example(
    p_cell: float = 1e-8, num_ones: int = 100, num_reads: int = 50
) -> NumericExample:
    """Reproduce the Section III-B / IV worked example.

    Note: the paper's prose quotes ``P_RD-cell = 1e-7`` but the numbers it
    derives (5.0e-13, 1.3e-9, 2.6e-11) correspond to ``1e-8``, which is the
    default used here.
    """
    single = block_failure_probability(p_cell, num_ones, correctable=1)
    accumulated = accumulated_failure_probability(
        p_cell, num_ones, num_reads, correctable=1
    )
    reap = reap_failure_probability(p_cell, num_ones, num_reads, correctable=1)
    return NumericExample(
        p_cell=p_cell,
        num_ones=num_ones,
        num_reads=num_reads,
        single_read_failure=single,
        accumulated_failure=accumulated,
        reap_failure=reap,
        accumulation_penalty=accumulated / single if single else float("inf"),
        reap_gain=accumulated / reap if reap else float("inf"),
    )
