"""Builders for the paper's figures (data series, no plotting dependency).

Each builder returns plain dataclasses containing exactly the series the
corresponding paper figure plots, so they can be printed as text tables,
dumped to CSV, or plotted by the user's tool of choice.

* :func:`build_figure3` — Fig. 3: concealed-read count histogram and its
  failure-rate contribution for one workload.
* :func:`build_figure5` — Fig. 5: per-workload MTTF of REAP normalised to the
  conventional cache.
* :func:`build_figure6` — Fig. 6: per-workload dynamic energy of REAP
  normalised to the conventional cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core import ProtectionScheme
from ..errors import AnalysisError
from ..reliability import ConcealedReadHistogram, HistogramBin
from ..sim import (
    ExperimentRunner,
    ExperimentSettings,
    SchemeRunResult,
    WorkloadComparison,
    run_workload,
)
from ..workloads import FIGURE3_WORKLOADS, all_profiles


# ---------------------------------------------------------------------------
# Fig. 3 — concealed-read distribution and failure contribution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure3Series:
    """The two Fig. 3 curves for one workload.

    Attributes:
        workload: Workload name.
        bins: Histogram bins (concealed reads, normalised frequency,
            failure-rate contribution).
        total_failure_rate: Sum of all per-delivery failure probabilities.
        max_concealed_reads: Largest concealed-read count observed.
        tail_dominance: Fraction of the failure rate contributed by the
            upper half of the concealed-read axis (the paper's headline
            observation is that this is large despite tiny frequencies).
        run: The underlying conventional-cache run.
    """

    workload: str
    bins: tuple[HistogramBin, ...]
    total_failure_rate: float
    max_concealed_reads: int
    tail_dominance: float
    run: SchemeRunResult


def build_figure3(
    workload: str,
    settings: ExperimentSettings | None = None,
    num_bins: int = 40,
) -> Figure3Series:
    """Reproduce one panel of Fig. 3 for a named workload.

    The conventional (parallel-access) cache is simulated, every demand
    delivery records how many concealed reads the line had accumulated, and
    the samples are folded into the frequency / failure-rate histogram.
    """
    settings = settings or ExperimentSettings()
    if not settings.track_accumulation:
        raise AnalysisError("Fig. 3 requires accumulation tracking to be enabled")
    result, cache = run_workload(
        workload, ProtectionScheme.CONVENTIONAL, settings=settings
    )
    tracker = cache.tracker
    if tracker is None or len(tracker) == 0:
        raise AnalysisError(f"no deliveries recorded for workload {workload!r}")
    histogram = ConcealedReadHistogram(
        tracker,
        p_cell=cache.p_cell,
        correctable=cache.ecc.correctable_errors,
        num_bins=num_bins,
    )
    return Figure3Series(
        workload=result.workload,
        bins=tuple(histogram.bins()),
        total_failure_rate=histogram.total_failure_rate(),
        max_concealed_reads=tracker.max_concealed_reads,
        tail_dominance=histogram.tail_dominance_ratio(),
        run=result,
    )


def build_figure3_all(
    workloads: Sequence[str] = FIGURE3_WORKLOADS,
    settings: ExperimentSettings | None = None,
) -> dict[str, Figure3Series]:
    """Reproduce all four Fig. 3 panels (or any chosen subset)."""
    return {
        name: build_figure3(name, settings=settings) for name in workloads
    }


# ---------------------------------------------------------------------------
# Fig. 5 — MTTF improvement
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure5Row:
    """One bar of Fig. 5."""

    workload: str
    mttf_improvement: float
    baseline_expected_failures: float
    reap_expected_failures: float
    max_concealed_reads: int


@dataclass(frozen=True)
class Figure5Data:
    """The full Fig. 5 series plus its summary statistics."""

    rows: tuple[Figure5Row, ...]
    average_improvement: float
    min_improvement: float
    max_improvement: float

    def row(self, workload: str) -> Figure5Row:
        """Return the row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise AnalysisError(f"workload {workload!r} not in Fig. 5 data")


def build_figure5(
    workloads: Sequence[str] | None = None,
    settings: ExperimentSettings | None = None,
) -> Figure5Data:
    """Reproduce Fig. 5: REAP MTTF normalised to the conventional cache."""
    names = list(workloads) if workloads is not None else [p.name for p in all_profiles()]
    runner = ExperimentRunner(
        names,
        settings=settings,
        baseline=ProtectionScheme.CONVENTIONAL,
        alternatives=(ProtectionScheme.REAP,),
    )
    comparisons = runner.run()
    rows = []
    for comparison in comparisons:
        rows.append(
            Figure5Row(
                workload=comparison.workload,
                mttf_improvement=comparison.mttf_improvement("reap"),
                baseline_expected_failures=comparison.baseline.expected_failures,
                reap_expected_failures=comparison.alternative("reap").expected_failures,
                max_concealed_reads=comparison.baseline.max_accumulated_reads,
            )
        )
    improvements = [r.mttf_improvement for r in rows]
    return Figure5Data(
        rows=tuple(rows),
        average_improvement=sum(improvements) / len(improvements),
        min_improvement=min(improvements),
        max_improvement=max(improvements),
    )


# ---------------------------------------------------------------------------
# Fig. 6 — dynamic energy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure6Row:
    """One bar of Fig. 6."""

    workload: str
    relative_dynamic_energy: float
    overhead_percent: float
    read_fraction: float
    hit_rate: float


@dataclass(frozen=True)
class Figure6Data:
    """The full Fig. 6 series plus its summary statistics."""

    rows: tuple[Figure6Row, ...]
    average_overhead_percent: float
    min_overhead_percent: float
    max_overhead_percent: float

    def row(self, workload: str) -> Figure6Row:
        """Return the row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise AnalysisError(f"workload {workload!r} not in Fig. 6 data")


def build_figure6(
    workloads: Sequence[str] | None = None,
    settings: ExperimentSettings | None = None,
) -> Figure6Data:
    """Reproduce Fig. 6: REAP dynamic energy normalised to the conventional cache."""
    names = list(workloads) if workloads is not None else [p.name for p in all_profiles()]
    runner = ExperimentRunner(
        names,
        settings=settings,
        baseline=ProtectionScheme.CONVENTIONAL,
        alternatives=(ProtectionScheme.REAP,),
    )
    comparisons = runner.run()
    rows = []
    for comparison in comparisons:
        rows.append(
            Figure6Row(
                workload=comparison.workload,
                relative_dynamic_energy=comparison.relative_dynamic_energy("reap"),
                overhead_percent=comparison.energy_overhead_percent("reap"),
                read_fraction=comparison.baseline.read_fraction,
                hit_rate=comparison.baseline.hit_rate,
            )
        )
    overheads = [r.overhead_percent for r in rows]
    return Figure6Data(
        rows=tuple(rows),
        average_overhead_percent=sum(overheads) / len(overheads),
        min_overhead_percent=min(overheads),
        max_overhead_percent=max(overheads),
    )


def comparisons_to_figure5(comparisons: Sequence[WorkloadComparison]) -> Figure5Data:
    """Build Fig. 5 data from pre-computed comparisons (avoids re-simulation)."""
    rows = tuple(
        Figure5Row(
            workload=c.workload,
            mttf_improvement=c.mttf_improvement("reap"),
            baseline_expected_failures=c.baseline.expected_failures,
            reap_expected_failures=c.alternative("reap").expected_failures,
            max_concealed_reads=c.baseline.max_accumulated_reads,
        )
        for c in comparisons
    )
    if not rows:
        raise AnalysisError("no comparisons supplied")
    improvements = [r.mttf_improvement for r in rows]
    return Figure5Data(
        rows=rows,
        average_improvement=sum(improvements) / len(improvements),
        min_improvement=min(improvements),
        max_improvement=max(improvements),
    )


def comparisons_to_figure6(comparisons: Sequence[WorkloadComparison]) -> Figure6Data:
    """Build Fig. 6 data from pre-computed comparisons (avoids re-simulation)."""
    rows = tuple(
        Figure6Row(
            workload=c.workload,
            relative_dynamic_energy=c.relative_dynamic_energy("reap"),
            overhead_percent=c.energy_overhead_percent("reap"),
            read_fraction=c.baseline.read_fraction,
            hit_rate=c.baseline.hit_rate,
        )
        for c in comparisons
    )
    if not rows:
        raise AnalysisError("no comparisons supplied")
    overheads = [r.overhead_percent for r in rows]
    return Figure6Data(
        rows=rows,
        average_overhead_percent=sum(overheads) / len(overheads),
        min_overhead_percent=min(overheads),
        max_overhead_percent=max(overheads),
    )
