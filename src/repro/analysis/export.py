"""CSV / JSON export of figure data and comparison results.

The figure builders return plain dataclasses; these helpers serialise them to
CSV (one row per bar / bin) and JSON so the series can be re-plotted with any
external tool, archived next to EXPERIMENTS.md, or diffed between runs.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import AnalysisError
from ..sim.results import SchemeRunResult, WorkloadComparison
from .figures import Figure3Series, Figure5Data, Figure6Data


def _write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return path


def figure3_to_csv(series: Figure3Series, path: str | Path) -> Path:
    """Write one Fig. 3 panel as CSV (one row per histogram bin)."""
    return _write_csv(
        path,
        ["workload", "concealed_reads", "accesses", "normalized_frequency", "failure_rate"],
        (
            [series.workload, b.concealed_reads, b.accesses, b.normalized_frequency, b.failure_rate]
            for b in series.bins
        ),
    )


def figure5_to_csv(data: Figure5Data, path: str | Path) -> Path:
    """Write the Fig. 5 series as CSV (one row per workload)."""
    return _write_csv(
        path,
        [
            "workload",
            "mttf_improvement",
            "baseline_expected_failures",
            "reap_expected_failures",
            "max_concealed_reads",
        ],
        (
            [
                r.workload,
                r.mttf_improvement,
                r.baseline_expected_failures,
                r.reap_expected_failures,
                r.max_concealed_reads,
            ]
            for r in data.rows
        ),
    )


def figure6_to_csv(data: Figure6Data, path: str | Path) -> Path:
    """Write the Fig. 6 series as CSV (one row per workload)."""
    return _write_csv(
        path,
        ["workload", "relative_dynamic_energy", "overhead_percent", "read_fraction", "hit_rate"],
        (
            [r.workload, r.relative_dynamic_energy, r.overhead_percent, r.read_fraction, r.hit_rate]
            for r in data.rows
        ),
    )


def _result_to_dict(result: SchemeRunResult) -> dict:
    data = asdict(result)
    data["extra"] = dict(result.extra)
    return data


def comparison_to_dict(comparison: WorkloadComparison) -> dict:
    """Serialise one workload comparison (baseline + alternatives + metrics)."""
    payload = {
        "workload": comparison.workload,
        "baseline": _result_to_dict(comparison.baseline),
        "alternatives": [_result_to_dict(r) for r in comparison.alternatives],
        "metrics": {},
    }
    for alternative in comparison.alternatives:
        payload["metrics"][alternative.scheme] = {
            "mttf_improvement": comparison.mttf_improvement(alternative.scheme),
            "relative_dynamic_energy": comparison.relative_dynamic_energy(alternative.scheme),
            "energy_overhead_percent": comparison.energy_overhead_percent(alternative.scheme),
        }
    return payload


def comparisons_to_json(
    comparisons: Sequence[WorkloadComparison], path: str | Path
) -> Path:
    """Write a list of workload comparisons to a JSON file."""
    if not comparisons:
        raise AnalysisError("no comparisons to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [comparison_to_dict(c) for c in comparisons]
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_comparisons_summary(path: str | Path) -> list[dict]:
    """Load the summary written by :func:`comparisons_to_json`."""
    return json.loads(Path(path).read_text())
