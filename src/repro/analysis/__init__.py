"""Figure/table builders and plain-text report rendering.

Public surface:

* Fig. 3 / Fig. 5 / Fig. 6 builders (:func:`build_figure3`,
  :func:`build_figure5`, :func:`build_figure6` and friends).
* Table I, area, latency and worked-example builders
  (:func:`build_table1`, :func:`build_area_table`, :func:`build_latency_table`,
  :func:`numeric_example`).
* text renderers (:func:`render_figure5`, ...).
"""

from .figures import (
    Figure3Series,
    Figure5Data,
    Figure5Row,
    Figure6Data,
    Figure6Row,
    build_figure3,
    build_figure3_all,
    build_figure5,
    build_figure6,
    comparisons_to_figure5,
    comparisons_to_figure6,
)
from .report import (
    render_area_report,
    render_figure3,
    render_figure5,
    render_figure6,
    render_latency_report,
    render_numeric_example,
    render_table1,
)
from .tables import (
    AreaOverheadReport,
    LatencyReport,
    NumericExample,
    Table1Row,
    build_area_table,
    build_latency_table,
    build_table1,
    numeric_example,
)

__all__ = [
    "Figure3Series",
    "Figure5Data",
    "Figure5Row",
    "Figure6Data",
    "Figure6Row",
    "build_figure3",
    "build_figure3_all",
    "build_figure5",
    "build_figure6",
    "comparisons_to_figure5",
    "comparisons_to_figure6",
    "Table1Row",
    "AreaOverheadReport",
    "LatencyReport",
    "NumericExample",
    "build_table1",
    "build_area_table",
    "build_latency_table",
    "numeric_example",
    "render_table1",
    "render_figure3",
    "render_figure5",
    "render_figure6",
    "render_area_report",
    "render_latency_report",
    "render_numeric_example",
]
