"""Plain-text report rendering for figures and tables.

The reproduction has no plotting dependency; these helpers turn the figure
and table data structures into the fixed-width text the benches, examples and
EXPERIMENTS.md use.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.results import format_table
from .figures import Figure3Series, Figure5Data, Figure6Data
from .tables import AreaOverheadReport, LatencyReport, NumericExample, Table1Row


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table I."""
    return format_table(
        ["Level", "Size (KiB)", "Ways", "Block (B)", "Write policy", "Technology"],
        [
            [r.level, r.size_kib, r.associativity, r.block_size_bytes, r.write_policy, r.technology]
            for r in rows
        ],
    )


def render_figure3(series: Figure3Series, max_rows: int = 25) -> str:
    """Render one Fig. 3 panel as a text table."""
    bins = list(series.bins)[:max_rows]
    table = format_table(
        ["Concealed reads", "Accesses", "Norm. frequency", "Failure rate"],
        [
            [round(b.concealed_reads, 1), b.accesses, b.normalized_frequency, b.failure_rate]
            for b in bins
        ],
    )
    summary = (
        f"workload={series.workload}  max_concealed={series.max_concealed_reads}  "
        f"total_failure_rate={series.total_failure_rate:.3e}  "
        f"tail_dominance={series.tail_dominance:.2%}"
    )
    return f"{summary}\n{table}"


def render_figure5(data: Figure5Data) -> str:
    """Render Fig. 5 as a text table."""
    table = format_table(
        ["Workload", "MTTF improvement (x)", "Max concealed reads"],
        [[r.workload, r.mttf_improvement, r.max_concealed_reads] for r in data.rows],
    )
    summary = (
        f"average={data.average_improvement:.1f}x  "
        f"min={data.min_improvement:.1f}x  max={data.max_improvement:.1f}x"
    )
    return f"{table}\n{summary}"


def render_figure6(data: Figure6Data) -> str:
    """Render Fig. 6 as a text table."""
    table = format_table(
        ["Workload", "Relative dynamic energy", "Overhead (%)", "Read fraction"],
        [
            [r.workload, r.relative_dynamic_energy, r.overhead_percent, r.read_fraction]
            for r in data.rows
        ],
    )
    summary = (
        f"average_overhead={data.average_overhead_percent:.2f}%  "
        f"min={data.min_overhead_percent:.2f}%  max={data.max_overhead_percent:.2f}%"
    )
    return f"{table}\n{summary}"


def render_area_report(report: AreaOverheadReport) -> str:
    """Render the Section V-B area argument."""
    return format_table(
        ["Metric", "Value"],
        [
            ["Conventional total area (mm^2)", report.conventional_total_mm2],
            ["REAP total area (mm^2)", report.reap_total_mm2],
            ["Single decoder share of cache", report.decoder_area_fraction],
            ["Decoders (conventional)", report.num_decoders_conventional],
            ["Decoders (REAP)", report.num_decoders_reap],
            ["Area overhead (%)", report.overhead_percent],
        ],
    )


def render_latency_report(report: LatencyReport) -> str:
    """Render the Section V-B access-time argument."""
    return format_table(
        ["Read path", "Read-hit latency (ns)"],
        [
            ["conventional (parallel)", report.conventional_ns],
            ["REAP", report.reap_ns],
            ["serial (tag first)", report.serial_ns],
        ],
    )


def render_numeric_example(example: NumericExample) -> str:
    """Render the Section III-B / IV worked example."""
    return format_table(
        ["Quantity", "Value"],
        [
            ["P_RD per cell", example.p_cell],
            ["ones in line", example.num_ones],
            ["reads between checks", example.num_reads],
            ["single-read failure (Eq. 4)", example.single_read_failure],
            ["accumulated failure (Eq. 5)", example.accumulated_failure],
            ["REAP failure (Sec. IV)", example.reap_failure],
            ["accumulation penalty (x)", example.accumulation_penalty],
            ["REAP gain vs accumulated (x)", example.reap_gain],
        ],
    )
