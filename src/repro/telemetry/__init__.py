"""Structured telemetry for every execution tier (:mod:`repro.telemetry`).

Zero-overhead-when-disabled counters, gauges and timed spans, emitted as
JSONL through pluggable sinks and aggregated offline by ``repro-reap stats``.
Activate with::

    from repro.telemetry import telemetry

    with telemetry("run.jsonl", campaign="sweep-1"):
        run_campaign(spec, store=store)   # kernels, jobs, workers all emit

See :mod:`repro.telemetry.core` for the event schema and design invariants
(telemetry observes — it never influences job identity or store bytes).
"""

from .core import (
    RESERVED_KEYS,
    FileSink,
    MemorySink,
    MultiSink,
    NullSink,
    Sink,
    Span,
    StderrSink,
    TelemetryError,
    TelemetrySession,
    activate,
    current,
    current_spec,
    emit_counter,
    emit_event,
    emit_gauge,
    enable_telemetry_for_process,
    enabled,
    read_events,
    span,
    telemetry,
)
from .progress import ProgressRenderer
from .stats import (
    CampaignStats,
    DistributedStats,
    SpanStats,
    TelemetryAggregator,
    TelemetryStats,
    aggregate_telemetry,
    load_telemetry_stats,
    render_telemetry_stats,
)

__all__ = [
    "RESERVED_KEYS",
    "Sink",
    "NullSink",
    "MemorySink",
    "FileSink",
    "StderrSink",
    "MultiSink",
    "Span",
    "TelemetryError",
    "TelemetrySession",
    "telemetry",
    "activate",
    "current",
    "current_spec",
    "enabled",
    "enable_telemetry_for_process",
    "emit_event",
    "emit_counter",
    "emit_gauge",
    "span",
    "read_events",
    "ProgressRenderer",
    "SpanStats",
    "CampaignStats",
    "DistributedStats",
    "TelemetryAggregator",
    "TelemetryStats",
    "aggregate_telemetry",
    "load_telemetry_stats",
    "render_telemetry_stats",
]
