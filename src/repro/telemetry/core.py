"""Structured telemetry: counters, gauges and timed spans over pluggable sinks.

The instrumentation layer every execution tier reports through.  Design
constraints, in order:

1. **Zero overhead when disabled.**  Telemetry is off by default; every
   emit helper starts with one :class:`~contextvars.ContextVar` load and a
   ``None`` check, and :func:`span` returns a shared no-op object without
   allocating.  Nothing is formatted, timestamped or serialised unless a
   session is active.  Instrumentation sits at *phase* granularity (one
   span per kernel pass, one event per job, one counter per protocol
   frame) — never inside per-access loops — so even an enabled session
   costs a vanishing fraction of a replay.
2. **Never part of results.**  Telemetry observes; it must not influence
   job identity, store bytes or the bit-identical engine guarantee.  The
   layer therefore exposes no hook by which simulation code could *read*
   telemetry state, and the zero-interference tests in
   ``tests/telemetry/test_zero_interference.py`` hold stores byte-identical
   with telemetry on and off.
3. **Scope-local, process-inheritable.**  :func:`telemetry` activates a
   session for a ``with`` scope through a contextvar — the same shape as
   :func:`repro.sim.engine.deduplicate_fallback_warnings` — so nested and
   concurrent scopes compose.  Campaign worker processes inherit the
   session through :func:`current_spec` + :func:`enable_telemetry_for_process`
   (the pool-initializer pair), and coordinator handler threads re-enter it
   through :func:`activate`.

Events are flat JSON objects, one per line (JSONL), with reserved keys:

========== =================================================================
key        meaning
========== =================================================================
``ts``     Unix timestamp (``time.time()``) at emission.
``kind``   ``"event"`` | ``"counter"`` | ``"gauge"`` | ``"span"``.
``name``   Dotted event name (``kernel.pass1``, ``coordinator.lease_grant``).
``value``  Number: the increment of a counter, the reading of a gauge.
``duration_s`` Span wall time in seconds (spans only).
``pid``    Emitting process id.
========== =================================================================

plus any keyword fields the emitting site attached (JSON scalars) and the
session's static context fields (e.g. ``worker="host-1234"``).  The file
sink appends each event as one ``O_APPEND`` write of one line, so any
number of worker processes can share a telemetry file the same way they
share a sharded result store.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

from ..errors import TelemetryError

#: Reserved top-level keys a site's keyword fields may not collide with.
RESERVED_KEYS = frozenset({"ts", "kind", "name", "value", "duration_s", "pid"})


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class Sink:
    """Where emitted events go.  Subclasses override :meth:`emit`.

    Attributes:
        spec: A serialisable description of this sink that rebuilds an
            equivalent sink in another process (``None`` when the sink is
            process-local, e.g. in-memory buffers or renderers).
    """

    spec: str | None = None

    def emit(self, event: dict[str, Any]) -> None:
        """Consume one event dictionary (already fully populated)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (idempotent; no-op by default)."""


class NullSink(Sink):
    """Discard every event (the conceptual default when telemetry is off)."""

    def emit(self, event: dict[str, Any]) -> None:
        pass


class MemorySink(Sink):
    """Buffer events in a list — the test and in-process aggregation sink."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(event)


class FileSink(Sink):
    """Append events to a JSONL file, one atomic ``O_APPEND`` write per line.

    Safe for concurrent writers (threads via an internal lock, processes
    via ``O_APPEND`` whole-line writes), exactly like the sharded result
    store's appends — a campaign's pool workers and its runner share one
    telemetry file without interleaving partial lines.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self.spec = str(self._path)
        self._lock = threading.Lock()
        self._fd = os.open(
            self._path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
        )

    @property
    def path(self) -> Path:
        """The JSONL file this sink appends to."""
        return self._path

    def emit(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            if self._fd >= 0:
                os.write(self._fd, line.encode("utf-8"))

    def close(self) -> None:
        with self._lock:
            if self._fd >= 0:
                os.close(self._fd)
                self._fd = -1


class StderrSink(Sink):
    """Write events as JSONL to stderr (ad-hoc debugging)."""

    spec = "stderr"

    def emit(self, event: dict[str, Any]) -> None:
        sys.stderr.write(json.dumps(event, separators=(",", ":"), default=str) + "\n")


class MultiSink(Sink):
    """Fan one event stream out to several sinks (file + live renderer).

    The inheritable :attr:`spec` is the first child's spec that has one, so
    worker processes rebuild the durable part (the file) and skip
    process-local children (renderers, memory buffers).
    """

    def __init__(self, sinks: list[Sink]) -> None:
        self._sinks = list(sinks)
        self.spec = next((s.spec for s in self._sinks if s.spec), None)

    def emit(self, event: dict[str, Any]) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


def _open_sink(target: str | Path | Sink) -> Sink:
    """Map a sink spelling to an instance: Sink, ``"stderr"``, or a path."""
    if isinstance(target, Sink):
        return target
    if target == "stderr":
        return StderrSink()
    if isinstance(target, (str, Path)):
        return FileSink(target)
    raise TelemetryError(
        f"unknown telemetry target {target!r}; pass a path, 'stderr', or a Sink"
    )


# ---------------------------------------------------------------------------
# Session and scope
# ---------------------------------------------------------------------------


class TelemetrySession:
    """An active telemetry scope: a sink plus static context fields."""

    __slots__ = ("sink", "context")

    def __init__(self, sink: Sink, context: dict[str, Any]) -> None:
        self.sink = sink
        self.context = context

    def emit(
        self,
        kind: str,
        name: str,
        value: float | None = None,
        duration_s: float | None = None,
        fields: dict[str, Any] | None = None,
    ) -> None:
        """Assemble and emit one event through the sink."""
        event: dict[str, Any] = {
            "ts": time.time(),
            "kind": kind,
            "name": name,
            "pid": os.getpid(),
        }
        if value is not None:
            event["value"] = value
        if duration_s is not None:
            event["duration_s"] = duration_s
        if self.context:
            event.update(self.context)
        if fields:
            event.update(fields)
        self.sink.emit(event)

    def close(self) -> None:
        self.sink.close()


#: The active session for the current context (``None`` = telemetry off).
_active: ContextVar[TelemetrySession | None] = ContextVar(
    "repro_telemetry_session", default=None
)


def current() -> TelemetrySession | None:
    """The active session in this context, or ``None`` when disabled."""
    return _active.get()


def enabled() -> bool:
    """Whether telemetry is active in this context."""
    return _active.get() is not None


def current_spec() -> str | None:
    """The inheritable sink spec of the active session (for worker processes).

    ``None`` when telemetry is off or the active sink is process-local
    (memory buffers, renderers), in which case workers run uninstrumented.
    """
    session = _active.get()
    return session.sink.spec if session is not None else None


@contextmanager
def telemetry(target: str | Path | Sink, **context: Any):
    """Activate telemetry for the scope of the ``with`` block.

    Args:
        target: Where events go — a JSONL file path, ``"stderr"``, or any
            :class:`Sink` instance (e.g. a :class:`MemorySink` in tests or
            a :class:`MultiSink` composing a file with a live renderer).
        **context: Static fields merged into every event emitted in the
            scope (e.g. ``campaign="p-cell-sweep"``, ``worker="host-1"``).

    Yields:
        The :class:`TelemetrySession`, whose sink the caller may inspect.

    The sink is closed when the scope exits, and the previous session (or
    none) is restored — scopes nest and compose with concurrent contexts
    exactly like the engine's warning-dedup scope.
    """
    session = TelemetrySession(_open_sink(target), dict(context))
    token = _active.set(session)
    try:
        yield session
    finally:
        _active.reset(token)
        session.close()


@contextmanager
def activate(session: TelemetrySession | None):
    """Re-enter an existing session in another thread's context.

    Threads start with an empty context, so a session activated in the main
    thread is invisible to, say, a coordinator's connection-handler thread.
    Objects that outlive their creating scope capture :func:`current` at
    construction and wrap their thread bodies in ``activate(captured)``;
    passing ``None`` is a cheap no-op so call sites need no branching.
    The session's sink is *not* closed on exit — the owning scope does that.
    """
    if session is None:
        yield
        return
    token = _active.set(session)
    try:
        yield
    finally:
        _active.reset(token)


def enable_telemetry_for_process(
    spec: str | None, **context: Any
) -> TelemetrySession | None:
    """Enable (or explicitly disable) telemetry for the rest of this process.

    The worker-process half of session inheritance: pool initializers call
    it with the parent's :func:`current_spec` — mirroring
    :func:`repro.sim.engine.enable_fallback_warning_dedup` — so jobs
    dispatched to the worker emit into the same telemetry file.  A ``None``
    spec *clears* any session a forked child inherited from its parent
    (process-local renderers must not run twice).
    """
    if spec is None:
        _active.set(None)
        return None
    session = TelemetrySession(_open_sink(spec), dict(context))
    _active.set(session)
    return session


# ---------------------------------------------------------------------------
# Emit helpers
# ---------------------------------------------------------------------------


def emit_event(name: str, **fields: Any) -> None:
    """Emit a point-in-time structured event (no value, no duration)."""
    session = _active.get()
    if session is not None:
        session.emit("event", name, fields=fields)


def emit_counter(name: str, value: float = 1, **fields: Any) -> None:
    """Emit a counter increment; aggregation sums ``value`` per name."""
    session = _active.get()
    if session is not None:
        session.emit("counter", name, value=value, fields=fields)


def emit_gauge(name: str, value: float, **fields: Any) -> None:
    """Emit a gauge reading; aggregation keeps the last/min/max per name."""
    session = _active.get()
    if session is not None:
        session.emit("gauge", name, value=value, fields=fields)


class Span:
    """A timed scope: measures always, emits only when a session is active.

    The measurement side is unconditional — two ``perf_counter`` calls —
    so call sites can *rely* on :attr:`duration_s` for their own reporting
    (``execute_payload`` returns it as the job elapsed) whether or not
    telemetry is on.  That is what lets one primitive replace the ad-hoc
    ``perf_counter`` pairs: the timing and the event are the same object.

    Usable as a context manager or, where ``with``-reindenting a long
    kernel would obscure the diff, via the explicit :meth:`start` /
    :meth:`finish` pair.
    """

    __slots__ = ("_session", "name", "fields", "_started", "duration_s")

    def __init__(
        self, session: TelemetrySession | None, name: str, fields: dict[str, Any]
    ) -> None:
        self._session = session
        self.name = name
        self.fields = fields
        self._started = 0.0
        self.duration_s = 0.0

    def add(self, **fields: Any) -> None:
        """Attach fields discovered mid-span (emitted at finish)."""
        self.fields.update(fields)

    def start(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def finish(self) -> None:
        self.duration_s = time.perf_counter() - self._started
        if self._session is not None:
            self._session.emit(
                "span", self.name, duration_s=self.duration_s, fields=self.fields
            )

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, *_exc_info) -> bool:
        self.finish()
        return False


def span(name: str, **fields: Any) -> Span:
    """Open a timed span named ``name`` with the given static fields.

    The span captures the active session at creation, so it emits correctly
    even if the scope is exited before the span finishes (and never emits
    when telemetry was off at creation — the common, zero-cost case aside
    from the two ``perf_counter`` reads).
    """
    return Span(_active.get(), name, fields)


# ---------------------------------------------------------------------------
# Reading events back
# ---------------------------------------------------------------------------


def read_events(path: str | Path) -> Iterator[dict[str, Any]]:
    """Iterate the events of a telemetry JSONL file, in file order.

    Blank lines are skipped and a truncated *final* line (a writer killed
    mid-append) is tolerated; a malformed line anywhere else raises
    :class:`TelemetryError`, since silent drops would skew aggregations.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise TelemetryError(f"cannot read telemetry file {path}: {exc}") from exc
    lines = raw.split(b"\n")
    # A file not ending in a newline has a (possibly truncated) tail entry.
    complete, tail = lines[:-1], lines[-1]
    for index, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            event = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TelemetryError(
                f"malformed telemetry line {index + 1} in {path}: {exc}"
            ) from exc
        if isinstance(event, dict):
            yield event
    if tail.strip():
        try:
            event = json.loads(tail.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return  # truncated tail: the writer died mid-append
        if isinstance(event, dict):
            yield event
