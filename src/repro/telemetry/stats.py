"""Offline aggregation of telemetry event streams (``repro-reap stats``).

Turns a JSONL telemetry file (or any iterable of event dicts) into the
rollups an operator actually wants: per-phase/per-scheme kernel time
breakdowns, campaign throughput and cache-hit ratios, engine-fallback
reasons, and distributed coordinator/worker health.  This is the offline
precursor to the ROADMAP's HTTP status API — the aggregation is pure and
incremental, so a live endpoint can reuse :class:`TelemetryAggregator`
verbatim over a tailing reader.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from .core import read_events

#: Span names that are kernel phases, in display (pipeline) order.
_PHASE_ORDER = (
    "kernel.segment",
    "kernel.decode",
    "kernel.l1_filter",
    "kernel.replay",
    "kernel.pass1",
    "kernel.pass2",
    "reference.replay",
)


@dataclass
class SpanStats:
    """Rollup of one span name (optionally per scheme): count and durations."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        self.min_s = min(self.min_s, duration_s)
        self.max_s = max(self.max_s, duration_s)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class CampaignStats:
    """Rollup of campaign-level job events and run spans."""

    runs: int = 0
    elapsed_s: float = 0.0
    jobs: int = 0
    executed: int = 0
    cached: int = 0
    accesses: int = 0
    job_elapsed_s: float = 0.0

    @property
    def cache_hit_ratio(self) -> float:
        return self.cached / self.jobs if self.jobs else 0.0

    @property
    def accesses_per_s(self) -> float:
        return self.accesses / self.job_elapsed_s if self.job_elapsed_s > 0 else 0.0


@dataclass
class DistributedStats:
    """Rollup of coordinator health events and wire-level frame counters."""

    lease_grants: int = 0
    lease_renewals: int = 0
    lease_expiries: int = 0
    requeues: int = 0
    results: int = 0
    errors: int = 0
    checkpoints: int = 0
    reconnects: int = 0
    poisoned: int = 0
    auth_rejects: int = 0
    frame_rejects: int = 0
    workers: set[str] = field(default_factory=set)
    lost_workers: set[str] = field(default_factory=set)
    frames: dict[str, int] = field(default_factory=dict)
    bytes: dict[str, int] = field(default_factory=dict)
    worker_elapsed_s: float = 0.0
    observed_elapsed_s: float = 0.0

    @property
    def seen(self) -> bool:
        return bool(
            self.lease_grants
            or self.results
            or self.frames
            or self.workers
        )

    @property
    def dispatch_overhead_s(self) -> float:
        """Coordinator-observed time minus worker-reported compute time."""
        return max(0.0, self.observed_elapsed_s - self.worker_elapsed_s)


@dataclass
class ArtifactCacheStats:
    """Rollup of artifact-cache counters (``cache.artifact`` emits)."""

    #: (artifact kind, outcome) -> emit count.
    counts: dict[tuple[str, str], int] = field(default_factory=dict)
    #: (artifact kind, outcome) -> summed payload bytes.
    bytes: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def seen(self) -> bool:
        return bool(self.counts)

    def _outcome_total(self, outcome: str) -> int:
        return sum(
            count for (_, out), count in self.counts.items() if out == outcome
        )

    @property
    def hits(self) -> int:
        return self._outcome_total("hit")

    @property
    def misses(self) -> int:
        """Lookups that found nothing (unreadable artifacts count too)."""
        return self._outcome_total("miss") + self._outcome_total("error")

    @property
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @property
    def bytes_saved(self) -> int:
        """Artifact bytes served from the cache instead of being recomputed."""
        return sum(
            total for (_, out), total in self.bytes.items() if out == "hit"
        )


@dataclass
class TelemetryStats:
    """Everything :func:`aggregate_telemetry` extracts from an event stream."""

    total_events: int = 0
    #: (span name, scheme or "") -> rollup, schemes taken from span fields.
    spans: dict[tuple[str, str], SpanStats] = field(default_factory=dict)
    #: counter name -> (emit count, summed value).
    counters: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: gauge name -> (emit count, last value, min, max).
    gauges: dict[str, tuple[int, float, float, float]] = field(default_factory=dict)
    #: (engine, kernel) label -> selection count, from ``sim.engine`` events.
    engine_selections: dict[str, int] = field(default_factory=dict)
    #: fallback reason -> occurrence count, from ``engine.fallback`` events.
    fallbacks: dict[str, int] = field(default_factory=dict)
    campaign: CampaignStats = field(default_factory=CampaignStats)
    distributed: DistributedStats = field(default_factory=DistributedStats)
    artifact_cache: ArtifactCacheStats = field(default_factory=ArtifactCacheStats)


class TelemetryAggregator:
    """Incrementally fold telemetry events into :class:`TelemetryStats`."""

    def __init__(self) -> None:
        self.stats = TelemetryStats()

    def add(self, event: Mapping[str, Any]) -> None:
        """Fold one event dict into the running stats (unknown kinds ignored)."""
        stats = self.stats
        stats.total_events += 1
        kind = event.get("kind")
        name = str(event.get("name", ""))
        if kind == "span":
            duration = float(event.get("duration_s", 0.0))
            scheme = str(event.get("scheme", "") or "")
            key = (name, scheme)
            rollup = stats.spans.get(key)
            if rollup is None:
                rollup = stats.spans[key] = SpanStats()
            rollup.add(duration)
            self._fold_span(name, event, duration)
        elif kind == "counter":
            value = float(event.get("value", 1))
            count, total = stats.counters.get(name, (0, 0.0))
            stats.counters[name] = (count + 1, total + value)
            self._fold_counter(name, event, value)
        elif kind == "gauge":
            value = float(event.get("value", 0.0))
            count, _last, lo, hi = stats.gauges.get(
                name, (0, value, value, value)
            )
            stats.gauges[name] = (count + 1, value, min(lo, value), max(hi, value))
        elif kind == "event":
            self._fold_event(name, event)

    def add_all(self, events: Iterable[Mapping[str, Any]]) -> "TelemetryAggregator":
        for event in events:
            self.add(event)
        return self

    # -- per-name folds ----------------------------------------------------

    def _fold_span(
        self, name: str, event: Mapping[str, Any], duration: float
    ) -> None:
        campaign = self.stats.campaign
        if name == "campaign.run":
            campaign.runs += 1
            campaign.elapsed_s += duration
        elif name == "job.execute":
            campaign.job_elapsed_s += duration
            campaign.accesses += int(event.get("accesses", 0) or 0)

    def _fold_counter(
        self, name: str, event: Mapping[str, Any], value: float
    ) -> None:
        if name == "net.frame":
            distributed = self.stats.distributed
            direction = str(event.get("direction", "?"))
            distributed.frames[direction] = distributed.frames.get(direction, 0) + 1
            distributed.bytes[direction] = distributed.bytes.get(
                direction, 0
            ) + int(value)
        elif name == "cache.artifact":
            artifact = self.stats.artifact_cache
            key = (
                str(event.get("artifact", "?")),
                str(event.get("outcome", "?")),
            )
            artifact.counts[key] = artifact.counts.get(key, 0) + 1
            artifact.bytes[key] = artifact.bytes.get(key, 0) + int(
                event.get("bytes", 0) or 0
            )

    def _fold_event(self, name: str, event: Mapping[str, Any]) -> None:
        stats = self.stats
        if name == "sim.engine":
            engine = str(event.get("engine", "?"))
            kernel = event.get("kernel")
            label = f"{engine}/{kernel}" if kernel else engine
            stats.engine_selections[label] = stats.engine_selections.get(label, 0) + 1
        elif name == "engine.fallback":
            reason = str(event.get("reason", "unspecified"))
            stats.fallbacks[reason] = stats.fallbacks.get(reason, 0) + 1
        elif name == "campaign.job":
            stats.campaign.jobs += 1
            if event.get("cached"):
                stats.campaign.cached += 1
            else:
                stats.campaign.executed += 1
        elif name == "worker.reconnect":
            stats.distributed.reconnects += 1
            worker = event.get("worker")
            if worker:
                stats.distributed.workers.add(str(worker))
        elif name == "job.poisoned":
            stats.distributed.poisoned += 1
        elif name.startswith("coordinator."):
            self._fold_coordinator(name, event)

    def _fold_coordinator(self, name: str, event: Mapping[str, Any]) -> None:
        distributed = self.stats.distributed
        worker = event.get("worker")
        if worker:
            distributed.workers.add(str(worker))
        if name == "coordinator.lease_grant":
            distributed.lease_grants += 1
        elif name == "coordinator.lease_renew":
            distributed.lease_renewals += 1
        elif name == "coordinator.lease_expire":
            distributed.lease_expiries += 1
            distributed.requeues += 1
            if worker:
                distributed.lost_workers.add(str(worker))
        elif name == "coordinator.result":
            distributed.results += 1
            distributed.worker_elapsed_s += float(
                event.get("worker_elapsed_s", 0.0) or 0.0
            )
            distributed.observed_elapsed_s += float(
                event.get("observed_elapsed_s", 0.0) or 0.0
            )
        elif name == "coordinator.error":
            distributed.errors += 1
        elif name == "coordinator.checkpoint":
            distributed.checkpoints += 1
        elif name == "coordinator.auth_reject":
            distributed.auth_rejects += 1
        elif name == "coordinator.frame_reject":
            distributed.frame_rejects += 1


def aggregate_telemetry(events: Iterable[Mapping[str, Any]]) -> TelemetryStats:
    """Aggregate an iterable of event dicts into :class:`TelemetryStats`."""
    return TelemetryAggregator().add_all(events).stats


def load_telemetry_stats(path: str | Path) -> TelemetryStats:
    """Read a telemetry JSONL file and aggregate it in one pass."""
    return aggregate_telemetry(read_events(path))


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _span_sort_key(item: tuple[tuple[str, str], SpanStats]) -> tuple[int, str, str]:
    (name, scheme), _ = item
    try:
        order = _PHASE_ORDER.index(name)
    except ValueError:
        order = len(_PHASE_ORDER)
    return (order, name, scheme)


def render_telemetry_stats(stats: TelemetryStats) -> str:
    """Render aggregated telemetry as fixed-width text report sections."""
    # Imported here so the instrumented simulation modules can import
    # repro.telemetry without pulling in (or cycling with) repro.sim.
    from ..sim.results import format_table

    sections: list[str] = [f"telemetry: {stats.total_events} events"]

    phase_rows = [
        [name, scheme or "-", s.count, s.total_s, s.mean_s * 1e3, s.max_s * 1e3]
        for (name, scheme), s in sorted(stats.spans.items(), key=_span_sort_key)
        if name != "campaign.run"
    ]
    if phase_rows:
        sections.append(
            "phase timings\n"
            + format_table(
                ["span", "scheme", "count", "total s", "mean ms", "max ms"],
                phase_rows,
            )
        )

    campaign = stats.campaign
    if campaign.jobs or campaign.runs:
        rows = [
            ["campaign runs", campaign.runs],
            ["wall elapsed s", campaign.elapsed_s],
            ["jobs", campaign.jobs],
            ["executed", campaign.executed],
            ["cached", campaign.cached],
            ["cache-hit ratio", campaign.cache_hit_ratio],
            ["job compute s", campaign.job_elapsed_s],
            ["accesses", campaign.accesses],
            ["accesses/s", campaign.accesses_per_s],
        ]
        sections.append("campaign\n" + format_table(["metric", "value"], rows))

    if stats.engine_selections:
        rows = [
            [label, count]
            for label, count in sorted(stats.engine_selections.items())
        ]
        sections.append(
            "engine selections\n" + format_table(["engine/kernel", "runs"], rows)
        )

    if stats.fallbacks:
        rows = [
            [reason, count]
            for reason, count in sorted(
                stats.fallbacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        sections.append(
            "engine fallbacks\n" + format_table(["reason", "count"], rows)
        )

    distributed = stats.distributed
    if distributed.seen:
        rows = [
            ["workers seen", len(distributed.workers)],
            ["workers lost", len(distributed.lost_workers)],
            ["lease grants", distributed.lease_grants],
            ["lease renewals", distributed.lease_renewals],
            ["lease expiries (requeued)", distributed.lease_expiries],
            ["results", distributed.results],
            ["errors", distributed.errors],
            ["worker compute s", distributed.worker_elapsed_s],
            ["coordinator-observed s", distributed.observed_elapsed_s],
            ["dispatch overhead s", distributed.dispatch_overhead_s],
        ]
        # Robustness counters only appear when the feature fired, so a
        # healthy trusted-network run renders exactly as before.
        if distributed.checkpoints:
            rows.append(["checkpoints written", distributed.checkpoints])
        if distributed.reconnects:
            rows.append(["worker reconnect attempts", distributed.reconnects])
        if distributed.poisoned:
            rows.append(["jobs quarantined (poisoned)", distributed.poisoned])
        if distributed.auth_rejects:
            rows.append(["frames rejected (auth)", distributed.auth_rejects])
        if distributed.frame_rejects:
            rows.append(["frames rejected (malformed)", distributed.frame_rejects])
        for direction in sorted(distributed.frames):
            rows.append(
                [
                    f"frames {direction}",
                    f"{distributed.frames[direction]} "
                    f"({distributed.bytes.get(direction, 0)} bytes)",
                ]
            )
        sections.append(
            "distributed health\n" + format_table(["metric", "value"], rows)
        )

    artifact = stats.artifact_cache
    if artifact.seen:
        rows = [
            ["hits", artifact.hits],
            ["misses", artifact.misses],
            ["hit ratio", artifact.hit_ratio],
            ["bytes saved", artifact.bytes_saved],
        ]
        for (kind, outcome), count in sorted(artifact.counts.items()):
            rows.append(
                [
                    f"{kind} {outcome}",
                    f"{count} ({artifact.bytes.get((kind, outcome), 0)} bytes)",
                ]
            )
        sections.append(
            "artifact cache\n" + format_table(["metric", "value"], rows)
        )

    other_counters = {
        name: (count, total)
        for name, (count, total) in stats.counters.items()
        if name not in ("net.frame", "cache.artifact")
    }
    if other_counters:
        rows = [
            [name, count, total]
            for name, (count, total) in sorted(other_counters.items())
        ]
        sections.append(
            "counters\n" + format_table(["counter", "emits", "sum"], rows)
        )

    if stats.gauges:
        rows = [
            [name, count, last, lo, hi]
            for name, (count, last, lo, hi) in sorted(stats.gauges.items())
        ]
        sections.append(
            "gauges\n" + format_table(["gauge", "emits", "last", "min", "max"], rows)
        )

    return "\n\n".join(sections)
