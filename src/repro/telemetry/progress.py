"""Telemetry-driven campaign progress rendering for the CLI.

:class:`ProgressRenderer` is a process-local :class:`~repro.telemetry.core.Sink`
that turns the campaign's own event stream (``campaign.job`` events and the
closing ``campaign.run`` span) into stderr progress output.  The CLI composes
it with a :class:`~repro.telemetry.core.FileSink` through a ``MultiSink``, so
"what the operator watches" and "what lands in the telemetry file" are the
same events — there is no separate progress code path to drift.

Two modes:

* line-per-job (default): one completed-job line per event, matching the old
  ``print()`` callback's output shape.
* live (``--progress``): a single carriage-return-refreshed status line with
  job counts, cache hits, throughput and elapsed time, finalised with a
  newline when the run span closes.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

from .core import Sink


def _format_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}M/s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k/s"
    return f"{value:.0f}/s"


class ProgressRenderer(Sink):
    """Render campaign progress to a terminal from telemetry events.

    Args:
        total: Total jobs the campaign will report, for ``done/total``
            counters (``None`` renders counts without a denominator).
        live: Refresh a single ``\\r`` status line instead of printing one
            line per job.
        stream: Output stream (default stderr, keeping stdout clean for the
            campaign summary tables).

    The renderer is intentionally process-local (``spec`` stays ``None``):
    worker processes inherit only the durable file sink, so progress is
    drawn exactly once, by the process driving the campaign.
    """

    def __init__(
        self,
        total: int | None = None,
        live: bool = False,
        stream: TextIO | None = None,
    ) -> None:
        self.total = total
        self.live = live
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self.cached = 0
        self.accesses = 0
        self.compute_s = 0.0
        self._started = time.perf_counter()
        self._line_open = False

    def emit(self, event: dict[str, Any]) -> None:
        name = event.get("name")
        if name == "campaign.job":
            self._on_job(event)
        elif name == "campaign.run" and event.get("kind") == "span":
            self._on_run_end(event)

    # -- event handlers ----------------------------------------------------

    def _on_job(self, event: dict[str, Any]) -> None:
        self.done += 1
        cached = bool(event.get("cached"))
        if cached:
            self.cached += 1
        self.accesses += int(event.get("accesses", 0) or 0)
        self.compute_s += float(event.get("elapsed_s", 0.0) or 0.0)
        if self.live:
            self._draw_live()
        else:
            status = (
                "cached"
                if cached
                else f"ran in {float(event.get('elapsed_s', 0.0) or 0.0):.2f}s"
            )
            workload = event.get("workload", "?")
            point = event.get("point", "")
            label = f"{workload} @ {point}" if point else str(workload)
            self.stream.write(f"  [{label}] {status}\n")
            self.stream.flush()

    def _on_run_end(self, event: dict[str, Any]) -> None:
        if self.live:
            self._draw_live()
            self._end_line()
        duration = float(event.get("duration_s", 0.0) or 0.0)
        executed = self.done - self.cached
        self.stream.write(
            f"campaign finished: {self.done} jobs "
            f"({executed} executed, {self.cached} cached) in {duration:.2f}s\n"
        )
        self.stream.flush()

    # -- drawing -----------------------------------------------------------

    def _draw_live(self) -> None:
        elapsed = time.perf_counter() - self._started
        denominator = f"/{self.total}" if self.total is not None else ""
        rate = self.accesses / self.compute_s if self.compute_s > 0 else 0.0
        line = (
            f"\r  jobs {self.done}{denominator}"
            f" · {self.cached} cached"
            f" · {_format_rate(rate)} accesses"
            f" · {elapsed:.1f}s"
        )
        self.stream.write(line.ljust(64))
        self.stream.flush()
        self._line_open = True

    def _end_line(self) -> None:
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    def close(self) -> None:
        self._end_line()
