"""Unit helpers and physical constants used across the library.

The library keeps all internal quantities in SI base units (seconds, amperes,
joules, square metres) and uses these helpers at API boundaries so that a
configuration can be written in the units the paper uses (nanoseconds,
microamperes, picojoules, KB/MB, ...) without sprinkling conversion factors
through the code.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9
PICOSECOND = 1e-12

HOUR = 3600.0
DAY = 24.0 * HOUR
YEAR = 365.25 * DAY


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANOSECOND


def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * PICOSECOND


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICROSECOND


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NANOSECOND


def seconds_to_years(seconds: float) -> float:
    """Convert seconds to (Julian) years, the customary MTTF unit."""
    return seconds / YEAR


# ---------------------------------------------------------------------------
# Current
# ---------------------------------------------------------------------------

AMPERE = 1.0
MILLIAMPERE = 1e-3
MICROAMPERE = 1e-6
NANOAMPERE = 1e-9


def ua(value: float) -> float:
    """Convert microamperes to amperes."""
    return value * MICROAMPERE


def to_ua(amps: float) -> float:
    """Convert amperes to microamperes."""
    return amps / MICROAMPERE


# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------

JOULE = 1.0
MILLIJOULE = 1e-3
MICROJOULE = 1e-6
NANOJOULE = 1e-9
PICOJOULE = 1e-12
FEMTOJOULE = 1e-15


def pj(value: float) -> float:
    """Convert picojoules to joules."""
    return value * PICOJOULE


def nj(value: float) -> float:
    """Convert nanojoules to joules."""
    return value * NANOJOULE


def fj(value: float) -> float:
    """Convert femtojoules to joules."""
    return value * FEMTOJOULE


def to_pj(joules: float) -> float:
    """Convert joules to picojoules."""
    return joules / PICOJOULE


def to_nj(joules: float) -> float:
    """Convert joules to nanojoules."""
    return joules / NANOJOULE


# ---------------------------------------------------------------------------
# Power
# ---------------------------------------------------------------------------

WATT = 1.0
MILLIWATT = 1e-3
MICROWATT = 1e-6
NANOWATT = 1e-9


def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * MILLIWATT


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts / MILLIWATT


# ---------------------------------------------------------------------------
# Area
# ---------------------------------------------------------------------------

SQUARE_METRE = 1.0
SQUARE_MILLIMETRE = 1e-6
SQUARE_MICROMETRE = 1e-12
SQUARE_NANOMETRE = 1e-18


def mm2(value: float) -> float:
    """Convert square millimetres to square metres."""
    return value * SQUARE_MILLIMETRE


def um2(value: float) -> float:
    """Convert square micrometres to square metres."""
    return value * SQUARE_MICROMETRE


def to_mm2(square_metres: float) -> float:
    """Convert square metres to square millimetres."""
    return square_metres / SQUARE_MILLIMETRE


def to_um2(square_metres: float) -> float:
    """Convert square metres to square micrometres."""
    return square_metres / SQUARE_MICROMETRE


# ---------------------------------------------------------------------------
# Capacity
# ---------------------------------------------------------------------------

BYTE = 1
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def kib(value: int) -> int:
    """Convert KiB (the paper's "KB") to bytes."""
    return value * KIB


def mib(value: int) -> int:
    """Convert MiB (the paper's "MB") to bytes."""
    return value * MIB


def to_kib(num_bytes: int) -> float:
    """Convert bytes to KiB."""
    return num_bytes / KIB


def to_mib(num_bytes: int) -> float:
    """Convert bytes to MiB."""
    return num_bytes / MIB


# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------

BOLTZMANN_CONSTANT = 1.380649e-23
"""Boltzmann constant in J/K."""

ROOM_TEMPERATURE_K = 300.0
"""Nominal operating temperature in kelvin used by the MTJ models."""


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return ``log2(value)`` for an exact power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
