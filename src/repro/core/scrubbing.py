"""Patrol-scrubbing baseline: a conventional cache plus a background scrubber.

A natural alternative to REAP that keeps the single-decoder read path intact:
a patrol scrubber walks the cache in the background, reading one line at a
time through the ECC decoder and writing back the corrected value.  Scrubbing
*bounds* the accumulation window (a line can accumulate at most the number of
concealed reads that fit between two scrub visits) but does not eliminate it,
and the scrubber itself consumes read/decode energy proportional to its rate.

This scheme is an extension beyond the paper's own evaluation; it is used by
the ablation benches to show that even an aggressive scrubber sits between
the conventional cache and REAP on reliability while adding an energy cost
REAP does not pay.
"""

from __future__ import annotations

from ..config import CacheLevelConfig, MTJConfig, ReadPathMode
from ..errors import ConfigurationError
from .data_profile import DataValueProfile
from .engine import DeliveryOutcome
from .protected import ProtectedCache


class ScrubbingCache(ProtectedCache):
    """Conventional parallel-access cache with a round-robin patrol scrubber."""

    def __init__(
        self,
        config: CacheLevelConfig,
        mtj: MTJConfig | None = None,
        p_cell: float | None = None,
        data_profile: DataValueProfile | None = None,
        seed: int = 1,
        track_accumulation: bool = True,
        count_writeback_checks: bool = False,
        scrub_lines_per_access: float = 1.0,
    ) -> None:
        """Create the scrubbing baseline.

        Args:
            scrub_lines_per_access: How many resident lines the patrol
                scrubber visits per demand access (fractional rates are
                accumulated; e.g. ``0.25`` scrubs one line every four
                accesses).  Higher rates bound accumulation more tightly but
                cost proportionally more read/decode energy.

        See :class:`ProtectedCache` for the remaining arguments.
        """
        if scrub_lines_per_access < 0:
            raise ConfigurationError("scrub_lines_per_access must be non-negative")
        super().__init__(
            config=config,
            mtj=mtj,
            p_cell=p_cell,
            data_profile=data_profile,
            seed=seed,
            track_accumulation=track_accumulation,
            count_writeback_checks=count_writeback_checks,
        )
        self._scrub_rate = scrub_lines_per_access
        self._scrub_credit = 0.0
        self._scrub_cursor = 0
        self._scrubbed_lines = 0

    @classmethod
    def read_path_mode(cls) -> ReadPathMode:
        """The demand path is the conventional parallel organisation."""
        return ReadPathMode.PARALLEL

    @classmethod
    def scheme_name(cls) -> str:
        """Scheme name used in reports and figures."""
        return "scrubbing"

    # -- scheme-specific behaviour ------------------------------------------------

    @property
    def scrub_rate(self) -> float:
        """Configured scrub rate in lines per demand access."""
        return self._scrub_rate

    @property
    def scrubbed_lines(self) -> int:
        """Total patrol-scrub visits performed."""
        return self._scrubbed_lines

    def export_scrub_state(self) -> tuple[float, int, int]:
        """Snapshot the patrol state as ``(credit, cursor, scrubbed_lines)``.

        Public hook for the batched engines in :mod:`repro.sim.fastpath` and
        :mod:`repro.sim.soa`, which advance the patrol scrubber inside their
        replay loops and hand the state back with :meth:`import_scrub_state`.
        """
        return self._scrub_credit, self._scrub_cursor, self._scrubbed_lines

    def patrol_walk_state(self) -> tuple[float, int, int, int]:
        """Everything an engine-side patrol replay needs to start walking.

        Returns:
            ``(credit, cursor, scrubbed_lines, total_frames)`` — the exported
            patrol state plus the frame count of the round-robin walk.  The
            credit arithmetic the replay must reproduce is exactly
            :meth:`_advance_scrubber`'s: add :attr:`scrub_rate` once per
            demand access, then visit (and decrement) while the credit is at
            least one line.
        """
        credit, cursor, scrubbed = self.export_scrub_state()
        return credit, cursor, scrubbed, self._cache.num_sets * self._cache.associativity

    def import_scrub_state(
        self, credit: float, cursor: int, scrubbed_lines: int
    ) -> None:
        """Restore a patrol-state snapshot taken by :meth:`export_scrub_state`.

        Raises:
            ConfigurationError: if any component is out of range.
        """
        total_frames = self._cache.num_sets * self._cache.associativity
        if credit < 0:
            raise ConfigurationError("scrub credit must be non-negative")
        if not 0 <= cursor < total_frames:
            raise ConfigurationError(f"scrub cursor {cursor} out of range")
        if scrubbed_lines < 0:
            raise ConfigurationError("scrubbed_lines must be non-negative")
        self._scrub_credit = credit
        self._scrub_cursor = cursor
        self._scrubbed_lines = scrubbed_lines

    def _deliver(self, block) -> DeliveryOutcome:
        """Deliveries pay for whatever accumulation survived between scrubs."""
        return self._engine.on_conventional_delivery(block, tick=self._tick)

    def read(self, address: int) -> DeliveryOutcome | None:
        """Demand read followed by the patrol scrubber's share of work."""
        outcome = super().read(address)
        self._advance_scrubber()
        return outcome

    def write(self, address: int) -> None:
        """Demand write followed by the patrol scrubber's share of work."""
        super().write(address)
        self._advance_scrubber()

    # -- internals -----------------------------------------------------------------

    def _advance_scrubber(self) -> None:
        self._scrub_credit += self._scrub_rate
        while self._scrub_credit >= 1.0:
            self._scrub_credit -= 1.0
            self._scrub_one_line()

    def _scrub_one_line(self) -> None:
        """Visit the next resident line in set/way round-robin order."""
        total_frames = self._cache.num_sets * self._cache.associativity
        for _ in range(total_frames):
            frame = self._scrub_cursor
            self._scrub_cursor = (self._scrub_cursor + 1) % total_frames
            set_index, way = divmod(frame, self._cache.associativity)
            block = self._cache.cache_set(set_index).block(way)
            if block.valid:
                self._engine.on_scrub_read(block, tick=self._tick)
                self._energy.record_read_access(ways_read=1, ecc_decodes=1)
                self._scrubbed_lines += 1
                return
