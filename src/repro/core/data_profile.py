"""Data-value profile: how many '1' cells a freshly written block holds.

Read disturbance is unidirectional — only cells storing '1' can flip — so the
reliability of a block depends on its *ones count*.  The simulator does not
track actual 64-byte data values; instead, every fill or overwrite samples a
ones count from a :class:`DataValueProfile`.

The default profile centres on ~20% ones (about 100 of 512 bits), matching
the paper's Section III-B worked example; real data skews toward zeros
because of small integers, pointers with common prefixes, and padding.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


class DataValueProfile:
    """Samples per-block ones counts from a clipped-normal + binomial model."""

    def __init__(
        self,
        block_bits: int = 512,
        ones_fraction_mean: float = 0.2,
        ones_fraction_std: float = 0.05,
        seed: int = 1,
    ) -> None:
        """Create a profile.

        Args:
            block_bits: Data bits per block (512 for 64-byte blocks).
            ones_fraction_mean: Mean fraction of '1' cells per block.
            ones_fraction_std: Standard deviation of the per-block fraction;
                zero makes every block identical.
            seed: Seed of the internal random generator.
        """
        if block_bits <= 0:
            raise ConfigurationError("block_bits must be positive")
        if not 0.0 <= ones_fraction_mean <= 1.0:
            raise ConfigurationError("ones_fraction_mean must be in [0, 1]")
        if ones_fraction_std < 0.0:
            raise ConfigurationError("ones_fraction_std must be non-negative")
        self._block_bits = block_bits
        self._mean = ones_fraction_mean
        self._std = ones_fraction_std
        self._rng = np.random.default_rng(seed)

    @property
    def block_bits(self) -> int:
        """Data bits per block."""
        return self._block_bits

    @property
    def mean_ones(self) -> float:
        """Expected ones count of a sampled block."""
        return self._mean * self._block_bits

    def sample(self) -> int:
        """Sample the ones count of one block."""
        if self._std == 0.0:
            fraction = self._mean
        else:
            fraction = self._rng.normal(self._mean, self._std)
            if fraction < 0.0:
                fraction = 0.0
            elif fraction > 1.0:
                fraction = 1.0
        return int(self._rng.binomial(self._block_bits, fraction))

    def sample_many(self, count: int) -> np.ndarray:
        """Sample ``count`` ones counts at once.

        Draws stay interleaved exactly as ``count`` :meth:`sample` calls
        (normal, binomial, normal, binomial, ...) so batched and per-fill
        sampling consume the generator identically — this is what keeps the
        batched engines bit-identical to the reference loop.  The loop is
        hand-localised because fills call this on the hot path.
        """
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        out = np.empty(count, dtype=np.int64)
        normal = self._rng.normal
        binomial = self._rng.binomial
        mean = self._mean
        std = self._std
        bits = self._block_bits
        if std == 0.0:
            for index in range(count):
                out[index] = binomial(bits, mean)
        else:
            for index in range(count):
                fraction = normal(mean, std)
                if fraction < 0.0:
                    fraction = 0.0
                elif fraction > 1.0:
                    fraction = 1.0
                out[index] = binomial(bits, fraction)
        return out

    @classmethod
    def constant(cls, ones_count: int, block_bits: int = 512) -> "DataValueProfile":
        """A degenerate profile where every block holds exactly ``ones_count`` ones.

        Useful for pinning experiments to the paper's 100-of-512 example.
        """
        if not 0 <= ones_count <= block_bits:
            raise ConfigurationError("ones_count must be within the block width")
        profile = cls(
            block_bits=block_bits,
            ones_fraction_mean=ones_count / block_bits,
            ones_fraction_std=0.0,
        )
        # Replace the stochastic samplers with exact constants.  Neither
        # touches the generator, so per-sample and batched draws stay
        # interchangeable.
        profile.sample = lambda: ones_count  # type: ignore[method-assign]
        profile.sample_many = (  # type: ignore[method-assign]
            lambda count: np.full(count, ones_count, dtype=np.int64)
        )
        return profile
