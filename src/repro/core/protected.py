"""Protected L2 cache: the common machinery of all protection schemes.

:class:`ProtectedCache` composes the functional cache substrate
(:class:`repro.cache.SetAssociativeCache`), a read-path organisation, the ECC
scheme, the reliability engine, and the energy accountant into a single
object implementing the :class:`repro.cache.NextLevel` protocol — i.e. it can
be plugged directly under the :class:`repro.cache.CacheHierarchy` front end
or driven with a raw L2 access stream.

Concrete schemes (conventional, REAP, serial, restore) differ only in their
read-path mode and in how a demand delivery is charged against the
reliability model; they implement the two small hooks at the bottom of the
class.
"""

from __future__ import annotations

import abc
from dataclasses import replace

from ..cache import SetAssociativeCache
from ..cache.cache_set import CacheSet
from ..cache.readpath import ReadPathEvents, build_read_path
from ..cache.statistics import CacheStatistics, ReliabilityStatistics
from ..config import CacheLevelConfig, MTJConfig, ReadPathMode
from ..ecc import ECCScheme, build_ecc_scheme
from ..energy import EnergyAccountant, EnergyTotals, NVSimLikeModel
from ..errors import ConfigurationError
from ..mram import ReadDisturbanceModel
from ..reliability import AccumulationTracker, MTTFResult
from .data_profile import DataValueProfile
from .engine import DeliveryOutcome, ReliabilityEngine


class ProtectedCache(abc.ABC):
    """Base class of the ECC-protected STT-MRAM L2 cache models."""

    def __init__(
        self,
        config: CacheLevelConfig,
        mtj: MTJConfig | None = None,
        p_cell: float | None = None,
        data_profile: DataValueProfile | None = None,
        seed: int = 1,
        track_accumulation: bool = True,
        count_writeback_checks: bool = False,
    ) -> None:
        """Create a protected cache.

        Args:
            config: L2 geometry and ECC configuration.  The ``read_path``
                field is overridden by the concrete scheme.
            mtj: MTJ operating point; used to derive the per-read disturbance
                probability when ``p_cell`` is not given.
            p_cell: Per-read, per-cell disturbance probability override
                (handy for pinning experiments to e.g. 1e-8).
            data_profile: Ones-count sampler for filled/written blocks.
            seed: Seed forwarded to the substrate and the data profile.
            track_accumulation: Record per-delivery samples for Fig. 3.
            count_writeback_checks: Also charge the reliability model for the
                read-out of dirty blocks evicted toward memory.
        """
        self._scheme_config = replace(config, read_path=self.read_path_mode())
        self._cache = SetAssociativeCache(self._scheme_config, seed=seed)
        self._read_path = build_read_path(
            self.read_path_mode(), config.associativity
        )
        self._ecc: ECCScheme = build_ecc_scheme(config.ecc, config.block_size_bits)
        mtj = mtj or MTJConfig()
        if p_cell is None:
            p_cell = ReadDisturbanceModel(mtj).per_read_probability
        self._mtj = mtj
        self._engine = ReliabilityEngine(
            p_cell=p_cell,
            correctable_errors=self._ecc.correctable_errors,
            track_accumulation=track_accumulation,
            interleaving_lanes=getattr(self._ecc, "degree", 1),
        )
        self._data_profile = data_profile or DataValueProfile(
            block_bits=config.block_size_bits, seed=seed
        )
        self._energy_model = NVSimLikeModel(self._scheme_config, self._ecc)
        self._energy = EnergyAccountant(self._energy_model)
        self._count_writeback_checks = count_writeback_checks
        self._tick = 0

    # -- scheme identity -----------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def read_path_mode(cls) -> ReadPathMode:
        """Read-path organisation used by the scheme."""

    @classmethod
    @abc.abstractmethod
    def scheme_name(cls) -> str:
        """Short human-readable scheme name."""

    @abc.abstractmethod
    def _deliver(self, block) -> DeliveryOutcome:
        """Charge the reliability model for a demand delivery of ``block``."""

    # -- introspection ----------------------------------------------------------------

    @property
    def config(self) -> CacheLevelConfig:
        """Effective cache configuration (read path set by the scheme)."""
        return self._scheme_config

    @property
    def cache(self) -> SetAssociativeCache:
        """The underlying functional cache."""
        return self._cache

    @property
    def ecc(self) -> ECCScheme:
        """The block ECC scheme."""
        return self._ecc

    @property
    def engine(self) -> ReliabilityEngine:
        """The reliability engine."""
        return self._engine

    @property
    def p_cell(self) -> float:
        """Per-read, per-cell disturbance probability in use."""
        return self._engine.p_cell

    @property
    def stats(self) -> CacheStatistics:
        """Functional cache statistics."""
        return self._cache.stats

    @property
    def reliability(self) -> ReliabilityStatistics:
        """Reliability statistics."""
        return self._engine.stats

    @property
    def tracker(self) -> AccumulationTracker | None:
        """Per-delivery accumulation samples (``None`` when disabled)."""
        return self._engine.tracker

    @property
    def energy(self) -> EnergyTotals:
        """Accumulated energy totals."""
        return self._energy.totals

    @property
    def energy_accountant(self) -> EnergyAccountant:
        """The event-by-event energy accountant."""
        return self._energy

    @property
    def data_profile(self) -> DataValueProfile:
        """The ones-count sampler used for fills and overwrites."""
        return self._data_profile

    @property
    def count_writeback_checks(self) -> bool:
        """Whether dirty-eviction read-outs are charged to the reliability model."""
        return self._count_writeback_checks

    def add_leakage(self, seconds: float) -> None:
        """Add leakage energy for ``seconds`` of simulated time.

        Public hook used by the simulation engines after a trace has run, so
        drivers never need to reach into the internal accountant.

        Raises:
            ConfigurationError: if ``seconds`` is negative.
        """
        self._energy.add_leakage(seconds)

    @property
    def energy_model(self) -> NVSimLikeModel:
        """The per-event energy/area model."""
        return self._energy_model

    @property
    def expected_failures(self) -> float:
        """Total expected uncorrectable deliveries so far."""
        return self._engine.expected_failures

    def mttf(self, simulated_time_s: float) -> MTTFResult:
        """MTTF result for a simulated interval of the given length."""
        return MTTFResult(
            expected_failures=self.expected_failures,
            simulated_time_s=simulated_time_s,
            num_accesses=self._engine.stats.checked_reads,
        )

    def read_hit_latency_ns(self) -> float:
        """Read-hit latency of the scheme's read-path organisation."""
        return self._energy_model.read_hit_latency_ns(self.read_path_mode())

    # -- NextLevel protocol ---------------------------------------------------------------

    def read(self, address: int) -> DeliveryOutcome | None:
        """Handle a demand read of the block containing ``address``.

        Returns:
            The delivery outcome on a hit, or ``None`` on a miss (the missing
            block is fetched from memory and installed; its first delivery
            happens on a later hit).
        """
        self._tick += 1
        decomposed = self._cache.mapper.decompose(address)
        cache_set = self._cache.cache_set(decomposed.index)
        valid_ways = cache_set.valid_ways()
        hit_way = cache_set.lookup(decomposed.tag)

        if hit_way is not None:
            events = self._read_path.read_events(hit_way, valid_ways)
        else:
            events = self._read_path.miss_events(valid_ways)

        outcome = self._apply_read_reliability(cache_set, hit_way, events)
        self._energy.record_read_access(events.ways_read, events.ecc_decodes)
        self._cache.stats.data_way_reads += events.ways_read
        self._cache.stats.ecc_decodes += events.ecc_decodes

        result = self._cache.access(
            address, is_write=False, fill_ones_count=self._data_profile.sample()
        )
        if result.filled:
            self._energy.record_fill()
            self._handle_eviction(result)
        return outcome

    def write(self, address: int) -> None:
        """Handle a write (store write-back from the L1) of a block."""
        self._tick += 1
        result = self._cache.access(
            address, is_write=True, fill_ones_count=self._data_profile.sample()
        )
        self._energy.record_write_access()
        if result.filled:
            self._handle_eviction(result)

    # -- internals ----------------------------------------------------------------------------

    def _apply_read_reliability(
        self, cache_set: CacheSet, hit_way: int | None, events: ReadPathEvents
    ) -> DeliveryOutcome | None:
        """Charge concealed / checked / delivered reads for one access."""
        outcome: DeliveryOutcome | None = None
        for way in events.concealed_ways:
            self._engine.on_concealed_read(cache_set.block(way))
        for way in events.checked_ways:
            block = cache_set.block(way)
            if hit_way is not None and way == hit_way:
                outcome = self._deliver(block)
            else:
                self._engine.on_scrub_read(block, tick=self._tick)
        return outcome

    def _handle_eviction(self, result) -> None:
        """Account the write-back of a dirty victim toward memory."""
        evicted = result.evicted
        if evicted is None or not evicted.dirty:
            return
        # Reading the victim out of the array costs one way read and one
        # decode in every scheme (the write-back path always checks ECC).
        self._energy.record_read_access(ways_read=1, ecc_decodes=1)
        if self._count_writeback_checks and evicted.ones_count > 0:
            from ..reliability import accumulated_failure_probability

            probability = accumulated_failure_probability(
                self._engine.p_cell,
                evicted.ones_count,
                evicted.unchecked_reads + 1,
                self._engine.correctable_errors,
            )
            self._engine.stats.record_check(evicted.unchecked_reads + 1, probability)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"{type(self).__name__}(config={self._scheme_config.name}, "
            f"p_cell={self.p_cell:.3e}, ecc={self._ecc.name})"
        )
