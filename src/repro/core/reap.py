"""REAP-cache: the paper's proposed scheme (Fig. 4).

REAP keeps the parallel (fast) access of the conventional cache but swaps the
MUX and the ECC decoder in the read path, replicating the decoder once per
way.  Every speculative way read is therefore ECC-checked and scrubbed the
moment it happens, so read disturbance can never accumulate across accesses:
a delivery after ``N`` reads behaves like ``N`` independently-checked single
reads (Eq. 6) instead of one check of ``N`` accumulated reads (Eq. 3).

The cost is ``k-1`` extra decoder activations per read access and ``k-1``
extra decoder instances — the <1% area and ~2.7% dynamic-energy overheads the
paper reports — while the access latency does not grow because decoding now
overlaps the tag comparison.
"""

from __future__ import annotations

from ..config import ReadPathMode
from .engine import DeliveryOutcome
from .protected import ProtectedCache


class REAPCache(ProtectedCache):
    """Read Error Accumulation Preventer cache (the paper's contribution)."""

    @classmethod
    def read_path_mode(cls) -> ReadPathMode:
        """Parallel access with one decoder per way, before the MUX."""
        return ReadPathMode.REAP

    @classmethod
    def scheme_name(cls) -> str:
        """Scheme name used in reports and figures."""
        return "reap"

    def _deliver(self, block) -> DeliveryOutcome:
        """Demand deliveries span individually-checked reads only (Eq. 6)."""
        return self._engine.on_reap_delivery(block, tick=self._tick)
