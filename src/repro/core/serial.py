"""Serial (tag-first) cache: the alternative the paper rejects on performance.

Section IV lists two ways to avoid concealed reads; the first — "reading a
data line after completion of tag comparison operation" — eliminates the
speculative reads entirely but serialises the tag and data accesses, which
"removes the performance benefit of cache parallel access and significantly
increases the cache access time".  The scheme is included so experiments can
show that it matches REAP's reliability while paying the latency cost REAP
avoids.
"""

from __future__ import annotations

from ..config import ReadPathMode
from .engine import DeliveryOutcome
from .protected import ProtectedCache


class SerialAccessCache(ProtectedCache):
    """Tag-comparison-first cache with no speculative data reads."""

    @classmethod
    def read_path_mode(cls) -> ReadPathMode:
        """Serial access: only the hitting way is ever read."""
        return ReadPathMode.SERIAL

    @classmethod
    def scheme_name(cls) -> str:
        """Scheme name used in reports and figures."""
        return "serial"

    def _deliver(self, block) -> DeliveryOutcome:
        """Every delivery is a single, immediately-checked read (Eq. 2)."""
        return self._engine.on_serial_delivery(block, tick=self._tick)
