"""Conventional parallel-access cache: the paper's baseline (Fig. 2).

All ways of the target set are read in parallel with the tag comparison, the
MUX forwards the hitting way to the *single* ECC decoder, and the other
``k-1`` speculative reads are discarded unchecked.  Those concealed reads
accumulate read disturbance in their lines until the lines are eventually
demanded, which is the reliability problem the paper formulates (Eq. 3).
"""

from __future__ import annotations

from ..config import ReadPathMode
from .engine import DeliveryOutcome
from .protected import ProtectedCache


class ConventionalCache(ProtectedCache):
    """Baseline parallel-access, single-decoder cache."""

    @classmethod
    def read_path_mode(cls) -> ReadPathMode:
        """Parallel access with one decoder after the MUX."""
        return ReadPathMode.PARALLEL

    @classmethod
    def scheme_name(cls) -> str:
        """Scheme name used in reports and figures."""
        return "conventional"

    def _deliver(self, block) -> DeliveryOutcome:
        """Demand deliveries pay for the full accumulated exposure (Eq. 3)."""
        return self._engine.on_conventional_delivery(block, tick=self._tick)
