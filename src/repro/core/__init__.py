"""The paper's contribution: REAP-cache and the schemes it is compared against.

Public surface:

* :class:`ProtectedCache` — base class tying the substrate together.
* :class:`ConventionalCache` — the parallel-access baseline (Fig. 2).
* :class:`REAPCache` — the proposed scheme (Fig. 4).
* :class:`SerialAccessCache` — tag-first alternative (no concealed reads,
  slower access).
* :class:`RestoreCache` — disruptive-read-and-restore baseline ([14], [15]).
* :class:`ScrubbingCache` — patrol-scrubbing baseline (extension).
* :class:`ProtectionScheme` / :func:`build_protected_cache` — registry.
* :class:`ReliabilityEngine`, :class:`DeliveryOutcome`,
  :class:`DataValueProfile` — supporting pieces.
"""

from .conventional import ConventionalCache
from .data_profile import DataValueProfile
from .engine import DeliveryOutcome, ReliabilityEngine
from .protected import ProtectedCache
from .reap import REAPCache
from .restore import RestoreCache
from .schemes import SCHEME_CLASSES, ProtectionScheme, build_protected_cache
from .scrubbing import ScrubbingCache
from .serial import SerialAccessCache

__all__ = [
    "ProtectedCache",
    "ConventionalCache",
    "REAPCache",
    "SerialAccessCache",
    "RestoreCache",
    "ScrubbingCache",
    "ProtectionScheme",
    "SCHEME_CLASSES",
    "build_protected_cache",
    "ReliabilityEngine",
    "DeliveryOutcome",
    "DataValueProfile",
]
