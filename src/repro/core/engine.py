"""Reliability engine: turns block exposures into failure probabilities.

The engine is the glue between the cache substrate and the reliability math:
the protection schemes report which blocks were read concealed, checked, or
delivered, and the engine

* applies the right closed-form expression (Eq. 2 for a single checked read,
  Eq. 3 for an accumulated delivery, Eq. 6 for a REAP delivery window),
* accumulates the expected-failure total that the MTTF metric needs, and
* feeds the :class:`~repro.reliability.AccumulationTracker` that the Fig. 3
  characterisation uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cache.block import CacheBlock
from ..cache.statistics import ReliabilityStatistics
from ..errors import ConfigurationError
from ..reliability import (
    AccumulationTracker,
    accumulated_failure_probability,
    block_failure_probability,
    reap_failure_probability,
)


@dataclass(frozen=True)
class DeliveryOutcome:
    """Reliability outcome of one demand delivery.

    Attributes:
        failure_probability: Probability the delivered data was uncorrectable.
        concealed_reads: Concealed reads the line had accumulated (Fig. 3 x-axis).
        demand_window: Total reads since the previous delivery (Eq. 6's ``N``).
        ones_count: Ones count of the delivered block.
    """

    failure_probability: float
    concealed_reads: int
    demand_window: int
    ones_count: int


class ReliabilityEngine:
    """Tracks disturbance exposure and expected failures for one cache."""

    def __init__(
        self,
        p_cell: float,
        correctable_errors: int = 1,
        track_accumulation: bool = True,
        interleaving_lanes: int = 1,
    ) -> None:
        """Create an engine.

        Args:
            p_cell: Per-read, per-cell disturbance probability (corrected
                Eq. 1, usually taken from
                :class:`repro.mram.ReadDisturbanceModel`).
            correctable_errors: ECC correction capability ``t`` per codeword.
            track_accumulation: Whether to record per-delivery samples for
                the Fig. 3 histogram (adds memory proportional to the number
                of demand reads).
            interleaving_lanes: Number of independent codewords a block is
                interleaved into.  With ``L`` lanes the disturbances of a
                block spread evenly across the lanes, so the block fails when
                *any* lane exceeds its own correction capability; the engine
                uses the union bound
                ``L * P[Binomial(trials / L, p) > t]``.
        """
        if not 0.0 <= p_cell <= 1.0:
            raise ConfigurationError("p_cell must be in [0, 1]")
        if correctable_errors < 0:
            raise ConfigurationError("correctable_errors must be non-negative")
        if interleaving_lanes < 1:
            raise ConfigurationError("interleaving_lanes must be >= 1")
        self._p_cell = p_cell
        self._correctable = correctable_errors
        self._lanes = interleaving_lanes
        self._stats = ReliabilityStatistics()
        self._tracker = AccumulationTracker() if track_accumulation else None
        # Failure probabilities depend only on (ones, window); memoise them so
        # long traces do not pay a scipy tail computation per delivery.
        self._accumulated_cache: dict[tuple[int, int], float] = {}
        self._reap_cache: dict[tuple[int, int], float] = {}
        self._single_cache: dict[int, float] = {}

    # -- introspection ---------------------------------------------------------

    @property
    def p_cell(self) -> float:
        """Per-read, per-cell disturbance probability."""
        return self._p_cell

    @property
    def correctable_errors(self) -> int:
        """ECC correction capability."""
        return self._correctable

    @property
    def interleaving_lanes(self) -> int:
        """Number of independent codewords a block is interleaved into."""
        return self._lanes

    @property
    def stats(self) -> ReliabilityStatistics:
        """Aggregated reliability counters."""
        return self._stats

    @property
    def tracker(self) -> AccumulationTracker | None:
        """Per-delivery accumulation samples (``None`` when tracking is off)."""
        return self._tracker

    @property
    def expected_failures(self) -> float:
        """Total expected uncorrectable deliveries so far."""
        return self._stats.expected_failures

    # -- event handlers ----------------------------------------------------------

    def on_concealed_read(self, block: CacheBlock) -> None:
        """A way was speculatively read without an ECC check."""
        block.record_concealed_read()
        self._stats.record_concealed()

    def on_scrub_read(self, block: CacheBlock, tick: int = 0) -> None:
        """A way was read and ECC-checked without being delivered (REAP).

        The check scrubs any accumulated disturbance but does not, by itself,
        constitute a delivery, so no failure probability is charged here; the
        exposure is folded into the next delivery through Eq. (6).
        """
        block.record_checked_read(demand=False, tick=tick)
        self._stats.scrub_events += 1

    def on_conventional_delivery(self, block: CacheBlock, tick: int = 0) -> DeliveryOutcome:
        """A demand read delivered a block whose exposure accumulated (Eq. 3)."""
        exposure = block.record_checked_read(demand=True, tick=tick)
        ones = block.ones_count
        probability = self.accumulated_probability(ones, exposure.unchecked_window)
        return self._finish_delivery(exposure.unchecked_window, exposure, ones, probability)

    def on_serial_delivery(self, block: CacheBlock, tick: int = 0) -> DeliveryOutcome:
        """A demand read in a serial (tag-first) cache: no accumulation (Eq. 2)."""
        exposure = block.record_checked_read(demand=True, tick=tick)
        ones = block.ones_count
        probability = self.single_probability(ones)
        return self._finish_delivery(exposure.unchecked_window, exposure, ones, probability)

    def on_reap_delivery(self, block: CacheBlock, tick: int = 0) -> DeliveryOutcome:
        """A demand read in REAP: every read in the window was checked (Eq. 6)."""
        exposure = block.record_checked_read(demand=True, tick=tick)
        ones = block.ones_count
        probability = self.reap_probability(ones, exposure.demand_window)
        return self._finish_delivery(exposure.demand_window, exposure, ones, probability)

    # -- memoised probability lookups (public: the batched fast path reuses them) -----

    def _lane_adjusted(self, ones: int, window: int, accumulate: bool) -> float:
        """Block failure probability with interleaving-lane awareness.

        For a single codeword (``lanes == 1``) this is exactly Eq. (2)/(3);
        for an ``L``-way interleaved code, each lane sees ``1/L`` of the
        block's '1' cells and the block fails when any lane does (union
        bound).
        """
        if ones == 0:
            return 0.0
        lane_ones = max(1, round(ones / self._lanes)) if self._lanes > 1 else ones
        if accumulate:
            per_lane = accumulated_failure_probability(
                self._p_cell, lane_ones, window, self._correctable
            )
        else:
            per_lane = block_failure_probability(
                self._p_cell, lane_ones, self._correctable
            )
        return min(1.0, self._lanes * per_lane)

    def single_probability(self, ones: int) -> float:
        """Eq. (2) failure probability of one checked read (memoised, lane-aware)."""
        if ones == 0:
            return 0.0
        cached = self._single_cache.get(ones)
        if cached is None:
            cached = self._lane_adjusted(ones, 1, accumulate=False)
            self._single_cache[ones] = cached
        return cached

    def accumulated_probability(self, ones: int, window: int) -> float:
        """Eq. (3) failure probability of an accumulated delivery (memoised, lane-aware)."""
        if ones == 0:
            return 0.0
        key = (ones, window)
        cached = self._accumulated_cache.get(key)
        if cached is None:
            cached = self._lane_adjusted(ones, window, accumulate=True)
            self._accumulated_cache[key] = cached
        return cached

    def reap_probability(self, ones: int, window: int) -> float:
        """Eq. (6) failure probability of a REAP delivery window (memoised, lane-aware)."""
        if ones == 0:
            return 0.0
        key = (ones, window)
        cached = self._reap_cache.get(key)
        if cached is None:
            if self._lanes == 1:
                cached = reap_failure_probability(
                    self._p_cell, ones, window, self._correctable
                )
            else:
                single = self.single_probability(ones)
                cached = -math.expm1(window * math.log1p(-min(single, 1.0 - 1e-18)))
            self._reap_cache[key] = cached
        return cached

    # -- helpers -----------------------------------------------------------------

    def _finish_delivery(
        self, window: int, exposure, ones: int, probability: float
    ) -> DeliveryOutcome:
        self._stats.record_check(window, probability)
        concealed = exposure.unchecked_window - 1
        if self._tracker is not None:
            self._tracker.record(concealed, ones)
        return DeliveryOutcome(
            failure_probability=probability,
            concealed_reads=concealed,
            demand_window=exposure.demand_window,
            ones_count=ones,
        )
