"""Disruptive-read-and-restore baseline (paper references [14], [15]).

The architecture-level mitigation the paper positions itself against: after
every read, the sensed value is written back into the line, so disturbance
cannot accumulate.  The price the paper highlights is twofold:

* every read now also performs a (full-line) write, which lengthens the
  access and burns STT-MRAM write energy on each of the ``k`` speculatively
  read ways; and
* every restore is an extra write *opportunity to fail* — the scheme trades
  read-disturbance accumulation for write-failure exposure.

The model here keeps the parallel read path (restores are applied to all
speculatively read ways), charges restore writes to the energy accountant,
accumulates the restore write-failure probability as additional expected
failures, and — like REAP — prevents read-disturbance accumulation.
"""

from __future__ import annotations

from ..cache.cache_set import CacheSet
from ..cache.readpath import ReadPathEvents
from ..config import CacheLevelConfig, MTJConfig, ReadPathMode
from ..mram import WriteErrorModel
from .data_profile import DataValueProfile
from .engine import DeliveryOutcome
from .protected import ProtectedCache


class RestoreCache(ProtectedCache):
    """Parallel-access cache that restores every way after every read."""

    def __init__(
        self,
        config: CacheLevelConfig,
        mtj: MTJConfig | None = None,
        p_cell: float | None = None,
        data_profile: DataValueProfile | None = None,
        seed: int = 1,
        track_accumulation: bool = True,
        count_writeback_checks: bool = False,
    ) -> None:
        """Create the restore baseline; see :class:`ProtectedCache` for arguments."""
        super().__init__(
            config=config,
            mtj=mtj,
            p_cell=p_cell,
            data_profile=data_profile,
            seed=seed,
            track_accumulation=track_accumulation,
            count_writeback_checks=count_writeback_checks,
        )
        self._write_error_model = WriteErrorModel(self._mtj)
        self._restore_expected_failures = 0.0
        self._restore_count = 0

    @classmethod
    def read_path_mode(cls) -> ReadPathMode:
        """Parallel access (the restores are an add-on to the data path)."""
        return ReadPathMode.PARALLEL

    @classmethod
    def scheme_name(cls) -> str:
        """Scheme name used in reports and figures."""
        return "restore"

    # -- scheme-specific behaviour ------------------------------------------------

    @property
    def restore_count(self) -> int:
        """Total line restores performed."""
        return self._restore_count

    @property
    def restore_expected_failures(self) -> float:
        """Expected failures contributed by restore write errors."""
        return self._restore_expected_failures

    @property
    def write_error_model(self):
        """The MTJ write-error model costing each restore."""
        return self._write_error_model

    def record_restore_batch(self, failure_probabilities) -> None:
        """Record many line restores at once (energy is charged separately).

        Counter totals match per-read :meth:`_account_restore` accounting: one
        restore per probability, with the expected-failure accumulator doing
        the same sequential float additions.

        Args:
            failure_probabilities: Per-restore write-failure probabilities,
                in restore order.
        """
        total = self._restore_expected_failures
        count = 0
        for probability in failure_probabilities:
            total += probability
            count += 1
        self._restore_expected_failures = total
        self._restore_count += count

    def record_restore_array(self, failure_probabilities) -> None:
        """Record many line restores from a float array of probabilities.

        Same totals as :meth:`record_restore_batch`; the expected-failure
        accumulator reproduces the identical left-to-right additions via
        :func:`repro.reliability.binomial.sequential_float_sum`, so the
        structure-of-arrays kernel stays bit-identical to the per-restore
        loop.
        """
        from ..reliability.binomial import sequential_float_sum

        self._restore_expected_failures = sequential_float_sum(
            self._restore_expected_failures, failure_probabilities
        )
        self._restore_count += len(failure_probabilities)

    def record_restore_runs(
        self, failure_probabilities, counts, _chunk: int = 1 << 16
    ) -> None:
        """Record run-length-encoded line restores.

        Equivalent to :meth:`record_restore_array` over
        ``np.repeat(failure_probabilities, counts)`` — the identical
        left-to-right float additions, since a chunked sequential sum
        composes exactly — without ever materialising the expanded array.
        This is what lets the structure-of-arrays kernel collapse the
        restore scheme's per-(read, way) rewrite stream, whose expansion
        dominated its pass-2 allocations, into runs of equal probability.

        Args:
            failure_probabilities: Per-run write-failure probabilities.
            counts: Per-run repeat counts, aligned with the probabilities.
        """
        import numpy as np

        from ..reliability.binomial import sequential_float_sum

        acc = self._restore_expected_failures
        total = 0
        for probability, count in zip(
            np.asarray(failure_probabilities, dtype=float).tolist(),
            np.asarray(counts, dtype=np.int64).tolist(),
        ):
            if count <= 0:
                continue
            total += count
            remaining = count
            while remaining > 0:
                take = remaining if remaining < _chunk else _chunk
                acc = sequential_float_sum(acc, np.full(take, probability))
                remaining -= take
        self._restore_expected_failures = acc
        self._restore_count += total

    @property
    def expected_failures(self) -> float:
        """Read-path failures plus restore write-failure exposure."""
        return self._engine.expected_failures + self._restore_expected_failures

    def _deliver(self, block) -> DeliveryOutcome:
        """Deliveries see no accumulation because every read was restored."""
        return self._engine.on_conventional_delivery(block, tick=self._tick)

    def _apply_read_reliability(
        self, cache_set: CacheSet, hit_way: int | None, events: ReadPathEvents
    ) -> DeliveryOutcome | None:
        """Restore every way that the parallel access touched.

        The restore rewrites the sensed (correct) value, so instead of
        recording concealed reads we record checked-but-not-delivered reads
        (which reset the accumulation counters), charge the restore write
        energy, and accumulate the write-failure probability of rewriting the
        line's '1' cells.
        """
        outcome: DeliveryOutcome | None = None
        touched_ways = tuple(events.concealed_ways) + tuple(events.checked_ways)
        for way in touched_ways:
            block = cache_set.block(way)
            if hit_way is not None and way == hit_way:
                outcome = self._deliver(block)
            else:
                self._engine.on_scrub_read(block, tick=self._tick)
            self._account_restore(block)
        return outcome

    def _account_restore(self, block) -> None:
        self._restore_count += 1
        self._energy.record_scrub()
        self._restore_expected_failures += (
            self._write_error_model.block_write_failure_probability(block.ones_count)
        )
