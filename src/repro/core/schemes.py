"""Protection-scheme registry and factory."""

from __future__ import annotations

from enum import Enum
from typing import Type

from ..config import CacheLevelConfig, MTJConfig
from ..errors import ConfigurationError
from .conventional import ConventionalCache
from .data_profile import DataValueProfile
from .protected import ProtectedCache
from .reap import REAPCache
from .restore import RestoreCache
from .scrubbing import ScrubbingCache
from .serial import SerialAccessCache


class ProtectionScheme(str, Enum):
    """The L2 protection schemes available to experiments."""

    CONVENTIONAL = "conventional"
    REAP = "reap"
    SERIAL = "serial"
    RESTORE = "restore"
    SCRUBBING = "scrubbing"


SCHEME_CLASSES: dict[ProtectionScheme, Type[ProtectedCache]] = {
    ProtectionScheme.CONVENTIONAL: ConventionalCache,
    ProtectionScheme.REAP: REAPCache,
    ProtectionScheme.SERIAL: SerialAccessCache,
    ProtectionScheme.RESTORE: RestoreCache,
    ProtectionScheme.SCRUBBING: ScrubbingCache,
}


def build_protected_cache(
    scheme: ProtectionScheme | str,
    config: CacheLevelConfig,
    mtj: MTJConfig | None = None,
    p_cell: float | None = None,
    data_profile: DataValueProfile | None = None,
    seed: int = 1,
    track_accumulation: bool = True,
    count_writeback_checks: bool = False,
) -> ProtectedCache:
    """Instantiate a protected L2 cache for the requested scheme.

    Args:
        scheme: Which protection scheme to build.
        config: L2 geometry and ECC configuration.
        mtj: MTJ operating point (defaults to the library default).
        p_cell: Explicit per-read disturbance probability override.
        data_profile: Ones-count sampler; a default profile is created when
            omitted.
        seed: Seed for the substrate and samplers.
        track_accumulation: Record per-delivery samples for Fig. 3.
        count_writeback_checks: Also charge dirty-eviction read-outs.

    Returns:
        A ready-to-drive :class:`ProtectedCache`.
    """
    scheme = ProtectionScheme(scheme)
    try:
        cls = SCHEME_CLASSES[scheme]
    except KeyError as exc:  # pragma: no cover - enum keeps this unreachable
        raise ConfigurationError(f"unknown protection scheme: {scheme}") from exc
    return cls(
        config=config,
        mtj=mtj,
        p_cell=p_cell,
        data_profile=data_profile,
        seed=seed,
        track_accumulation=track_accumulation,
        count_writeback_checks=count_writeback_checks,
    )
