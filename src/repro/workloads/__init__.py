"""Workload traces and generators (the reproduction's SPEC CPU2006 substitute).

Public surface:

* :class:`Trace`, :class:`TraceRecord`, :class:`AccessKind` — containers and I/O.
* CPU-level synthetic generators (:func:`sequential_trace`,
  :func:`strided_trace`, :func:`pointer_chase_trace`, :func:`hot_loop_trace`,
  :func:`mixed_trace`) for the hierarchy front end.
* :class:`SPECWorkloadProfile`, :data:`SPEC_CPU2006_PROFILES`,
  :func:`get_profile`, :func:`all_profiles`, :data:`FIGURE3_WORKLOADS` — the
  named workload profiles.
* :func:`generate_l2_trace` — L2-level trace materialisation.
* Streaming trace I/O (:mod:`repro.workloads.streams`): :func:`open_trace`,
  :func:`read_trace`, :class:`TraceSource`, :class:`BinaryTraceWriter`,
  :class:`BinaryTraceSource`, :class:`TextTraceSource` — out-of-core trace
  storage, external-format readers and segmented ingestion.
* :class:`ArtifactCache` (:mod:`repro.workloads.artifacts`) — cross-job
  amortisation of decoded traces and L1-filtered streams.
"""

from .artifacts import ARTIFACT_CACHE_ENV, ArtifactCache
from .generator import generate_l2_trace
from .spec_profiles import (
    FIGURE3_WORKLOADS,
    SPEC_CPU2006_PROFILES,
    SPECWorkloadProfile,
    all_profiles,
    get_profile,
)
from .synthetic import (
    hot_loop_trace,
    mixed_trace,
    pointer_chase_trace,
    sequential_trace,
    strided_trace,
)
from .streams import (
    DEFAULT_SEGMENT_ACCESSES,
    FORMAT_CHOICES,
    BinaryTraceSource,
    BinaryTraceWriter,
    TextTraceSource,
    TraceSource,
    detect_format,
    open_trace,
    read_trace,
)
from .trace import AccessKind, Trace, TraceRecord

__all__ = [
    "ArtifactCache",
    "ARTIFACT_CACHE_ENV",
    "Trace",
    "TraceRecord",
    "AccessKind",
    "TraceSource",
    "BinaryTraceWriter",
    "BinaryTraceSource",
    "TextTraceSource",
    "open_trace",
    "read_trace",
    "detect_format",
    "DEFAULT_SEGMENT_ACCESSES",
    "FORMAT_CHOICES",
    "sequential_trace",
    "strided_trace",
    "pointer_chase_trace",
    "hot_loop_trace",
    "mixed_trace",
    "SPECWorkloadProfile",
    "SPEC_CPU2006_PROFILES",
    "FIGURE3_WORKLOADS",
    "get_profile",
    "all_profiles",
    "generate_l2_trace",
]
