"""Out-of-core trace storage and streaming ingestion.

This module is the on-disk half of constant-memory replay.  A
:class:`TraceSource` is anything that can hand the engines the trace as a
sequence of decoded ``(kinds, addresses)`` segments — NumPy columns in the
:data:`~repro.workloads.trace.KIND_ORDER` encoding — without ever
materialising the whole trace in memory.  The engines
(:func:`repro.sim.run_l2_trace` with ``segment_accesses``, and
:func:`repro.sim.fastpath.replay_l2_segments` underneath) replay the
segments one at a time; the compact per-set state protocol carries all cache,
policy, accumulator and energy state across segment boundaries, so segmented
replay is bit-identical to whole-trace replay.

Three source flavours are provided:

* :class:`BinaryTraceSource` — the native binary chunked format written by
  :meth:`Trace.save_binary` / :class:`BinaryTraceWriter`.  The file is
  memory-mapped; each segment is a zero-copy (or at worst segment-sized)
  view into the map, so peak memory is bounded by the segment size no
  matter how long the trace is.
* :class:`TextTraceSource` — streaming line-by-line readers for three text
  formats: the repo's native ``<kind> <hex>`` format, ChampSim/SimpleScalar
  ``din``-style numeric traces (``0|1|2 <hex>`` = load/store/ifetch), and
  valgrind-lackey style (``I/L/S/M <hex>,<size>``; ``M`` expands to a load
  plus a store).  External formats carry no cache-level information, so
  their references are mapped onto the L2-visible stream (loads and
  instruction fetches become ``L2_READ``, stores become ``L2_WRITE``).
* :func:`open_trace` — opens any of the above, auto-detecting the format
  from the binary magic or the first significant text line.

Binary format (all integers little-endian, every section 8-byte aligned so
the reader can build aligned NumPy views directly over the map)::

    magic    8 bytes   b"REAPTRC\\x01"
    version  u32       format version (currently 1)
    name_len u32       byte length of the UTF-8 trace name
    count    u64       total number of records (written on close)
    name     name_len bytes, zero-padded to a multiple of 8
    chunk*   u64 count | u8 kinds[count] | pad to 8 | i64 addresses[count]
"""

from __future__ import annotations

import mmap
import struct
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from ..errors import TraceError
from .trace import _KIND_INDEX, KIND_ORDER, AccessKind, Trace, TraceRecord

#: Default replay segment length (accesses per segment).  One segment of a
#: million accesses costs ~9 MB of decoded arrays — small enough to bound
#: memory, large enough to keep the vectorised kernels efficient.
DEFAULT_SEGMENT_ACCESSES = 1 << 20

#: Default number of accesses per on-disk chunk in the binary format.
DEFAULT_CHUNK_ACCESSES = 1 << 20

_MAGIC = b"REAPTRC\x01"
_VERSION = 1
_HEADER = struct.Struct("<8sIIQ")  # magic, version, name_len, total count

_L2_READ_INDEX = _KIND_INDEX[AccessKind.L2_READ]
_L2_WRITE_INDEX = _KIND_INDEX[AccessKind.L2_WRITE]

#: Formats accepted by :func:`open_trace`.
FORMAT_CHOICES = ("auto", "binary", "text", "din", "lackey")


def _check_segment_accesses(segment_accesses: int) -> None:
    if segment_accesses <= 0:
        raise TraceError("segment_accesses must be positive")


def _pad_to_8(n: int) -> int:
    return (-n) % 8


@runtime_checkable
class TraceSource(Protocol):
    """A named access stream readable as decoded segments.

    ``segments`` must be *re-iterable*: each call starts a fresh pass over
    the whole trace, so one source can drive several schemes in turn (the
    way :func:`repro.sim.compare_schemes` replays one trace per scheme).
    The yielded arrays use the :data:`~repro.workloads.trace.KIND_ORDER`
    kind encoding and are only valid until the next iteration step — copy
    them if they must outlive it.
    """

    name: str

    def __len__(self) -> int: ...

    def segments(
        self, segment_accesses: int = DEFAULT_SEGMENT_ACCESSES
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]: ...


class BinaryTraceWriter:
    """Incremental writer for the binary chunked trace format.

    Records are appended as decoded arrays and flushed to disk one chunk at
    a time, so arbitrarily long traces can be written in bounded memory:

    >>> with BinaryTraceWriter(path, "mix") as writer:
    ...     for kinds, addresses in source.segments():
    ...         writer.append(kinds, addresses)
    """

    def __init__(
        self,
        path: str | Path,
        name: str,
        chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
    ) -> None:
        if chunk_accesses <= 0:
            raise TraceError("chunk_accesses must be positive")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self.name = name
        self._chunk_accesses = chunk_accesses
        self._pending_kinds: list[np.ndarray] = []
        self._pending_addresses: list[np.ndarray] = []
        self._pending = 0
        self._total = 0
        self._closed = False
        name_bytes = name.encode("utf-8")
        self._handle = self._path.open("wb")
        self._handle.write(_HEADER.pack(_MAGIC, _VERSION, len(name_bytes), 0))
        self._handle.write(name_bytes + b"\x00" * _pad_to_8(len(name_bytes)))

    def append(self, kinds: np.ndarray, addresses: np.ndarray) -> None:
        """Append decoded records (``KIND_ORDER`` kinds, byte addresses)."""
        if self._closed:
            raise TraceError("writer is closed")
        kinds = np.ascontiguousarray(kinds, dtype=np.int8)
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        if kinds.shape != addresses.shape or kinds.ndim != 1:
            raise TraceError("kinds and addresses must be 1-D arrays of equal length")
        if kinds.size == 0:
            return
        if kinds.min() < 0 or kinds.max() >= len(KIND_ORDER):
            raise TraceError("kind codes must index KIND_ORDER")
        if addresses.min() < 0:
            raise TraceError("trace addresses must be non-negative")
        self._pending_kinds.append(kinds)
        self._pending_addresses.append(addresses)
        self._pending += kinds.size
        while self._pending >= self._chunk_accesses:
            self._flush_chunk(self._chunk_accesses)

    def append_records(self, records) -> None:
        """Append :class:`TraceRecord` objects (convenience for small batches)."""
        records = list(records)
        if not records:
            return
        kinds = np.fromiter(
            (_KIND_INDEX[r.kind] for r in records), dtype=np.int8, count=len(records)
        )
        addresses = np.fromiter(
            (r.address for r in records), dtype=np.int64, count=len(records)
        )
        self.append(kinds, addresses)

    def _take(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        kinds = np.concatenate(self._pending_kinds)
        addresses = np.concatenate(self._pending_addresses)
        head_k, tail_k = kinds[:count], kinds[count:]
        head_a, tail_a = addresses[:count], addresses[count:]
        self._pending_kinds = [tail_k] if tail_k.size else []
        self._pending_addresses = [tail_a] if tail_a.size else []
        self._pending -= count
        return head_k, head_a

    def _flush_chunk(self, count: int) -> None:
        kinds, addresses = self._take(count)
        self._handle.write(struct.pack("<Q", count))
        self._handle.write(kinds.tobytes())
        self._handle.write(b"\x00" * _pad_to_8(count))
        self._handle.write(addresses.tobytes())
        self._total += count

    def close(self) -> None:
        """Flush the final partial chunk and patch the record count."""
        if self._closed:
            return
        if self._pending:
            self._flush_chunk(self._pending)
        self._handle.seek(_HEADER.size - 8)
        self._handle.write(struct.pack("<Q", self._total))
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_binary_trace(
    path: str | Path,
    name: str,
    kinds: np.ndarray,
    addresses: np.ndarray,
    chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
) -> None:
    """Write already-decoded columns as one binary trace file."""
    with BinaryTraceWriter(path, name, chunk_accesses=chunk_accesses) as writer:
        writer.append(kinds, addresses)


class BinaryTraceSource:
    """Memory-mapped reader for the binary chunked trace format.

    Segments are served as read-only NumPy views over the map whenever a
    segment falls inside one chunk; segments spanning chunk boundaries are
    assembled with one segment-sized concatenation.  Either way, resident
    memory is bounded by the segment size — the OS pages trace data in and
    out beneath the views.
    """

    def __init__(self, path: str | Path, name: str | None = None) -> None:
        self._path = Path(path)
        self._handle = self._path.open("rb")
        try:
            self._map = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-byte file
            self._handle.close()
            raise TraceError(f"{self._path}: not a binary trace: {exc}") from exc
        try:
            self._parse_header(name)
            self._index_chunks()
        except Exception:
            self.close()
            raise

    def _parse_header(self, name: str | None) -> None:
        if len(self._map) < _HEADER.size:
            raise TraceError(f"{self._path}: truncated binary trace header")
        magic, version, name_len, count = _HEADER.unpack_from(self._map, 0)
        if magic != _MAGIC:
            raise TraceError(f"{self._path}: not a binary trace (bad magic)")
        if version != _VERSION:
            raise TraceError(
                f"{self._path}: unsupported binary trace version {version}"
            )
        name_end = _HEADER.size + name_len
        if name_end > len(self._map):
            raise TraceError(f"{self._path}: truncated binary trace name")
        stored_name = bytes(self._map[_HEADER.size : name_end]).decode("utf-8")
        self.name = name if name is not None else (stored_name or self._path.stem)
        self._count = count
        self._data_start = name_end + _pad_to_8(name_len)

    def _index_chunks(self) -> None:
        """Walk the chunk headers once and record (kinds, addresses) spans."""
        self._chunks: list[tuple[int, int, int]] = []  # (kinds_off, addr_off, count)
        offset = self._data_start
        total = 0
        size = len(self._map)
        while offset < size:
            if offset + 8 > size:
                raise TraceError(f"{self._path}: truncated chunk header")
            (count,) = struct.unpack_from("<Q", self._map, offset)
            kinds_off = offset + 8
            addr_off = kinds_off + count + _pad_to_8(count)
            end = addr_off + 8 * count
            if end > size:
                raise TraceError(f"{self._path}: truncated chunk data")
            self._chunks.append((kinds_off, addr_off, count))
            total += count
            offset = end
        if total != self._count:
            raise TraceError(
                f"{self._path}: header records {self._count} accesses but chunks "
                f"hold {total} (file truncated or writer not closed)"
            )

    def __len__(self) -> int:
        return self._count

    def _chunk_arrays(self, chunk: tuple[int, int, int]) -> tuple[np.ndarray, np.ndarray]:
        kinds_off, addr_off, count = chunk
        kinds = np.frombuffer(self._map, dtype=np.int8, count=count, offset=kinds_off)
        addresses = np.frombuffer(
            self._map, dtype=np.int64, count=count, offset=addr_off
        )
        return kinds, addresses

    def segments(
        self, segment_accesses: int = DEFAULT_SEGMENT_ACCESSES
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield read-only ``(kinds, addresses)`` segments in trace order."""
        _check_segment_accesses(segment_accesses)
        pending_k: list[np.ndarray] = []
        pending_a: list[np.ndarray] = []
        pending = 0
        for chunk in self._chunks:
            kinds, addresses = self._chunk_arrays(chunk)
            start = 0
            while start < kinds.size:
                take = min(segment_accesses - pending, kinds.size - start)
                pending_k.append(kinds[start : start + take])
                pending_a.append(addresses[start : start + take])
                pending += take
                start += take
                if pending == segment_accesses:
                    yield self._emit(pending_k, pending_a)
                    pending_k, pending_a, pending = [], [], 0
        if pending:
            yield self._emit(pending_k, pending_a)

    @staticmethod
    def _emit(
        kinds: list[np.ndarray], addresses: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        if len(kinds) == 1:
            segment = (kinds[0], addresses[0])
        else:
            segment = (np.concatenate(kinds), np.concatenate(addresses))
        k = segment[0]
        if k.size and (k.min() < 0 or k.max() >= len(KIND_ORDER)):
            raise TraceError("corrupt binary trace: kind code out of range")
        return segment

    def close(self) -> None:
        """Release the memory map and file handle.

        Segment arrays are views over the map; while any is still alive the
        mapping cannot be unmapped and is instead released when the last
        view is garbage collected.
        """
        try:
            self._map.close()
        except BufferError:
            pass  # live segment views; the map is freed with them
        self._handle.close()

    def __enter__(self) -> "BinaryTraceSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- text formats --------------------------------------------------------------

#: din-style numeric labels: 0 = load, 1 = store, 2 = instruction fetch.
_DIN_KIND = {"0": _L2_READ_INDEX, "1": _L2_WRITE_INDEX, "2": _L2_READ_INDEX}

#: lackey operations mapped to KIND_ORDER indices (M expands to both).
_LACKEY_KIND = {
    "I": (_L2_READ_INDEX,),
    "L": (_L2_READ_INDEX,),
    "S": (_L2_WRITE_INDEX,),
    "M": (_L2_READ_INDEX, _L2_WRITE_INDEX),
}


def _skip_line(line: str) -> bool:
    return not line or line.startswith("#") or line.startswith("==")


def _parse_address(token: str) -> int:
    address = int(token, 16)
    if address < 0:
        raise ValueError("trace addresses must be non-negative")
    return address


class TextTraceSource:
    """Streaming reader for the supported text trace formats.

    The file is parsed twice: once on open to count records (so the engines
    can report ``num_accesses`` and size progress displays), and once per
    :meth:`segments` pass.  Both passes hold one line plus one segment of
    decoded arrays in memory at a time.
    """

    def __init__(
        self, path: str | Path, format: str = "text", name: str | None = None
    ) -> None:
        if format not in ("text", "din", "lackey"):
            raise TraceError(
                f"unknown text trace format {format!r}; "
                f"choose one of ('text', 'din', 'lackey')"
            )
        self._path = Path(path)
        self.format = format
        self.name = name if name is not None else self._path.stem
        self._count = sum(1 for _ in self._records())

    def __len__(self) -> int:
        return self._count

    def _records(self) -> Iterator[tuple[int, int]]:
        """Yield ``(kind index, address)`` pairs with path:line error context."""
        parse = getattr(self, f"_parse_{self.format}")
        with self._path.open("r", encoding="utf-8", errors="replace") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if _skip_line(line):
                    continue
                try:
                    yield from parse(line)
                except (TraceError, ValueError) as exc:
                    raise TraceError(
                        f"{self._path}:{line_number}: {exc}"
                    ) from exc

    @staticmethod
    def _parse_text(line: str) -> Iterator[tuple[int, int]]:
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"expected '<kind> <address>', got {line!r}")
        yield _KIND_INDEX[AccessKind(parts[0])], _parse_address(parts[1])

    @staticmethod
    def _parse_din(line: str) -> Iterator[tuple[int, int]]:
        parts = line.split()
        if len(parts) < 2 or parts[0] not in _DIN_KIND:
            raise ValueError(
                f"expected '<0|1|2> <hex address>' (din-style), got {line!r}"
            )
        yield _DIN_KIND[parts[0]], _parse_address(parts[1])

    @staticmethod
    def _parse_lackey(line: str) -> Iterator[tuple[int, int]]:
        parts = line.split()
        if len(parts) != 2 or parts[0] not in _LACKEY_KIND:
            raise ValueError(
                f"expected 'I|L|S|M <hex address>,<size>' (lackey-style), "
                f"got {line!r}"
            )
        address = _parse_address(parts[1].split(",", 1)[0])
        for kind_index in _LACKEY_KIND[parts[0]]:
            yield kind_index, address

    def segments(
        self, segment_accesses: int = DEFAULT_SEGMENT_ACCESSES
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(kinds, addresses)`` segments decoded on the fly."""
        _check_segment_accesses(segment_accesses)
        kinds = np.empty(segment_accesses, dtype=np.int8)
        addresses = np.empty(segment_accesses, dtype=np.int64)
        filled = 0
        for kind_index, address in self._records():
            kinds[filled] = kind_index
            addresses[filled] = address
            filled += 1
            if filled == segment_accesses:
                yield kinds, addresses
                kinds = np.empty(segment_accesses, dtype=np.int8)
                addresses = np.empty(segment_accesses, dtype=np.int64)
                filled = 0
        if filled:
            yield kinds[:filled], addresses[:filled]

    def close(self) -> None:
        """Nothing to release; present for :class:`TraceSource` symmetry."""

    def __enter__(self) -> "TextTraceSource":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def detect_format(path: str | Path) -> str:
    """Detect a trace file's format from its magic or first significant line.

    Returns one of ``"binary"``, ``"text"``, ``"din"`` or ``"lackey"``.

    Raises:
        TraceError: if no supported format matches.
    """
    path = Path(path)
    with path.open("rb") as handle:
        head = handle.read(len(_MAGIC))
    if head == _MAGIC:
        return "binary"
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if _skip_line(line):
                continue
            parts = line.split()
            first = parts[0]
            if first in _DIN_KIND and len(parts) >= 2:
                return "din"
            if first in _LACKEY_KIND and len(parts) == 2 and "," in parts[1]:
                return "lackey"
            if first in AccessKind._value2member_map_ and len(parts) == 2:
                return "text"
            raise TraceError(
                f"{path}: unrecognised trace format (first significant line: "
                f"{line!r})"
            )
    raise TraceError(f"{path}: empty trace file, cannot detect format")


def open_trace(
    path: str | Path, format: str = "auto", name: str | None = None
) -> TraceSource:
    """Open a trace file of any supported format as a :class:`TraceSource`.

    Args:
        path: Trace file path.
        format: ``"binary"``, ``"text"``, ``"din"``, ``"lackey"`` or
            ``"auto"`` (the default) to detect from the file contents.
        name: Trace name override; defaults to the stored name (binary) or
            the file stem (text formats).

    Raises:
        TraceError: on unknown/undetectable formats or malformed files.
    """
    if format not in FORMAT_CHOICES:
        raise TraceError(
            f"unknown trace format {format!r}; choose one of {FORMAT_CHOICES}"
        )
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    if format == "auto":
        format = detect_format(path)
    if format == "binary":
        return BinaryTraceSource(path, name=name)
    return TextTraceSource(path, format, name=name)


def read_trace(path: str | Path, format: str = "auto", name: str | None = None) -> Trace:
    """Load any supported trace file fully into an in-memory :class:`Trace`.

    Convenience for small traces and tests; use :func:`open_trace` plus the
    engines' ``segment_accesses`` for out-of-core replay.
    """
    source = open_trace(path, format=format, name=name)
    try:
        trace = Trace(name=source.name)
        for kinds, addresses in source.segments():
            trace.extend(
                TraceRecord(kind=KIND_ORDER[k], address=int(a))
                for k, a in zip(kinds.tolist(), addresses.tolist())
            )
        return trace
    finally:
        close = getattr(source, "close", None)
        if close is not None:
            close()
