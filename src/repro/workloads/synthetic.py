"""CPU-level synthetic access-pattern generators.

These generators produce instruction-fetch / load / store streams for the
two-level hierarchy front end.  They model the classic microbenchmark
patterns — sequential streaming, strided array walks, pointer chasing, hot
loops — and can be mixed to approximate application phases.  The SPEC-named
L2-level profiles used for the paper's figures live in
:mod:`repro.workloads.spec_profiles`; the CPU-level generators here are used
by the examples and the hierarchy tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .trace import AccessKind, Trace, TraceRecord


def _check_positive(name: str, value: int) -> None:
    if value <= 0:
        raise TraceError(f"{name} must be positive")


def sequential_trace(
    name: str = "sequential",
    num_accesses: int = 10_000,
    start_address: int = 0x10_0000,
    stride_bytes: int = 8,
    store_fraction: float = 0.0,
    seed: int = 1,
) -> Trace:
    """A streaming walk over a contiguous region (no temporal reuse)."""
    _check_positive("num_accesses", num_accesses)
    _check_positive("stride_bytes", stride_bytes)
    if not 0.0 <= store_fraction <= 1.0:
        raise TraceError("store_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    trace = Trace(name=name)
    for i in range(num_accesses):
        address = start_address + i * stride_bytes
        kind = AccessKind.STORE if rng.random() < store_fraction else AccessKind.LOAD
        trace.append(TraceRecord(kind=kind, address=address))
    return trace


def strided_trace(
    name: str = "strided",
    num_accesses: int = 10_000,
    start_address: int = 0x20_0000,
    stride_bytes: int = 256,
    array_bytes: int = 1 << 20,
    store_fraction: float = 0.1,
    seed: int = 1,
) -> Trace:
    """A strided walk that wraps around a fixed-size array (regular reuse)."""
    _check_positive("num_accesses", num_accesses)
    _check_positive("stride_bytes", stride_bytes)
    _check_positive("array_bytes", array_bytes)
    rng = np.random.default_rng(seed)
    trace = Trace(name=name)
    offset = 0
    for _ in range(num_accesses):
        address = start_address + offset
        kind = AccessKind.STORE if rng.random() < store_fraction else AccessKind.LOAD
        trace.append(TraceRecord(kind=kind, address=address))
        offset = (offset + stride_bytes) % array_bytes
    return trace


def pointer_chase_trace(
    name: str = "pointer-chase",
    num_accesses: int = 10_000,
    num_nodes: int = 4_096,
    node_bytes: int = 64,
    start_address: int = 0x40_0000,
    seed: int = 1,
) -> Trace:
    """A random pointer chase over a fixed node pool (irregular reuse)."""
    _check_positive("num_accesses", num_accesses)
    _check_positive("num_nodes", num_nodes)
    _check_positive("node_bytes", node_bytes)
    rng = np.random.default_rng(seed)
    # A random permutation cycle gives every node exactly one successor.
    order = rng.permutation(num_nodes)
    successor = np.empty(num_nodes, dtype=np.int64)
    successor[order] = np.roll(order, -1)
    trace = Trace(name=name)
    node = int(order[0])
    for _ in range(num_accesses):
        trace.append(
            TraceRecord(kind=AccessKind.LOAD, address=start_address + node * node_bytes)
        )
        node = int(successor[node])
    return trace


def hot_loop_trace(
    name: str = "hot-loop",
    num_accesses: int = 10_000,
    code_bytes: int = 4_096,
    data_bytes: int = 64 * 1024,
    loads_per_iteration: int = 4,
    stores_per_iteration: int = 1,
    code_address: int = 0x1000,
    data_address: int = 0x80_0000,
    seed: int = 1,
) -> Trace:
    """A small instruction loop repeatedly touching a modest data working set."""
    _check_positive("num_accesses", num_accesses)
    _check_positive("code_bytes", code_bytes)
    _check_positive("data_bytes", data_bytes)
    if loads_per_iteration < 0 or stores_per_iteration < 0:
        raise TraceError("per-iteration access counts must be non-negative")
    rng = np.random.default_rng(seed)
    trace = Trace(name=name)
    pc = 0
    while len(trace) < num_accesses:
        trace.append(TraceRecord(kind=AccessKind.IFETCH, address=code_address + pc))
        pc = (pc + 4) % code_bytes
        for _ in range(loads_per_iteration):
            if len(trace) >= num_accesses:
                break
            offset = int(rng.integers(0, data_bytes // 8)) * 8
            trace.append(TraceRecord(kind=AccessKind.LOAD, address=data_address + offset))
        for _ in range(stores_per_iteration):
            if len(trace) >= num_accesses:
                break
            offset = int(rng.integers(0, data_bytes // 8)) * 8
            trace.append(TraceRecord(kind=AccessKind.STORE, address=data_address + offset))
    return trace


def mixed_trace(
    name: str,
    components: list[Trace],
    seed: int = 1,
) -> Trace:
    """Randomly interleave several traces into one (phase-mixed workload).

    The relative lengths of the components set their mixing weights; each
    component's internal order is preserved.
    """
    if not components:
        raise TraceError("at least one component trace is required")
    rng = np.random.default_rng(seed)
    iterators = [list(c.records) for c in components]
    positions = [0] * len(components)
    remaining = [len(c) for c in components]
    trace = Trace(name=name)
    while any(remaining):
        weights = np.array(remaining, dtype=float)
        weights /= weights.sum()
        choice = int(rng.choice(len(components), p=weights))
        trace.append(iterators[choice][positions[choice]])
        positions[choice] += 1
        remaining[choice] -= 1
    return trace
