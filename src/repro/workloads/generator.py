"""L2-level trace generation from SPEC workload profiles.

The generator materialises a :class:`~repro.workloads.trace.Trace` of L2
reads and write-backs whose *per-set access sequences* reproduce the
behaviour a profile describes.  Concealed-read accumulation is entirely a
per-set phenomenon (every parallel access to a set adds one concealed read to
each other resident way), so the generator works set by set:

* **Stable sets** hold a handful of hot lines that are re-read constantly
  (small concealed-read counts) plus one or two cold lines that are re-read
  only after a log-normally distributed number of intervening set accesses —
  these produce the heavy tails of Fig. 3 and the large REAP gains of Fig. 5.
* **Churn sets** mix streaming misses (brand-new blocks) with short-distance
  re-reads, producing fills, evictions and small concealed-read counts.

Per-set streams are generated independently and then interleaved by a
weighted random merge; the interleaving does not change any per-set order, so
the reliability behaviour is exactly the union of the per-set behaviours
while the global trace still looks like a realistic mixed access stream.
"""

from __future__ import annotations

import numpy as np

from ..cache.address import AddressMapper
from ..config import CacheLevelConfig
from ..errors import ConfigurationError, TraceError
from .spec_profiles import SPECWorkloadProfile
from .trace import AccessKind, Trace, TraceRecord


class _SetStreamBuilder:
    """Builds the access stream of one cache set."""

    def __init__(
        self,
        mapper: AddressMapper,
        set_index: int,
        profile: SPECWorkloadProfile,
        rng: np.random.Generator,
    ) -> None:
        self._mapper = mapper
        self._set_index = set_index
        self._profile = profile
        self._rng = rng
        self._next_fresh_tag = 1  # tag 0 is reserved for hot/cold lines' base
        self._live_tags: set[int] = set()

    def _address(self, tag: int) -> int:
        return self._mapper.compose(tag, self._set_index)

    def _fresh_tag(self) -> int:
        """Next unused tag, skipping tags that are still live on wraparound.

        Tags 1..max_tag are issued round-robin; a tag registered through
        :meth:`_claim_tag` (hot/cold lines, churn reuse-window residents)
        is never re-issued while it is live, so very long streams cannot
        silently alias two distinct lines onto one address.
        """
        max_tag = (1 << self._mapper.config.tag_bits) - 1
        if len(self._live_tags) >= max_tag:
            raise TraceError(
                f"tag space exhausted for set {self._set_index}: all {max_tag} "
                f"usable tags ({self._mapper.config.tag_bits} tag bits, tag 0 "
                "reserved) are live"
            )
        tag = self._next_fresh_tag
        while tag in self._live_tags:
            tag += 1
            if tag > max_tag:
                tag = 1
        self._next_fresh_tag = tag + 1
        if self._next_fresh_tag > max_tag:
            self._next_fresh_tag = 1
        return tag

    def _claim_tag(self) -> int:
        """Draw a fresh tag and keep it live (excluded from reuse)."""
        tag = self._fresh_tag()
        self._live_tags.add(tag)
        return tag

    def _release_tag(self, tag: int) -> None:
        self._live_tags.discard(tag)

    def stable_stream(self, length: int) -> list[TraceRecord]:
        """Stream for a stable set: hot re-reads plus scheduled cold re-reads.

        Sampled cold gaps are capped at half the per-set stream length so that
        short calibration runs still exercise the cold re-read mechanism; the
        observed concealed-read tail therefore grows with trace length, just
        as the paper's tails grow with the simulated instruction count.
        """
        profile = self._profile
        gap_cap = max(length // 2, 1)
        hot_tags = [self._claim_tag() for _ in range(profile.hot_lines_per_set)]
        cold_tags = [self._claim_tag() for _ in range(profile.cold_lines_per_set)]
        records: list[TraceRecord] = []

        # Install the resident lines up front so later accesses hit.
        for tag in hot_tags + cold_tags:
            records.append(TraceRecord(AccessKind.L2_READ, self._address(tag)))

        # Schedule the next re-read time (in set accesses) of each cold line.
        cold_next: list[int] = []
        for _ in cold_tags:
            cold_next.append(len(records) + min(self._sample_gap(), gap_cap))

        hot_cursor = 0
        while len(records) < length:
            position = len(records)
            due = [i for i, when in enumerate(cold_next) if when <= position]
            if due and cold_tags:
                index = due[0]
                records.append(
                    TraceRecord(AccessKind.L2_READ, self._address(cold_tags[index]))
                )
                cold_next[index] = len(records) + min(self._sample_gap(), gap_cap)
                continue
            tag = hot_tags[hot_cursor % len(hot_tags)]
            hot_cursor += 1
            if self._rng.random() < profile.write_fraction:
                records.append(TraceRecord(AccessKind.L2_WRITE, self._address(tag)))
            else:
                records.append(TraceRecord(AccessKind.L2_READ, self._address(tag)))
        return records[:length]

    def churn_stream(self, length: int) -> list[TraceRecord]:
        """Stream for a churn set: streaming misses plus short-distance reuse."""
        profile = self._profile
        recent: list[int] = []
        records: list[TraceRecord] = []
        while len(records) < length:
            is_write = self._rng.random() < profile.write_fraction
            if not recent or self._rng.random() < profile.churn_miss_fraction:
                tag = self._claim_tag()
            else:
                tag = int(self._rng.choice(recent))
            kind = AccessKind.L2_WRITE if is_write else AccessKind.L2_READ
            records.append(TraceRecord(kind, self._address(tag)))
            recent.append(tag)
            if len(recent) > profile.churn_reuse_window:
                expired = recent.pop(0)
                if expired not in recent:
                    self._release_tag(expired)
        return records

    def _sample_gap(self) -> int:
        profile = self._profile
        if profile.cold_gap_sigma == 0.0:
            gap = profile.cold_gap_median
        else:
            gap = self._rng.lognormal(
                mean=np.log(profile.cold_gap_median), sigma=profile.cold_gap_sigma
            )
        return max(int(round(gap)), 1)


def generate_l2_trace(
    profile: SPECWorkloadProfile,
    config: CacheLevelConfig,
    num_accesses: int = 200_000,
    seed: int = 1,
) -> Trace:
    """Generate an L2-level trace for one SPEC-named profile.

    Args:
        profile: The workload profile.
        config: Geometry of the L2 the trace will drive (used to compose
            addresses that land in the intended sets).
        num_accesses: Total number of L2 accesses to generate.
        seed: Random seed; the same (profile, config, num_accesses, seed)
            always yields the same trace.

    Returns:
        A :class:`Trace` of ``L2_READ`` / ``L2_WRITE`` records.

    Raises:
        TraceError: if ``num_accesses`` is not positive.
        ConfigurationError: if the profile needs more sets than the cache has.
    """
    if num_accesses <= 0:
        raise TraceError("num_accesses must be positive")
    total_sets_needed = profile.num_stable_sets + profile.num_churn_sets
    if total_sets_needed > config.num_sets:
        raise ConfigurationError(
            f"profile {profile.name!r} needs {total_sets_needed} sets but the cache "
            f"has only {config.num_sets}"
        )

    rng = np.random.default_rng(seed)
    mapper = AddressMapper(config)
    chosen_sets = rng.choice(config.num_sets, size=total_sets_needed, replace=False)
    stable_sets = [int(s) for s in chosen_sets[: profile.num_stable_sets]]
    churn_sets = [int(s) for s in chosen_sets[profile.num_stable_sets :]]

    # Split the access budget between the stable and churn populations.
    stable_budget = int(round(num_accesses * profile.stable_traffic_share))
    churn_budget = num_accesses - stable_budget

    streams: list[list[TraceRecord]] = []
    if stable_sets and stable_budget > 0:
        per_set = _split_budget(stable_budget, len(stable_sets), rng)
        for set_index, length in zip(stable_sets, per_set):
            if length == 0:
                continue
            builder = _SetStreamBuilder(mapper, set_index, profile, rng)
            streams.append(builder.stable_stream(length))
    if churn_sets and churn_budget > 0:
        per_set = _split_budget(churn_budget, len(churn_sets), rng)
        for set_index, length in zip(churn_sets, per_set):
            if length == 0:
                continue
            builder = _SetStreamBuilder(mapper, set_index, profile, rng)
            streams.append(builder.churn_stream(length))

    return Trace(name=profile.name, records=_weighted_merge(streams, rng))


def _split_budget(total: int, parts: int, rng: np.random.Generator) -> list[int]:
    """Split ``total`` accesses roughly evenly over ``parts`` sets."""
    if parts <= 0:
        return []
    base = total // parts
    remainder = total - base * parts
    budgets = [base] * parts
    for index in rng.choice(parts, size=remainder, replace=False):
        budgets[int(index)] += 1
    return budgets


def _weighted_merge(
    streams: list[list[TraceRecord]], rng: np.random.Generator
) -> list[TraceRecord]:
    """Randomly interleave several streams, preserving each stream's order.

    A uniformly random interleaving is drawn by shuffling the multiset of
    stream identifiers (one entry per record) and consuming each stream in
    order as its identifier comes up.
    """
    active = [s for s in streams if s]
    if not active:
        return []
    order = np.concatenate(
        [np.full(len(stream), index, dtype=np.int32) for index, stream in enumerate(active)]
    )
    rng.shuffle(order)
    positions = [0] * len(active)
    merged: list[TraceRecord] = []
    for stream_index in order:
        stream = active[stream_index]
        merged.append(stream[positions[stream_index]])
        positions[stream_index] += 1
    return merged
