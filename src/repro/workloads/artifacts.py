"""Cross-job artifact cache for decoded traces and L1-filtered streams.

Campaigns that sweep MTJ/ECC parameters over a fixed workload mix re-derive
the same expensive inputs in every job: the synthetic L2 trace is
regenerated record by record, and (on the CPU path) the L1 filter replays
the same CPU stream against the same L1 configuration.  Both derivations
are pure functions of a small recipe, so this module persists them once per
worker machine in a content-hash-keyed, mmap-backed cache:

* **Decoded L2 traces** are stored in the binary chunked trace format
  (:mod:`repro.workloads.streams`); a hit serves a zero-copy
  :class:`~repro.workloads.streams.BinaryTraceSource`, which the engines
  replay through the segmented path that is bit-identical to whole-trace
  replay, so results are byte-identical with the cache cold, warm, or
  disabled.
* **L1-filtered L2 streams** are stored as a binary trace of the realised
  L2 requests plus a pickled end-state sidecar (L1 block fields, policy
  state, statistics), keyed by :meth:`Trace.content_hash` + the L1
  configuration + the seed — so sweeping the L1 configuration naturally
  keys separate entries instead of reusing a stale stream.

Concurrency and failure semantics mirror the campaign result stores:
artifacts are written to a temporary file in the cache directory and
published with an atomic :func:`os.replace`, so racing writers each leave a
complete file and the last one wins (both compute identical bytes for one
key).  A truncated or corrupt artifact reads as a miss and is recomputed
(and rewritten, healing the entry); an unwritable cache directory degrades
to uncached operation with a single deduplicated warning per directory.

The cache location is an operational knob — CLI ``--artifact-cache`` or the
``REPRO_ARTIFACT_CACHE`` environment variable — and never enters job
identity: :class:`~repro.campaign.spec.JobSpec` keys and experiment
settings are unchanged by it, exactly like the engine/kernel selection.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile
import warnings
from dataclasses import asdict
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import TraceError
from ..telemetry import emit_counter
from .generator import generate_l2_trace
from .streams import BinaryTraceSource, BinaryTraceWriter, TraceSource
from .trace import Trace

#: Environment override for the cache directory (CLI flags take precedence
#: where a flag exists; workers resolve the environment first so a machine
#: can force its own location or disable caching outright).
ARTIFACT_CACHE_ENV = "REPRO_ARTIFACT_CACHE"

#: Spellings that explicitly disable the cache.
_DISABLED = frozenset({"", "0", "off", "none", "disabled"})

#: Recipe schema version; bump when a key payload or artifact layout changes.
_SCHEMA = 1

#: Cache directories already warned about (unwritable → degrade once).
_warned_roots: set[str] = set()


def _reset_warned_roots() -> None:
    """Forget which cache directories have warned (test hook)."""
    _warned_roots.clear()


def _recipe_hash(payload: Any) -> str:
    # Lazy import: the campaign package imports the sim stack, which imports
    # this package — resolving at call time keeps module import acyclic
    # while reusing the one canonical hashing implementation.
    from ..campaign.hashing import content_hash

    return content_hash(payload)


def _emit(kind: str, outcome: str, nbytes: int = 0) -> None:
    # The field is named ``artifact`` (not ``kind``) because emitted fields
    # merge into the event envelope, whose ``kind`` key is the event kind.
    emit_counter("cache.artifact", artifact=kind, outcome=outcome, bytes=nbytes)


class ArtifactCache:
    """A content-addressed on-disk cache of derived workload artifacts.

    Instances are cheap; every operation degrades to a miss (never an
    exception) when the underlying directory misbehaves, so a worker with a
    broken cache computes exactly what an uncached worker would.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactCache({str(self.root)!r})"

    @classmethod
    def resolve(
        cls, spec: "ArtifactCache | str | Path | None" = None
    ) -> "ArtifactCache | None":
        """Resolve a cache from an explicit spec or the environment.

        An explicit ``spec`` wins; otherwise ``REPRO_ARTIFACT_CACHE`` is
        consulted.  The disabling spellings (empty, ``0``, ``off``,
        ``none``, ``disabled``) return ``None`` so either channel can turn
        caching off explicitly.
        """
        if isinstance(spec, cls):
            return spec
        if spec is None:
            spec = os.environ.get(ARTIFACT_CACHE_ENV)
        if spec is None or str(spec).strip().lower() in _DISABLED:
            return None
        return cls(spec)

    # -- low-level storage ------------------------------------------------------

    def _publish(self, path: Path, write_to) -> bool:
        """Write an artifact atomically; degrade (with one warning) on failure.

        ``write_to`` receives a temporary path in the same directory and
        must leave a complete file there; the temp file is then renamed
        over ``path``.  Racing writers both succeed — artifact content is a
        pure function of the key, so whichever rename lands last publishes
        the same bytes.
        """
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name + ".", suffix=".tmp"
            )
            os.close(fd)
            write_to(tmp)
            os.replace(tmp, path)
            return True
        except OSError as exc:
            self._warn_unwritable(exc)
            return False
        finally:
            if tmp is not None:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)

    def _warn_unwritable(self, exc: Exception) -> None:
        root_key = str(self.root)
        if root_key in _warned_roots:
            return
        _warned_roots.add(root_key)
        warnings.warn(
            f"artifact cache at {root_key} is not writable ({exc}); "
            "continuing uncached",
            RuntimeWarning,
            stacklevel=4,
        )

    # -- decoded L2 traces ------------------------------------------------------

    def trace_key(self, profile, config, num_accesses: int, seed: int) -> str:
        """Recipe key of a generated L2 trace.

        The key spans exactly the inputs :func:`generate_l2_trace` reads:
        the profile fields and the address geometry of the target L2.  ECC,
        MTJ and read-path settings are deliberately excluded, so sweeping
        them hits one shared trace artifact.
        """
        return _recipe_hash(
            {
                "schema": _SCHEMA,
                "kind": "l2-trace",
                "profile": asdict(profile),
                "geometry": {
                    "size_bytes": config.size_bytes,
                    "associativity": config.associativity,
                    "block_size_bytes": config.block_size_bytes,
                    "address_bits": config.address_bits,
                },
                "num_accesses": num_accesses,
                "seed": seed,
            }
        )

    def _trace_path(self, key: str) -> Path:
        return self.root / "traces" / f"{key}.reaptrc"

    def _open_trace(self, path: Path, kind: str) -> BinaryTraceSource | None:
        try:
            if not path.is_file():
                _emit(kind, "miss")
                return None
            source = BinaryTraceSource(path)
        except (TraceError, OSError, ValueError):
            # Truncated or corrupt artifact: treat as a miss; the recompute
            # below rewrites (heals) the entry atomically.
            _emit(kind, "error")
            return None
        _emit(kind, "hit", nbytes=path.stat().st_size)
        return source

    def l2_trace(self, profile, config, num_accesses: int, seed: int):
        """A cached trace source for the recipe, generating on miss.

        Returns a :class:`BinaryTraceSource` on a hit (replayed through the
        bit-identical segmented path) or the freshly generated in-memory
        :class:`Trace` on a miss, after persisting it for the next job.
        """
        key = self.trace_key(profile, config, num_accesses, seed)
        path = self._trace_path(key)
        source = self._open_trace(path, "trace")
        if source is not None:
            return source
        trace = generate_l2_trace(profile, config, num_accesses, seed=seed)
        kinds, addresses = trace.decoded()

        def write_to(tmp: str) -> None:
            with BinaryTraceWriter(tmp, trace.name) as writer:
                writer.append(kinds, addresses)

        if self._publish(path, write_to):
            _emit("trace", "store", nbytes=path.stat().st_size)
        return trace

    def binary_text_trace(self, path: str | Path, source: TraceSource):
        """A binary-format mirror of a text trace file, converted once.

        Keyed by the file's identity (absolute path, size, mtime): editing
        the file invalidates the entry.  On any cache failure the original
        ``source`` is returned unchanged.
        """
        try:
            stat = Path(path).stat()
            key = _recipe_hash(
                {
                    "schema": _SCHEMA,
                    "kind": "text-trace",
                    "path": str(Path(path).resolve()),
                    "size": stat.st_size,
                    "mtime_ns": stat.st_mtime_ns,
                }
            )
        except OSError:
            return source
        cache_path = self._trace_path(key)
        cached = self._open_trace(cache_path, "trace")
        if cached is not None:
            return cached

        def write_to(tmp: str) -> None:
            with BinaryTraceWriter(tmp, source.name) as writer:
                for kinds, addresses in source.segments():
                    writer.append(kinds, addresses)

        if not self._publish(cache_path, write_to):
            return source
        _emit("trace", "store", nbytes=cache_path.stat().st_size)
        converted = self._open_trace(cache_path, "trace")
        return converted if converted is not None else source

    # -- L1-filtered L2 streams -------------------------------------------------

    def l1_stream_key(self, trace_hash: str, hierarchy_config, seed: int) -> str:
        """Recipe key of an L1-filtered stream.

        Includes the full L1I/L1D configurations, so a campaign sweeping
        the L1 configuration keys distinct entries (filtered-stream reuse
        is effectively skipped across the sweep axis) instead of sharing a
        stale stream.
        """
        return _recipe_hash(
            {
                "schema": _SCHEMA,
                "kind": "l1-stream",
                "trace": trace_hash,
                "l1i": hierarchy_config.l1i.to_dict(),
                "l1d": hierarchy_config.l1d.to_dict(),
                "seed": seed,
            }
        )

    def _stream_paths(self, key: str) -> tuple[Path, Path]:
        base = self.root / "l1"
        return base / f"{key}.reaptrc", base / f"{key}.state"

    def load_l1_stream(
        self, key: str
    ) -> tuple[np.ndarray, np.ndarray, Any] | None:
        """Load a filtered stream: ``(codes, addresses, state)`` or ``None``.

        ``codes`` are the engine's L2 codes (0 read, 1 write-back);
        ``state`` is the opaque end-state object stored alongside.
        """
        stream_path, state_path = self._stream_paths(key)
        if not (stream_path.is_file() and state_path.is_file()):
            _emit("l1-stream", "miss")
            return None
        try:
            source = BinaryTraceSource(stream_path)
            parts = [(k, a) for k, a in source.segments()]
            if parts:
                kinds = np.concatenate([k for k, _ in parts])
                addresses = np.concatenate([a for _, a in parts])
            else:
                kinds = np.zeros(0, dtype=np.int8)
                addresses = np.zeros(0, dtype=np.int64)
            with state_path.open("rb") as handle:
                state = pickle.load(handle)
        except (
            TraceError,
            OSError,
            ValueError,
            KeyError,
            EOFError,
            AttributeError,
            ImportError,
            IndexError,
            pickle.UnpicklingError,
        ):
            _emit("l1-stream", "error")
            return None
        # Stored kinds are the L2-level KIND_ORDER indices (3 read, 4
        # write-back); map back to the engines' 0/1 codes.
        codes = (kinds - 3).astype(np.int8)
        nbytes = stream_path.stat().st_size + state_path.stat().st_size
        _emit("l1-stream", "hit", nbytes=nbytes)
        return codes, addresses, state

    def store_l1_stream(
        self,
        key: str,
        name: str,
        codes: np.ndarray,
        addresses: np.ndarray,
        state: Any,
    ) -> bool:
        """Persist a filtered stream and its end state; False on degrade."""
        try:
            blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable policy state (e.g. an exotic replacement policy):
            # skip caching rather than fail the run.
            _emit("l1-stream", "skip")
            return False
        kinds = (np.asarray(codes, dtype=np.int8) + 3).astype(np.int8)
        addresses = np.asarray(addresses, dtype=np.int64)
        stream_path, state_path = self._stream_paths(key)
        if not self._publish(state_path, lambda tmp: Path(tmp).write_bytes(blob)):
            return False

        def write_to(tmp: str) -> None:
            with BinaryTraceWriter(tmp, name) as writer:
                writer.append(kinds, addresses)

        if not self._publish(stream_path, write_to):
            return False
        nbytes = stream_path.stat().st_size + state_path.stat().st_size
        _emit("l1-stream", "store", nbytes=nbytes)
        return True
