"""SPEC CPU2006-named synthetic workload profiles.

The paper drives its L2 with SPEC CPU2006 workloads executed in gem5.  Those
traces are not redistributable, so the reproduction replaces each benchmark
with a *profile*: a small set of parameters describing the L2-level behaviour
that determines the paper's figures —

* how the workload's L2 read stream splits between "stable" sets (long-lived
  resident lines that are re-read after many intervening accesses, producing
  large concealed-read counts) and "churn" sets (streaming misses and
  short-distance reuse, producing small counts),
* how long the cold re-read gaps are (log-normal median and sigma), and
* the write-back and miss intensity, which set the energy mix of Fig. 6.

The parameters were chosen so the reproduction preserves the paper's
qualitative structure: `mcf` has essentially no long-lived re-reads and gains
least from REAP (paper: 7.9x); `namd`, `dealII` and `h264ref` have heavy
concealed-read tails and gain >1000x; `cactusADM` is read-dominated and shows
the largest energy overhead (paper: 6.5%) while `xalancbmk` is write/miss
dominated and shows the smallest (paper: 1.0%).  The per-workload
``paper_*`` fields record those qualitative reference points for
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SPECWorkloadProfile:
    """Synthetic L2-behaviour profile standing in for one SPEC benchmark.

    Attributes:
        name: Benchmark name (e.g. ``"perlbench"``).
        write_fraction: Fraction of L2 accesses that are write-backs from L1.
        stable_traffic_share: Fraction of L2 accesses directed at stable sets.
        num_stable_sets: Number of stable sets receiving that traffic.
        num_churn_sets: Number of churn sets receiving the remainder.
        hot_lines_per_set: Frequently re-read lines resident in a stable set.
        cold_lines_per_set: Long-lived, rarely re-read lines per stable set.
        cold_gap_median: Median number of intervening set accesses before a
            cold line is re-read (the concealed-read count it accumulates).
        cold_gap_sigma: Log-normal sigma of the cold re-read gap.
        churn_miss_fraction: Fraction of churn-set reads that miss (stream).
        churn_reuse_window: How many recently-touched churn blocks are
            eligible for short-distance re-reads.
        description: One-line behavioural summary.
        paper_mttf_note: Paper-reported MTTF-improvement reference, if any.
        paper_energy_note: Paper-reported energy-overhead reference, if any.
    """

    name: str
    write_fraction: float
    stable_traffic_share: float
    num_stable_sets: int
    num_churn_sets: int
    hot_lines_per_set: int
    cold_lines_per_set: int
    cold_gap_median: float
    cold_gap_sigma: float
    churn_miss_fraction: float
    churn_reuse_window: int = 4
    description: str = ""
    paper_mttf_note: str = ""
    paper_energy_note: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("profile name must be non-empty")
        for frac_name in (
            "write_fraction",
            "stable_traffic_share",
            "churn_miss_fraction",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{frac_name} must be in [0, 1]")
        if self.num_stable_sets < 0 or self.num_churn_sets <= 0:
            raise ConfigurationError("set counts must be positive (churn) / non-negative")
        if self.stable_traffic_share > 0 and self.num_stable_sets == 0:
            raise ConfigurationError(
                "stable_traffic_share > 0 requires at least one stable set"
            )
        if self.hot_lines_per_set < 1:
            raise ConfigurationError("hot_lines_per_set must be >= 1")
        if self.cold_lines_per_set < 0:
            raise ConfigurationError("cold_lines_per_set must be non-negative")
        if self.cold_gap_median <= 0:
            raise ConfigurationError("cold_gap_median must be positive")
        if self.cold_gap_sigma < 0:
            raise ConfigurationError("cold_gap_sigma must be non-negative")
        if self.churn_reuse_window < 1:
            raise ConfigurationError("churn_reuse_window must be >= 1")

    @property
    def expected_cold_delivery_fraction(self) -> float:
        """Rough fraction of demand reads that are long-gap cold re-reads."""
        if self.stable_traffic_share == 0 or self.cold_lines_per_set == 0:
            return 0.0
        return self.stable_traffic_share * self.cold_lines_per_set / self.cold_gap_median


def _profile(**kwargs) -> SPECWorkloadProfile:
    defaults = dict(
        hot_lines_per_set=6,
        cold_lines_per_set=2,
        num_stable_sets=8,
        num_churn_sets=48,
        churn_reuse_window=4,
    )
    defaults.update(kwargs)
    return SPECWorkloadProfile(**defaults)


SPEC_CPU2006_PROFILES: dict[str, SPECWorkloadProfile] = {
    p.name: p
    for p in [
        _profile(
            name="perlbench",
            write_fraction=0.14,
            stable_traffic_share=0.45,
            cold_gap_median=1200.0,
            cold_gap_sigma=0.8,
            churn_miss_fraction=0.30,
            description="Interpreter with large instruction footprint; long-lived "
            "hash/table lines re-read after thousands of set accesses.",
            paper_mttf_note="Fig. 3(a): concealed reads reach ~10^4.",
        ),
        _profile(
            name="bzip2",
            write_fraction=0.22,
            stable_traffic_share=0.30,
            cold_gap_median=350.0,
            cold_gap_sigma=0.6,
            churn_miss_fraction=0.35,
            description="Block-sorting compressor; moderate reuse distances.",
        ),
        _profile(
            name="gcc",
            write_fraction=0.20,
            stable_traffic_share=0.35,
            cold_gap_median=550.0,
            cold_gap_sigma=0.8,
            churn_miss_fraction=0.40,
            description="Compiler; mixed pointer-heavy IR traversals.",
        ),
        _profile(
            name="mcf",
            write_fraction=0.26,
            stable_traffic_share=0.04,
            num_stable_sets=2,
            cold_gap_median=60.0,
            cold_gap_sigma=0.4,
            churn_miss_fraction=0.65,
            description="Sparse network simplex; streaming pointer chasing with "
            "very little long-lived L2 reuse.",
            paper_mttf_note="Worst-case REAP gain in the paper: 7.9x.",
        ),
        _profile(
            name="milc",
            write_fraction=0.30,
            stable_traffic_share=0.20,
            cold_gap_median=300.0,
            cold_gap_sigma=0.7,
            churn_miss_fraction=0.55,
            description="Lattice QCD; large streaming arrays with periodic reuse.",
        ),
        _profile(
            name="namd",
            write_fraction=0.06,
            stable_traffic_share=0.70,
            num_stable_sets=6,
            cold_gap_median=9000.0,
            cold_gap_sigma=1.0,
            churn_miss_fraction=0.10,
            description="Molecular dynamics; hot force loops with rarely re-read "
            "neighbour lists resident for very long windows.",
            paper_mttf_note="Paper: MTTF gain above 1000x.",
        ),
        _profile(
            name="gobmk",
            write_fraction=0.18,
            stable_traffic_share=0.35,
            cold_gap_median=450.0,
            cold_gap_sigma=0.7,
            churn_miss_fraction=0.35,
            description="Go engine; recursive search over modest board state.",
        ),
        _profile(
            name="dealII",
            write_fraction=0.10,
            stable_traffic_share=0.60,
            num_stable_sets=6,
            cold_gap_median=2800.0,
            cold_gap_sigma=0.9,
            churn_miss_fraction=0.20,
            description="Finite-element library; sparse-matrix structures re-read "
            "across solver sweeps.",
            paper_mttf_note="Fig. 3(d): tails to ~8x10^3; MTTF gain above 1000x.",
        ),
        _profile(
            name="soplex",
            write_fraction=0.24,
            stable_traffic_share=0.30,
            cold_gap_median=700.0,
            cold_gap_sigma=0.8,
            churn_miss_fraction=0.45,
            description="LP solver; basis matrices with irregular reuse.",
        ),
        _profile(
            name="povray",
            write_fraction=0.08,
            stable_traffic_share=0.40,
            cold_gap_median=500.0,
            cold_gap_sigma=0.7,
            churn_miss_fraction=0.20,
            description="Ray tracer; scene graph resident, mostly reads.",
        ),
        _profile(
            name="calculix",
            write_fraction=0.16,
            stable_traffic_share=0.50,
            num_stable_sets=6,
            cold_gap_median=2500.0,
            cold_gap_sigma=1.0,
            churn_miss_fraction=0.30,
            description="Structural FEM; stiffness-matrix lines re-read after "
            "tens of thousands of set accesses.",
            paper_mttf_note="Fig. 3(b): concealed reads reach ~1.8x10^4.",
        ),
        _profile(
            name="hmmer",
            write_fraction=0.12,
            stable_traffic_share=0.25,
            cold_gap_median=200.0,
            cold_gap_sigma=0.5,
            churn_miss_fraction=0.25,
            description="Profile HMM search; tight working set, short reuse.",
        ),
        _profile(
            name="sjeng",
            write_fraction=0.15,
            stable_traffic_share=0.30,
            cold_gap_median=600.0,
            cold_gap_sigma=0.7,
            churn_miss_fraction=0.30,
            description="Chess engine; transposition-table probes.",
        ),
        _profile(
            name="libquantum",
            write_fraction=0.20,
            stable_traffic_share=0.08,
            num_stable_sets=2,
            cold_gap_median=120.0,
            cold_gap_sigma=0.5,
            churn_miss_fraction=0.70,
            description="Quantum simulation; pure streaming over a huge vector.",
        ),
        _profile(
            name="h264ref",
            write_fraction=0.09,
            stable_traffic_share=0.70,
            num_stable_sets=4,
            cold_gap_median=16000.0,
            cold_gap_sigma=1.1,
            churn_miss_fraction=0.15,
            description="Video encoder; reference frames resident across very "
            "long motion-search windows.",
            paper_mttf_note="Fig. 3(c): concealed reads exceed 10^5; gain above 1000x.",
        ),
        _profile(
            name="lbm",
            write_fraction=0.42,
            stable_traffic_share=0.06,
            num_stable_sets=2,
            cold_gap_median=100.0,
            cold_gap_sigma=0.4,
            churn_miss_fraction=0.70,
            description="Lattice Boltzmann; write-heavy streaming sweeps.",
        ),
        _profile(
            name="omnetpp",
            write_fraction=0.22,
            stable_traffic_share=0.35,
            cold_gap_median=900.0,
            cold_gap_sigma=0.9,
            churn_miss_fraction=0.45,
            description="Discrete-event simulator; event-queue pointer chasing.",
        ),
        _profile(
            name="astar",
            write_fraction=0.18,
            stable_traffic_share=0.35,
            cold_gap_median=800.0,
            cold_gap_sigma=0.8,
            churn_miss_fraction=0.40,
            description="Path finding; open/closed lists with irregular reuse.",
        ),
        _profile(
            name="sphinx3",
            write_fraction=0.12,
            stable_traffic_share=0.45,
            cold_gap_median=1400.0,
            cold_gap_sigma=0.9,
            churn_miss_fraction=0.30,
            description="Speech recognition; acoustic model lines re-read per frame.",
        ),
        _profile(
            name="xalancbmk",
            write_fraction=0.34,
            stable_traffic_share=0.15,
            cold_gap_median=400.0,
            cold_gap_sigma=0.7,
            churn_miss_fraction=0.55,
            description="XSLT processor; allocation-heavy DOM churn, many "
            "write-backs and misses.",
            paper_energy_note="Smallest energy overhead in the paper: 1.0%.",
        ),
        _profile(
            name="cactusADM",
            write_fraction=0.04,
            stable_traffic_share=0.75,
            num_stable_sets=8,
            cold_gap_median=1800.0,
            cold_gap_sigma=0.8,
            churn_miss_fraction=0.08,
            description="Numerical relativity; read-dominated stencil sweeps over "
            "resident grid lines.",
            paper_energy_note="Largest energy overhead in the paper: 6.5%.",
        ),
        _profile(
            name="GemsFDTD",
            write_fraction=0.28,
            stable_traffic_share=0.25,
            cold_gap_median=600.0,
            cold_gap_sigma=0.8,
            churn_miss_fraction=0.50,
            description="FDTD solver; alternating field-update sweeps.",
        ),
        _profile(
            name="leslie3d",
            write_fraction=0.30,
            stable_traffic_share=0.20,
            cold_gap_median=450.0,
            cold_gap_sigma=0.7,
            churn_miss_fraction=0.55,
            description="CFD; streaming grid sweeps with periodic reuse.",
        ),
        _profile(
            name="zeusmp",
            write_fraction=0.26,
            stable_traffic_share=0.25,
            cold_gap_median=500.0,
            cold_gap_sigma=0.7,
            churn_miss_fraction=0.50,
            description="Astrophysical MHD; structured-grid sweeps.",
        ),
    ]
}
"""Registry of all SPEC CPU2006-named profiles, keyed by benchmark name."""


FIGURE3_WORKLOADS = ("perlbench", "calculix", "h264ref", "dealII")
"""The four workloads the paper characterises in Fig. 3 (a)-(d)."""


def get_profile(name: str) -> SPECWorkloadProfile:
    """Look up a profile by benchmark name.

    Raises:
        ConfigurationError: if the name is unknown.
    """
    try:
        return SPEC_CPU2006_PROFILES[name]
    except KeyError as exc:
        known = ", ".join(sorted(SPEC_CPU2006_PROFILES))
        raise ConfigurationError(
            f"unknown SPEC workload {name!r}; known workloads: {known}"
        ) from exc


def all_profiles() -> list[SPECWorkloadProfile]:
    """All profiles in a stable (alphabetical) order."""
    return [SPEC_CPU2006_PROFILES[name] for name in sorted(SPEC_CPU2006_PROFILES)]
