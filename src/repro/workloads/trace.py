"""Memory-access trace containers and file I/O.

Two trace granularities are used in the reproduction:

* **CPU-level traces** (instruction fetches, loads, stores) drive the full
  two-level hierarchy of :class:`repro.cache.CacheHierarchy`, mirroring the
  paper's gem5 setup.
* **L2-level traces** (reads and write-backs as seen by the shared L2) drive
  a protected cache directly; the synthetic SPEC profiles generate at this
  level because the phenomenon under study — concealed-read accumulation —
  is entirely determined by the L2 access sequence.

Traces can be saved to and loaded from a simple text format (one record per
line: ``<kind> <hex address>``) so experiments are reproducible and
shareable without rerunning the generators.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..errors import TraceError


class AccessKind(str, enum.Enum):
    """Kind of one memory reference."""

    IFETCH = "I"
    LOAD = "L"
    STORE = "S"
    L2_READ = "R"
    L2_WRITE = "W"


#: Fixed kind order of the cached decode arrays (see :meth:`Trace.decoded`).
KIND_ORDER = (
    AccessKind.IFETCH,
    AccessKind.LOAD,
    AccessKind.STORE,
    AccessKind.L2_READ,
    AccessKind.L2_WRITE,
)

_KIND_INDEX = {kind: index for index, kind in enumerate(KIND_ORDER)}


@dataclass(frozen=True)
class TraceRecord:
    """One memory reference.

    Attributes:
        kind: Reference kind (CPU-level or L2-level).
        address: Physical byte address.
    """

    kind: AccessKind
    address: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise TraceError("trace addresses must be non-negative")

    @property
    def is_write(self) -> bool:
        """``True`` for stores and L2 write-backs."""
        return self.kind in (AccessKind.STORE, AccessKind.L2_WRITE)


@dataclass
class Trace:
    """An ordered sequence of memory references with a name.

    Mutate the trace through :meth:`append` / :meth:`extend` (not by touching
    ``records`` directly) so the read/write counters stay consistent.
    """

    name: str
    records: list[TraceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._write_count = sum(1 for r in self.records if r.is_write)
        self._version = 0
        self._decoded: tuple[tuple[int, int], np.ndarray, np.ndarray] | None = None
        self._content_hash: tuple[tuple[int, int], str] | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    def append(self, record: TraceRecord) -> None:
        """Append one record."""
        self.records.append(record)
        self._version += 1
        if record.is_write:
            self._write_count += 1

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Append many records."""
        added = list(records)
        self.records.extend(added)
        self._version += 1
        self._write_count += sum(1 for r in added if r.is_write)

    def decoded(self) -> tuple[np.ndarray, np.ndarray]:
        """The trace as ``(kind index, address)`` NumPy columns, memoised.

        The kind column indexes :data:`KIND_ORDER`; callers remap it to
        their own codes with a small lookup table.  The arrays are cached on
        the trace (and rebuilt if the trace has changed since — the memo is
        keyed on both the record count and a mutation version bumped by
        :meth:`append`/:meth:`extend`, so equal-length mutation through the
        documented API cannot replay stale arrays), so replaying one trace
        against several schemes or engines decodes it only once.  The
        returned arrays are shared and marked immutable; writing to them
        raises ``ValueError``.
        """
        count = len(self.records)
        key = (count, self._version)
        cached = self._decoded
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        kinds = np.fromiter(
            (_KIND_INDEX[record.kind] for record in self.records),
            dtype=np.int8,
            count=count,
        )
        addresses = np.fromiter(
            (record.address for record in self.records), dtype=np.int64, count=count
        )
        kinds.setflags(write=False)
        addresses.setflags(write=False)
        self._decoded = (key, kinds, addresses)
        return kinds, addresses

    def content_hash(self) -> str:
        """Content identity of the trace: SHA-256 over the decoded columns.

        This is the single trace identity used everywhere content matters —
        the artifact cache keys (:mod:`repro.workloads.artifacts`) and any
        campaign-side hashing of trace content — so there is exactly one
        definition of "the same trace".  The digest spans both the kind and
        the address columns and is memoised under the same
        ``(count, mutation version)`` key as :meth:`decoded`, so mutation
        through :meth:`append`/:meth:`extend` invalidates both together.
        """
        count = len(self.records)
        key = (count, self._version)
        cached = self._content_hash
        if cached is not None and cached[0] == key:
            return cached[1]
        kinds, addresses = self.decoded()
        digest = hashlib.sha256()
        digest.update(kinds.tobytes())
        digest.update(addresses.tobytes())
        value = digest.hexdigest()
        self._content_hash = (key, value)
        return value

    # -- summaries ------------------------------------------------------------

    @property
    def read_count(self) -> int:
        """Number of non-write references (maintained incrementally, O(1))."""
        return len(self.records) - self._write_count

    @property
    def write_count(self) -> int:
        """Number of write references (maintained incrementally, O(1))."""
        return self._write_count

    @property
    def read_fraction(self) -> float:
        """Fraction of references that are reads."""
        if not self.records:
            return 0.0
        return self.read_count / len(self.records)

    def unique_blocks(self, block_size: int = 64) -> int:
        """Number of distinct cache blocks touched."""
        if block_size <= 0:
            raise TraceError("block_size must be positive")
        return len({r.address // block_size for r in self.records})

    def footprint_bytes(self, block_size: int = 64) -> int:
        """Footprint in bytes, at block granularity."""
        return self.unique_blocks(block_size) * block_size

    # -- file I/O --------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace to a text file (one ``<kind> <hex addr>`` per line).

        Parent directories are created as needed, matching the behaviour of
        the campaign result stores.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(f"# trace {self.name}\n")
            for record in self.records:
                handle.write(f"{record.kind.value} {record.address:#x}\n")

    def save_binary(self, path: str | Path, chunk_accesses: int = 1 << 20) -> None:
        """Write the trace in the binary chunked format (see ``streams``).

        The binary format is the on-disk half of out-of-core replay: it can
        be opened with :func:`repro.workloads.streams.open_trace` and
        replayed segment-by-segment without ever materialising the whole
        trace in memory.
        """
        from .streams import write_binary_trace

        kinds, addresses = self.decoded()
        write_binary_trace(
            path, self.name, kinds, addresses, chunk_accesses=chunk_accesses
        )

    @classmethod
    def load(cls, path: str | Path, name: str | None = None) -> "Trace":
        """Read a trace written by :meth:`save`.

        Raises:
            TraceError: on malformed lines.
        """
        path = Path(path)
        trace = cls(name=name or path.stem)
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 2:
                    raise TraceError(
                        f"{path}:{line_number}: expected '<kind> <address>', got {line!r}"
                    )
                try:
                    kind = AccessKind(parts[0])
                    address = int(parts[1], 16)
                    record = TraceRecord(kind=kind, address=address)
                except (TraceError, ValueError) as exc:
                    raise TraceError(f"{path}:{line_number}: {exc}") from exc
                trace.append(record)
        return trace
