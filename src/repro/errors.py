"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from runtime
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range.

    Raised during validation of :mod:`repro.config` dataclasses, e.g. a cache
    whose size is not a multiple of ``block_size * associativity`` or an MTJ
    whose read current exceeds its critical current.
    """


class ECCError(ReproError):
    """Base class for ECC codec errors."""


class ECCCapacityError(ECCError):
    """The requested data width cannot be supported by the chosen code."""


class ECCDecodingError(ECCError):
    """The decoder was asked to do something impossible.

    Note that an *uncorrectable* word is not an error condition: the decoder
    reports it through :class:`repro.ecc.base.DecodeResult`.  This exception
    covers API misuse such as a codeword of the wrong length.
    """


class CacheError(ReproError):
    """Base class for cache-model errors."""


class AddressError(CacheError):
    """An address is negative, misaligned, or outside the modelled range."""


class ReplacementError(CacheError):
    """A replacement policy was driven with inconsistent way state."""


class SimulationError(ReproError):
    """The trace-driven simulation engine hit an inconsistent state."""


class TraceError(ReproError):
    """A workload trace is malformed (bad record, bad file, bad generator)."""


class AnalysisError(ReproError):
    """An analysis or figure builder received insufficient or bad data."""


class TelemetryError(ReproError):
    """A telemetry sink or event file is misconfigured or unreadable.

    Telemetry is observational by design, so this exception only surfaces
    from explicit telemetry entry points (opening a sink, reading an event
    file back) — never from instrumented simulation or campaign code paths.
    """


class CampaignError(ReproError):
    """A campaign specification, result store, or runner is inconsistent.

    Raised by :mod:`repro.campaign` for malformed job specifications, store
    files that fail to parse, and conflicting store entries (two different
    results recorded under the same content key).
    """


class FrameAuthError(CampaignError):
    """A protocol frame failed HMAC verification.

    Raised by :func:`repro.campaign.distributed.recv_frame` when frame
    authentication is enabled and a frame arrives unsigned, truncated below
    the MAC length, or signed with a different key.  The coordinator treats
    it as a hostile/misconfigured peer: the connection is dropped without a
    reply and the campaign continues undisturbed.
    """
