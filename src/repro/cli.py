"""Command-line interface for the REAP-cache reproduction.

One executable, several sub-commands, each regenerating a piece of the
paper's evaluation and printing it as a fixed-width text table (optionally
also exporting CSV/JSON):

* ``repro-reap table1``   — Table I, the evaluated cache configuration.
* ``repro-reap example``  — the Section III-B / IV worked example.
* ``repro-reap fig3``     — concealed-read characterisation (Fig. 3).
* ``repro-reap fig5``     — MTTF improvement per workload (Fig. 5).
* ``repro-reap fig6``     — dynamic-energy overhead per workload (Fig. 6).
* ``repro-reap overheads``— area and access-time reports (Section V-B).
* ``repro-reap workloads``— list the available SPEC-named profiles.
* ``repro-reap campaign`` — run a (workload × scheme × parameter) campaign
  over a persistent result store, fanned out over worker processes
  (``--jobs``) or remote workers (``--backend tcp://HOST:PORT``);
  re-running skips completed jobs.
* ``repro-reap worker``   — execute jobs pulled from a campaign
  coordinator (the other half of ``--backend tcp://...``).
* ``repro-reap store``    — result-store tools: ``merge`` combines
  per-machine stores, ``diff`` compares two stores job by job.
* ``repro-reap stats``    — aggregate a ``--telemetry`` JSONL file into
  per-phase/per-scheme time breakdowns, campaign rollups and distributed
  worker health.

The interface is intentionally thin: it parses arguments, builds
:class:`repro.sim.ExperimentSettings`, calls the analysis builders and prints
the rendered output, so everything it does is equally reachable from Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import (
    build_area_table,
    build_figure3,
    build_figure5,
    build_figure6,
    build_latency_table,
    build_table1,
    numeric_example,
    render_area_report,
    render_figure3,
    render_figure5,
    render_figure6,
    render_latency_report,
    render_numeric_example,
    render_table1,
)
from .analysis.export import figure3_to_csv, figure5_to_csv, figure6_to_csv
from .errors import CampaignError
from .sim import ExperimentSettings, format_table
from .workloads import FIGURE3_WORKLOADS, all_profiles, get_profile


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    return ExperimentSettings(
        num_accesses=args.accesses,
        p_cell=args.p_cell,
        ones_count=args.ones,
        seed=args.seed,
        trace_file=getattr(args, "trace_file", None),
        segment_accesses=getattr(args, "segment_accesses", None),
    )


def _add_simulation_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--accesses",
        type=int,
        default=50_000,
        help="L2 accesses to simulate per workload (default: 50000)",
    )
    parser.add_argument(
        "--p-cell",
        type=float,
        default=1e-8,
        dest="p_cell",
        help="per-read, per-cell disturbance probability (default: 1e-8)",
    )
    parser.add_argument(
        "--ones",
        type=int,
        default=100,
        help="'1' cells per 512-bit block (default: 100, the paper's example)",
    )
    parser.add_argument("--seed", type=int, default=1, help="random seed (default: 1)")
    parser.add_argument(
        "--trace-file",
        type=str,
        default=None,
        dest="trace_file",
        help=(
            "replay this trace file instead of generating traces (binary, "
            "native text, din or lackey format, auto-detected); "
            "--accesses/--seed then no longer shape the access stream"
        ),
    )
    parser.add_argument(
        "--segment-accesses",
        type=int,
        default=None,
        dest="segment_accesses",
        help=(
            "replay in segments of this many accesses (bounded memory, "
            "bit-identical to whole-trace replay; default: whole trace "
            "for in-memory traces, 1Mi accesses for --trace-file)"
        ),
    )
    parser.add_argument(
        "--csv", type=str, default=None, help="also write the series to this CSV file"
    )


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(render_table1(build_table1()))
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    example = numeric_example(p_cell=args.p_cell, num_ones=args.ones, num_reads=args.reads)
    print(render_numeric_example(example))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    settings = _settings_from_args(args)
    workloads = args.workloads or list(FIGURE3_WORKLOADS)
    for workload in workloads:
        series = build_figure3(workload, settings=settings)
        print(render_figure3(series))
        print()
        if args.csv:
            path = figure3_to_csv(series, f"{args.csv.rstrip('.csv')}_{workload}.csv")
            print(f"[wrote {path}]")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    settings = _settings_from_args(args)
    workloads = args.workloads or None
    data = build_figure5(workloads=workloads, settings=settings)
    print(render_figure5(data))
    if args.csv:
        print(f"[wrote {figure5_to_csv(data, args.csv)}]")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    settings = _settings_from_args(args)
    workloads = args.workloads or None
    data = build_figure6(workloads=workloads, settings=settings)
    print(render_figure6(data))
    if args.csv:
        print(f"[wrote {figure6_to_csv(data, args.csv)}]")
    return 0


def _cmd_overheads(_args: argparse.Namespace) -> int:
    print(render_area_report(build_area_table()))
    print()
    print(render_latency_report(build_latency_table()))
    return 0


def _parse_sweep_value(text: str) -> object:
    """Parse one swept value: int, float, bool, ``none``, or bare string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


def _parse_sweep_arguments(specs: Sequence[str]) -> tuple[tuple[str, tuple], ...]:
    """Parse repeated ``--sweep PARAM=V1,V2,...`` arguments."""
    sweep = []
    for item in specs:
        parameter, separator, values_text = item.partition("=")
        if not separator or not parameter or not values_text:
            raise CampaignError(
                f"--sweep expects PARAM=V1,V2,..., got {item!r}"
            )
        values = tuple(_parse_sweep_value(v) for v in values_text.split(","))
        sweep.append((parameter, values))
    return tuple(sweep)


def _campaign_telemetry_scope(args: argparse.Namespace, total_jobs: int, name: str):
    """Build the campaign's telemetry scope from the CLI flags.

    Composes the durable file sink (``--telemetry PATH``) with the
    process-local progress renderer (line-per-job by default, a live
    status line under ``--progress``, nothing under ``--quiet``) so both
    consume the same event stream.  Returns a context manager; a no-op one
    when every consumer is disabled.
    """
    from contextlib import nullcontext

    from .telemetry import FileSink, MultiSink, ProgressRenderer, telemetry

    sinks = []
    if args.telemetry:
        sinks.append(FileSink(args.telemetry))
    if not args.quiet:
        sinks.append(ProgressRenderer(total=total_jobs, live=args.progress))
    if not sinks:
        return nullcontext()
    return telemetry(MultiSink(sinks), campaign=name)


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignSpec,
        TCPBackend,
        campaign_summary_to_csv,
        missing_jobs,
        open_store,
        render_campaign_summary,
        run_campaign,
    )

    settings = _settings_from_args(args)
    workloads = tuple(args.workloads) or tuple(p.name for p in all_profiles())
    spec = CampaignSpec(
        name=args.name,
        workloads=workloads,
        base_settings=settings,
        baseline=args.baseline,
        alternatives=tuple(args.schemes.split(",")),
        sweep=_parse_sweep_arguments(args.sweep),
    )
    store = open_store(args.store, shard_width=args.shard_width)
    if not args.quiet:
        print(
            f"campaign {spec.name!r}: {spec.num_jobs} jobs "
            f"({len(workloads)} workloads x {len(spec.points())} points), "
            f"{spec.num_jobs - len(missing_jobs(spec, store))} already in {store.path}"
        )

    # The telemetry scope opens before the backend is built: a TCP
    # coordinator captures the active session at construction so its
    # handler threads emit lease/result/frame events into it.
    with _campaign_telemetry_scope(args, spec.num_jobs, spec.name):
        backend = args.backend
        if isinstance(backend, str) and backend.startswith("tcp://"):
            checkpoint = args.checkpoint
            if checkpoint is None:
                # Default: checkpoint beside the store, so --resume can
                # find it without extra flags.
                checkpoint = getattr(store, "checkpoint_path", None)
            elif checkpoint.lower() in ("off", "none"):
                checkpoint = None
            backend = TCPBackend(
                backend,
                lease_timeout_s=args.lease_timeout,
                max_attempts=args.max_attempts,
                idle_timeout_s=args.idle_timeout,
                auth_key=args.auth_key,
                quarantine=args.quarantine,
                checkpoint=checkpoint,
            )
            if args.resume:
                resumed = backend.resume_from_checkpoint(store)
                print(f"resumed {resumed} unfinished job(s) from {checkpoint}")
            print(
                f"coordinator listening on {backend.address}; start workers with:\n"
                f"  repro-reap worker {backend.address}"
            )
        elif args.resume:
            raise CampaignError(
                "--resume requires a tcp:// backend (checkpoints are a "
                "coordinator feature)"
            )

        result = run_campaign(
            spec,
            store=store,
            jobs=args.jobs,
            engine=args.engine,
            kernel=args.kernel,
            backend=backend,
            artifact_cache=args.artifact_cache,
        )
    print()
    print(render_campaign_summary(result))
    if args.csv:
        print(f"[wrote {campaign_summary_to_csv(result, args.csv)}]")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import os
    from contextlib import nullcontext

    from .campaign import run_worker, run_worker_pool
    from .campaign.distributed import default_worker_id
    from .workloads.artifacts import ARTIFACT_CACHE_ENV

    if args.artifact_cache is not None:
        # Workers resolve the environment ahead of the payload field, so
        # the flag overrides whatever directory the coordinator chose
        # (pool worker processes inherit the environment).
        os.environ[ARTIFACT_CACHE_ENV] = args.artifact_cache

    if args.jobs > 1:
        from .telemetry import telemetry

        # The pool initializer re-opens the sink per worker process with a
        # per-process worker id; the parent scope carries the file spec.
        scope = telemetry(args.telemetry) if args.telemetry else nullcontext()
        with scope:
            executed = run_worker_pool(
                args.address,
                args.jobs,
                max_jobs=args.max_jobs,
                connect_retry_s=args.connect_retry,
                reconnect_timeout_s=args.reconnect_timeout,
                auth_key=args.auth_key,
            )
        print(f"workers executed {sum(executed)} jobs ({executed})")
    else:
        from .telemetry import telemetry

        worker_id = args.worker_id or default_worker_id()
        scope = (
            telemetry(args.telemetry, worker=worker_id)
            if args.telemetry
            else nullcontext()
        )
        with scope:
            executed = run_worker(
                args.address,
                worker_id=worker_id,
                max_jobs=args.max_jobs,
                connect_retry_s=args.connect_retry,
                reconnect_timeout_s=args.reconnect_timeout,
                auth_key=args.auth_key,
            )
        print(f"worker executed {executed} jobs")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .telemetry import load_telemetry_stats, render_telemetry_stats

    print(render_telemetry_stats(load_telemetry_stats(args.path)))
    return 0


def _cmd_store_merge(args: argparse.Namespace) -> int:
    from .campaign import merge_stores, open_store

    report = merge_stores(open_store(args.destination), args.sources)
    print(
        f"merged {len(args.sources)} stores into {args.destination}: "
        f"{report.added} added, {report.duplicates} duplicate, "
        f"{report.total} total entries"
    )
    return 0


def _cmd_store_diff(args: argparse.Namespace) -> int:
    from .campaign import diff_stores, render_store_diff

    diff = diff_stores(args.store_a, args.store_b)
    print(render_store_diff(diff, name_a=args.store_a, name_b=args.store_b))
    return 0 if diff.stores_match else 1


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        [
            profile.name,
            profile.write_fraction,
            profile.stable_traffic_share,
            profile.cold_gap_median,
            profile.description[:60],
        ]
        for profile in all_profiles()
    ]
    print(
        format_table(
            ["workload", "write fraction", "stable share", "cold gap median", "description"],
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-reap",
        description="Regenerate the REAP-cache paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="print Table I").set_defaults(handler=_cmd_table1)

    example = subparsers.add_parser("example", help="Section III-B / IV worked example")
    example.add_argument("--p-cell", type=float, default=1e-8, dest="p_cell")
    example.add_argument("--ones", type=int, default=100)
    example.add_argument("--reads", type=int, default=50)
    example.set_defaults(handler=_cmd_example)

    fig3 = subparsers.add_parser("fig3", help="concealed-read characterisation (Fig. 3)")
    _add_simulation_arguments(fig3)
    fig3.add_argument("workloads", nargs="*", help="workloads (default: the paper's four)")
    fig3.set_defaults(handler=_cmd_fig3)

    fig5 = subparsers.add_parser("fig5", help="MTTF improvement per workload (Fig. 5)")
    _add_simulation_arguments(fig5)
    fig5.add_argument("workloads", nargs="*", help="workloads (default: the full suite)")
    fig5.set_defaults(handler=_cmd_fig5)

    fig6 = subparsers.add_parser("fig6", help="dynamic-energy overhead per workload (Fig. 6)")
    _add_simulation_arguments(fig6)
    fig6.add_argument("workloads", nargs="*", help="workloads (default: the full suite)")
    fig6.set_defaults(handler=_cmd_fig6)

    subparsers.add_parser(
        "overheads", help="area and access-time overhead reports (Section V-B)"
    ).set_defaults(handler=_cmd_overheads)

    subparsers.add_parser(
        "workloads", help="list the available SPEC-named workload profiles"
    ).set_defaults(handler=_cmd_workloads)

    campaign = subparsers.add_parser(
        "campaign",
        help="run a resumable (workload x scheme x parameter) campaign",
    )
    _add_simulation_arguments(campaign)
    campaign.add_argument(
        "workloads", nargs="*", help="workloads (default: the full suite)"
    )
    campaign.add_argument(
        "--name", type=str, default="cli-campaign", help="campaign name for reports"
    )
    campaign.add_argument(
        "--store",
        type=str,
        default="campaign_store.jsonl",
        help="result store; a .jsonl path is a single-file store, anything "
        "else a sharded store directory (one JSONL shard per key prefix, "
        "safe for concurrent writers); completed jobs are skipped on "
        "re-runs (default: campaign_store.jsonl)",
    )
    campaign.add_argument(
        "--shard-width",
        type=int,
        default=None,
        help="key-prefix hex digits per shard when creating a sharded "
        "store (default: 2)",
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan jobs out over (default: 1, serial)",
    )
    campaign.add_argument(
        "--backend",
        type=str,
        default="local",
        help="execution backend: 'local' (in-process / --jobs pool, the "
        "default), 'serial', or tcp://HOST:PORT to serve the job queue to "
        "remote 'repro-reap worker' processes (PORT 0 binds an ephemeral "
        "port and prints it)",
    )
    campaign.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help="tcp backend: seconds a handed-out job may go unheartbeated "
        "before it is requeued for another worker (default: 30)",
    )
    campaign.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="tcp backend: fail when no job completes for this many "
        "seconds (default: wait for workers forever)",
    )
    campaign.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="tcp backend: hand-outs per job before it is declared failed "
        "(default: 3)",
    )
    campaign.add_argument(
        "--quarantine",
        action="store_true",
        help="tcp backend: park jobs that exhaust --max-attempts on a "
        "poison list (reported at the end and via 'repro-reap stats') "
        "instead of failing the whole campaign",
    )
    campaign.add_argument(
        "--auth-key",
        type=str,
        default=None,
        metavar="KEY",
        help="tcp backend: shared secret HMAC-signing every protocol frame "
        "(also settable via REPRO_AUTH_KEY); unsigned or forged frames are "
        "rejected, so the coordinator may listen on shared networks",
    )
    campaign.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        metavar="PATH",
        help="tcp backend: periodically snapshot the coordinator's job "
        "queue and lease table to this file (default: beside the store; "
        "'off' disables); --resume restarts a killed campaign from it",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="tcp backend: before serving, resubmit the checkpointed jobs "
        "that have no entry in the result store (crash recovery for a "
        "killed coordinator)",
    )
    campaign.add_argument(
        "--baseline",
        type=str,
        default="conventional",
        help="baseline scheme (default: conventional)",
    )
    campaign.add_argument(
        "--schemes",
        type=str,
        default="reap",
        help="comma-separated alternative schemes (default: reap)",
    )
    campaign.add_argument(
        "--engine",
        type=str,
        choices=["reference", "fast", "auto"],
        default="auto",
        help="simulation engine: the batched fast path ('auto', the default, "
        "covers every scheme and replacement policy and warns before falling "
        "back to the reference loop on custom caches), 'fast' (error on "
        "unsupported), or the per-record 'reference' loop; engines are "
        "numerically identical",
    )
    campaign.add_argument(
        "--kernel",
        type=str,
        choices=["loop", "soa", "auto"],
        default="auto",
        help="fast-path kernel tier: the structure-of-arrays kernel "
        "('auto'/'soa', the default) or the grouped per-record 'loop' "
        "kernel; kernels are bit-identical, only throughput differs",
    )
    campaign.add_argument(
        "--sweep",
        action="append",
        default=[],
        metavar="PARAM=V1,V2,...",
        help="sweep an ExperimentSettings field over values (repeatable; "
        "the campaign runs the cross-product of all sweeps); dotted paths "
        "reach nested configs, e.g. l2_config.associativity=4,8 or "
        "l2_config.ecc.kind=parity,hamming-sec",
    )
    campaign.add_argument(
        "--artifact-cache",
        type=str,
        default=None,
        metavar="DIR",
        help="cache decoded workload traces in this directory so every "
        "sweep point reuses them (created on demand; also settable via "
        "REPRO_ARTIFACT_CACHE, 'off' disables); purely operational — "
        "results are byte-identical with the cache cold, warm or disabled, "
        "and the knob never enters job identity",
    )
    campaign.add_argument(
        "--telemetry",
        type=str,
        default=None,
        metavar="PATH",
        help="append structured telemetry events (kernel-phase spans, "
        "per-job metrics, coordinator/worker health) to this JSONL file; "
        "aggregate it afterwards with 'repro-reap stats PATH'",
    )
    campaign.add_argument(
        "--progress",
        action="store_true",
        help="live single-line progress on stderr instead of one line per job",
    )
    campaign.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress output (summary still prints)",
    )
    campaign.set_defaults(handler=_cmd_campaign)

    worker = subparsers.add_parser(
        "worker",
        help="pull and execute campaign jobs from a tcp:// coordinator",
    )
    worker.add_argument(
        "address", type=str, help="coordinator address, e.g. tcp://10.0.0.5:7654"
    )
    worker.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to run on this machine (default: 1)",
    )
    worker.add_argument(
        "--worker-id",
        type=str,
        default=None,
        help="identifier reported to the coordinator (default: hostname-pid)",
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="stop after executing this many jobs per process (default: "
        "run until the campaign completes)",
    )
    worker.add_argument(
        "--connect-retry",
        type=float,
        default=30.0,
        help="seconds to keep retrying the first coordinator contact "
        "(default: 30; lets workers start before the coordinator)",
    )
    worker.add_argument(
        "--reconnect-timeout",
        type=float,
        default=5.0,
        help="seconds one continuous coordinator outage may last (after "
        "first contact) before this worker gives up; outages inside the "
        "budget are ridden out with exponential backoff (default: 5; "
        "raise it to survive coordinator restarts)",
    )
    worker.add_argument(
        "--auth-key",
        type=str,
        default=None,
        metavar="KEY",
        help="shared secret HMAC-signing every protocol frame; must match "
        "the coordinator's --auth-key (also settable via REPRO_AUTH_KEY)",
    )
    worker.add_argument(
        "--telemetry",
        type=str,
        default=None,
        metavar="PATH",
        help="append this worker's telemetry events (job spans, kernel "
        "phases, protocol frames) to this JSONL file",
    )
    worker.add_argument(
        "--artifact-cache",
        type=str,
        default=None,
        metavar="DIR",
        help="cache decoded workload traces in this local directory "
        "(overrides any cache directory the coordinator put in the "
        "payloads; 'off' disables caching on this machine)",
    )
    worker.set_defaults(handler=_cmd_worker)

    stats = subparsers.add_parser(
        "stats",
        help="aggregate a telemetry JSONL file into per-phase/per-scheme "
        "time breakdowns, campaign rollups and distributed worker health",
    )
    stats.add_argument("path", type=str, help="telemetry JSONL file to aggregate")
    stats.set_defaults(handler=_cmd_stats)

    store = subparsers.add_parser(
        "store", help="result-store tools: merge and diff"
    )
    store_commands = store.add_subparsers(dest="store_command", required=True)

    merge = store_commands.add_parser(
        "merge",
        help="merge source stores into a destination store "
        "(conflicting payloads for one key abort the merge)",
    )
    merge.add_argument("destination", type=str, help="store to merge into")
    merge.add_argument(
        "sources", nargs="+", type=str, help="stores to merge from"
    )
    merge.set_defaults(handler=_cmd_store_merge)

    diff = store_commands.add_parser(
        "diff",
        help="compare two stores job by job (exit code 1 when they differ)",
    )
    diff.add_argument("store_a", type=str, help="first store")
    diff.add_argument("store_b", type=str, help="second store")
    diff.set_defaults(handler=_cmd_store_diff)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Validate workload names early so typos fail with a clear message.
    workloads = getattr(args, "workloads", None)
    if workloads:
        for name in workloads:
            get_profile(name)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - module execution convenience
    sys.exit(main())
