"""Magnetic-tunnel-junction (MTJ) device model.

The MTJ is the storage element of an STT-MRAM cell (paper Fig. 1): a free
ferromagnetic layer and a reference layer separated by an MgO barrier.  The
relative orientation of the two layers (parallel / anti-parallel) gives a low
or high resistance that is read out by a sense amplifier and interpreted as
logic '0' or '1'.

This module captures the static device properties needed by the error
models: thermal stability factor, critical switching current, resistance
states, and the tunnel-magnetoresistance ratio used by the sensing model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import MTJConfig
from ..errors import ConfigurationError
from ..units import BOLTZMANN_CONSTANT


@dataclass(frozen=True)
class MTJDevice:
    """Static electrical model of an MTJ storage element.

    Attributes:
        config: Operating point (currents, pulse widths, Δ, temperature).
        resistance_parallel_ohm: Low resistance state (logic '0').
        resistance_antiparallel_ohm: High resistance state (logic '1').
    """

    config: MTJConfig
    resistance_parallel_ohm: float = 3000.0
    resistance_antiparallel_ohm: float = 6000.0

    def __post_init__(self) -> None:
        if self.resistance_parallel_ohm <= 0:
            raise ConfigurationError("resistance_parallel_ohm must be positive")
        if self.resistance_antiparallel_ohm <= self.resistance_parallel_ohm:
            raise ConfigurationError(
                "anti-parallel resistance must exceed parallel resistance"
            )

    @property
    def tmr_ratio(self) -> float:
        """Tunnel magnetoresistance ratio (R_AP - R_P) / R_P."""
        return (
            self.resistance_antiparallel_ohm - self.resistance_parallel_ohm
        ) / self.resistance_parallel_ohm

    @property
    def thermal_stability(self) -> float:
        """Thermal stability factor Δ = E_b / (k_B T)."""
        return self.config.thermal_stability

    @property
    def energy_barrier_joule(self) -> float:
        """Energy barrier E_b implied by Δ at the configured temperature."""
        return (
            self.config.thermal_stability
            * BOLTZMANN_CONSTANT
            * self.config.temperature_k
        )

    def read_voltage_v(self, stored_one: bool) -> float:
        """Voltage developed across the MTJ by the read current.

        Args:
            stored_one: ``True`` when the cell stores logic '1'
                (anti-parallel, high resistance).

        Returns:
            The sensing voltage in volts.
        """
        resistance = (
            self.resistance_antiparallel_ohm
            if stored_one
            else self.resistance_parallel_ohm
        )
        return self.config.read_current_ua * 1e-6 * resistance

    def sense_margin_v(self) -> float:
        """Difference between the '1' and '0' sensing voltages."""
        return self.read_voltage_v(True) - self.read_voltage_v(False)

    def retention_time_s(self) -> float:
        """Mean thermally-activated retention time of an idle cell.

        Uses the Néel–Arrhenius law ``t_ret = τ · exp(Δ)`` with the
        configured attempt period τ.
        """
        return self.config.attempt_period_s * math.exp(self.config.thermal_stability)

    def switching_probability(self, current_ua: float, pulse_width_s: float) -> float:
        """Probability that a current pulse switches the free layer.

        This is the thermally-activated (precessional regime excluded)
        switching model used throughout the STT-MRAM literature:

        ``P_sw = 1 - exp(-(t / τ) · exp(-Δ · (1 - I / I_C0)))``

        For ``I >= I_C0`` the exponential barrier term saturates at 1 and the
        pulse switches with probability approaching 1 for long pulses.

        Args:
            current_ua: Pulse amplitude in microamperes.
            pulse_width_s: Pulse duration in seconds.

        Returns:
            Switching probability in [0, 1].
        """
        if current_ua < 0:
            raise ConfigurationError("current_ua must be non-negative")
        if pulse_width_s < 0:
            raise ConfigurationError("pulse_width_s must be non-negative")
        if pulse_width_s == 0 or current_ua == 0:
            return 0.0
        ratio = min(current_ua / self.config.critical_current_ua, 1.0)
        barrier = self.config.thermal_stability * (1.0 - ratio)
        rate = math.exp(-barrier) / self.config.attempt_period_s
        exponent = -rate * pulse_width_s
        # Use expm1 for numerical accuracy when the probability is tiny.
        return -math.expm1(exponent)


def default_mtj_device(config: MTJConfig | None = None) -> MTJDevice:
    """Return an :class:`MTJDevice` at the default (paper-like) operating point."""
    return MTJDevice(config=config or MTJConfig())
