"""STT-MRAM device models: MTJ, read disturbance, write errors, retention.

Public surface:

* :class:`MTJDevice` — static electrical model of the storage element.
* :class:`ReadDisturbanceModel` / :func:`read_disturbance_probability` —
  the corrected form of paper Eq. (1).
* :class:`WriteErrorModel` — stochastic write failures (for the restore
  baseline).
* :class:`RetentionModel` — Néel–Arrhenius retention failures.
* :class:`ProcessVariationSampler` — per-cell parameter spread.
* :class:`STTCell` / :class:`STTBlockArray` — bit-true cells for the
  Monte-Carlo fault-injection path.
"""

from .array import STTBlockArray
from .cell import STTCell
from .mtj import MTJDevice, default_mtj_device
from .process_variation import ProcessVariationConfig, ProcessVariationSampler
from .read_disturbance import (
    ReadDisturbanceModel,
    read_current_for_target_probability,
    read_disturbance_probability,
)
from .retention import RetentionModel, retention_failure_probability
from .write_error import WriteErrorModel, write_failure_probability

__all__ = [
    "MTJDevice",
    "default_mtj_device",
    "ReadDisturbanceModel",
    "read_disturbance_probability",
    "read_current_for_target_probability",
    "WriteErrorModel",
    "write_failure_probability",
    "RetentionModel",
    "retention_failure_probability",
    "ProcessVariationConfig",
    "ProcessVariationSampler",
    "STTCell",
    "STTBlockArray",
]
