"""Process-variation model for STT-MRAM cell parameters.

Die-to-die and cell-to-cell variation changes the thermal stability factor Δ
and the critical current I_C0 of individual MTJs, which spreads the per-cell
read-disturbance probability across an array by orders of magnitude.  The
paper's own prior work (reference [2]) studies this effect; here it is
offered as an optional extension so experiments can quantify how variation
widens the gap between REAP and the conventional cache.

Variation is modelled as independent Gaussian multipliers on Δ and I_C0,
truncated to stay physical (positive, read current below critical current).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MTJConfig
from ..errors import ConfigurationError
from .read_disturbance import read_disturbance_probability


@dataclass(frozen=True)
class ProcessVariationConfig:
    """Relative (1-sigma) variation of the key MTJ parameters.

    Attributes:
        thermal_stability_sigma: Relative standard deviation of Δ.
        critical_current_sigma: Relative standard deviation of I_C0.
        min_multiplier: Lower truncation bound applied to both multipliers.
        max_multiplier: Upper truncation bound applied to both multipliers.
    """

    thermal_stability_sigma: float = 0.05
    critical_current_sigma: float = 0.05
    min_multiplier: float = 0.6
    max_multiplier: float = 1.4

    def __post_init__(self) -> None:
        if self.thermal_stability_sigma < 0 or self.critical_current_sigma < 0:
            raise ConfigurationError("variation sigmas must be non-negative")
        if not 0 < self.min_multiplier < 1 <= self.max_multiplier:
            raise ConfigurationError(
                "multiplier bounds must satisfy 0 < min < 1 <= max"
            )


class ProcessVariationSampler:
    """Draws per-cell disturbance probabilities under process variation."""

    def __init__(
        self,
        mtj: MTJConfig,
        variation: ProcessVariationConfig | None = None,
        seed: int = 1,
    ) -> None:
        """Create a sampler.

        Args:
            mtj: Nominal MTJ operating point.
            variation: Relative variation parameters; defaults to 5% sigmas.
            seed: Seed for the internal random generator.
        """
        self._mtj = mtj
        self._variation = variation or ProcessVariationConfig()
        self._rng = np.random.default_rng(seed)

    @property
    def nominal_probability(self) -> float:
        """Disturbance probability of a nominal (variation-free) cell."""
        return read_disturbance_probability(
            thermal_stability=self._mtj.thermal_stability,
            read_current_ua=self._mtj.read_current_ua,
            critical_current_ua=self._mtj.critical_current_ua,
            read_pulse_width_ns=self._mtj.read_pulse_width_ns,
            attempt_period_ns=self._mtj.attempt_period_ns,
        )

    def sample_cell_probabilities(self, num_cells: int) -> np.ndarray:
        """Sample per-read disturbance probabilities for ``num_cells`` cells.

        Returns:
            A float array of shape ``(num_cells,)``.
        """
        if num_cells < 0:
            raise ConfigurationError("num_cells must be non-negative")
        if num_cells == 0:
            return np.empty(0, dtype=float)

        v = self._variation
        delta_mult = np.clip(
            self._rng.normal(1.0, v.thermal_stability_sigma, size=num_cells),
            v.min_multiplier,
            v.max_multiplier,
        )
        ic0_mult = np.clip(
            self._rng.normal(1.0, v.critical_current_sigma, size=num_cells),
            v.min_multiplier,
            v.max_multiplier,
        )

        probabilities = np.empty(num_cells, dtype=float)
        for i in range(num_cells):
            delta = self._mtj.thermal_stability * delta_mult[i]
            ic0 = self._mtj.critical_current_ua * ic0_mult[i]
            # Keep the read current sub-critical even for weak cells.
            read_current = min(self._mtj.read_current_ua, 0.99 * ic0)
            probabilities[i] = read_disturbance_probability(
                thermal_stability=delta,
                read_current_ua=read_current,
                critical_current_ua=ic0,
                read_pulse_width_ns=self._mtj.read_pulse_width_ns,
                attempt_period_ns=self._mtj.attempt_period_ns,
            )
        return probabilities

    def worst_case_probability(self, num_cells: int, quantile: float = 0.999) -> float:
        """Estimate a high quantile of the per-cell disturbance probability.

        Args:
            num_cells: Sample size used for the empirical quantile.
            quantile: Which quantile to report (e.g. 0.999).
        """
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError("quantile must be in (0, 1)")
        samples = self.sample_cell_probabilities(num_cells)
        if samples.size == 0:
            return self.nominal_probability
        return float(np.quantile(samples, quantile))
