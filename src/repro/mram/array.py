"""Bit-true STT-MRAM data array (one cache block wide) for fault injection.

:class:`STTBlockArray` stores a block of bits as a NumPy array and applies
read disturbance to all '1' cells on every read, write failures on writes,
and scrubbing on ECC correction.  It is the storage substrate used by the
Monte-Carlo reliability experiments (:mod:`repro.reliability.montecarlo`)
and by the bit-true cache mode of :mod:`repro.core`.
"""

from __future__ import annotations

import numpy as np

from ..config import MTJConfig
from ..errors import ConfigurationError
from .read_disturbance import ReadDisturbanceModel
from .write_error import WriteErrorModel


class STTBlockArray:
    """A block-sized array of STT-MRAM cells with stochastic behaviour."""

    def __init__(
        self,
        num_bits: int,
        mtj: MTJConfig | None = None,
        disturb_probability: float | None = None,
        write_failure_probability: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Create an all-zero block.

        Args:
            num_bits: Block width in bits (e.g. 512 for a 64-byte block).
            mtj: MTJ operating point used to derive probabilities when the
                explicit probabilities are not given.
            disturb_probability: Per-read, per-cell disturbance probability;
                overrides the value derived from ``mtj``.
            write_failure_probability: Per-write, per-cell failure
                probability; overrides the value derived from ``mtj``.
            rng: Random generator; a default seeded generator is created when
                omitted.
        """
        if num_bits <= 0:
            raise ConfigurationError("num_bits must be positive")
        self._num_bits = num_bits
        config = mtj or MTJConfig()
        if disturb_probability is None:
            disturb_probability = ReadDisturbanceModel(config).per_read_probability
        if write_failure_probability is None:
            write_failure_probability = WriteErrorModel(
                config
            ).per_write_failure_probability
        if not 0.0 <= disturb_probability <= 1.0:
            raise ConfigurationError("disturb_probability must be in [0, 1]")
        if not 0.0 <= write_failure_probability <= 1.0:
            raise ConfigurationError("write_failure_probability must be in [0, 1]")
        self._disturb_probability = disturb_probability
        self._write_failure_probability = write_failure_probability
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._bits = np.zeros(num_bits, dtype=np.uint8)
        self._reads = 0
        self._disturb_events = 0

    # -- basic properties ---------------------------------------------------

    @property
    def num_bits(self) -> int:
        """Block width in bits."""
        return self._num_bits

    @property
    def disturb_probability(self) -> float:
        """Per-read, per-cell disturbance probability."""
        return self._disturb_probability

    @property
    def read_count(self) -> int:
        """Number of reads the block has experienced."""
        return self._reads

    @property
    def disturb_event_count(self) -> int:
        """Number of individual cell flips caused by read disturbance."""
        return self._disturb_events

    @property
    def ones_count(self) -> int:
        """Number of cells currently storing '1'."""
        return int(self._bits.sum())

    def snapshot(self) -> np.ndarray:
        """Return a copy of the current cell contents."""
        return self._bits.copy()

    # -- operations ----------------------------------------------------------

    def write(self, bits: np.ndarray) -> int:
        """Write a new block value.

        Cells whose value does not change are not pulsed.  Each changing cell
        may independently suffer a write failure and keep its old value.

        Args:
            bits: Array of 0/1 values of length ``num_bits``.

        Returns:
            The number of cells that failed to write.
        """
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self._num_bits,):
            raise ConfigurationError(
                f"expected {self._num_bits} bits, got shape {bits.shape}"
            )
        if not np.all((bits == 0) | (bits == 1)):
            raise ConfigurationError("bits must be 0 or 1")

        changing = bits != self._bits
        num_changing = int(changing.sum())
        if num_changing == 0:
            return 0
        if self._write_failure_probability > 0.0:
            failures = self._rng.random(num_changing) < self._write_failure_probability
        else:
            failures = np.zeros(num_changing, dtype=bool)
        new_values = bits[changing].copy()
        old_values = self._bits[changing]
        new_values[failures] = old_values[failures]
        self._bits[changing] = new_values
        return int(failures.sum())

    def read(self) -> np.ndarray:
        """Read the block, disturbing '1' cells with the configured probability.

        Returns:
            The value observed by the sense amplifiers (pre-disturbance).
        """
        observed = self._bits.copy()
        self._reads += 1
        if self._disturb_probability > 0.0:
            ones = np.flatnonzero(self._bits == 1)
            if ones.size:
                flips = ones[self._rng.random(ones.size) < self._disturb_probability]
                if flips.size:
                    self._bits[flips] = 0
                    self._disturb_events += int(flips.size)
        return observed

    def scrub(self, correct_bits: np.ndarray) -> int:
        """Restore the block to a known-correct value (ECC write-back).

        Args:
            correct_bits: The corrected block content.

        Returns:
            The number of cells that were actually repaired.
        """
        correct_bits = np.asarray(correct_bits, dtype=np.uint8)
        if correct_bits.shape != (self._num_bits,):
            raise ConfigurationError(
                f"expected {self._num_bits} bits, got shape {correct_bits.shape}"
            )
        repaired = int((correct_bits != self._bits).sum())
        self._bits = correct_bits.copy()
        return repaired

    def inject_errors(self, positions: np.ndarray | list[int]) -> None:
        """Force specific cells to flip, for targeted fault-injection tests."""
        positions = np.asarray(positions, dtype=int)
        if positions.size and (positions.min() < 0 or positions.max() >= self._num_bits):
            raise ConfigurationError("error positions out of range")
        self._bits[positions] ^= 1

    def error_count(self, reference_bits: np.ndarray) -> int:
        """Number of cells that differ from a reference value."""
        reference_bits = np.asarray(reference_bits, dtype=np.uint8)
        if reference_bits.shape != (self._num_bits,):
            raise ConfigurationError(
                f"expected {self._num_bits} bits, got shape {reference_bits.shape}"
            )
        return int((reference_bits != self._bits).sum())
