"""Retention-failure model for idle STT-MRAM cells.

Even without any access, a cell's free layer can spontaneously switch due to
thermal agitation.  The retention time follows the Néel–Arrhenius law and is
astronomically long for the thermal-stability factors used in caches
(Δ ≈ 60), so retention errors are negligible next to read disturbance — but
the model is included so experiments can sweep Δ downwards (e.g. for
scaled / low-energy MTJ designs) and observe the crossover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import MTJConfig
from ..errors import ConfigurationError


def retention_failure_probability(
    thermal_stability: float,
    idle_time_s: float,
    attempt_period_ns: float = 1.0,
) -> float:
    """Probability an idle cell loses its value within ``idle_time_s``.

    ``P = 1 - exp(-t_idle / (τ · exp(Δ)))``

    Args:
        thermal_stability: Thermal stability factor Δ.
        idle_time_s: Idle interval in seconds.
        attempt_period_ns: Attempt period τ in nanoseconds.

    Returns:
        Probability in [0, 1].
    """
    if thermal_stability <= 0:
        raise ConfigurationError("thermal_stability must be positive")
    if idle_time_s < 0:
        raise ConfigurationError("idle_time_s must be non-negative")
    if attempt_period_ns <= 0:
        raise ConfigurationError("attempt_period_ns must be positive")
    if idle_time_s == 0:
        return 0.0

    mean_retention_s = attempt_period_ns * 1e-9 * math.exp(thermal_stability)
    return -math.expm1(-idle_time_s / mean_retention_s)


@dataclass(frozen=True)
class RetentionModel:
    """Retention-failure model bound to an MTJ operating point."""

    config: MTJConfig

    def failure_probability(self, idle_time_s: float) -> float:
        """Probability a single idle cell flips within ``idle_time_s``."""
        return retention_failure_probability(
            thermal_stability=self.config.thermal_stability,
            idle_time_s=idle_time_s,
            attempt_period_ns=self.config.attempt_period_ns,
        )

    def block_failure_probability(self, num_ones: int, idle_time_s: float) -> float:
        """Probability at least one of ``num_ones`` idle cells flips."""
        if num_ones < 0:
            raise ConfigurationError("num_ones must be non-negative")
        if num_ones == 0:
            return 0.0
        p = self.failure_probability(idle_time_s)
        if p <= 0.0:
            return 0.0
        return -math.expm1(num_ones * math.log1p(-p))

    def mean_retention_time_s(self) -> float:
        """Mean retention time of a single cell in seconds."""
        return self.config.attempt_period_s * math.exp(self.config.thermal_stability)
