"""Read-disturbance probability model (paper Eq. 1).

Read disturbance is the unintentional switching of an STT-MRAM cell by the
read current.  Because the read current is unidirectional and flows in the
same direction as writing '0', only cells storing logic '1' can be disturbed
(they flip 1 -> 0).

The paper's Eq. (1) is printed as::

    P = 1 - exp( -(t_read / τ) · exp( -Δ · (I_read - I_C0) / I_C0 ) )

Taken literally, the inner exponent is *positive* for any read current below
the critical current (I_read < I_C0), which would make the disturbance
probability saturate at ~1 — the opposite of physical behaviour and
inconsistent with the 1e-8 .. 1e-7 per-read probabilities the paper itself
uses in its Section III-B numeric example.  The standard thermally-activated
switching model (and the cited sources) use the *negated* form, which this
module implements::

    P = 1 - exp( -(t_read / τ) · exp( -Δ · (1 - I_read / I_C0) ) )

With the default operating point (Δ = 60, I_read/I_C0 = 0.4, t_read = 2 ns,
τ = 1 ns) this lands in the same 1e-8-per-read regime as the paper's
examples.  The discrepancy is documented here and in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import MTJConfig
from ..errors import ConfigurationError


def read_disturbance_probability(
    thermal_stability: float,
    read_current_ua: float,
    critical_current_ua: float,
    read_pulse_width_ns: float,
    attempt_period_ns: float = 1.0,
) -> float:
    """Per-read probability that a cell storing '1' flips to '0'.

    Implements the corrected form of paper Eq. (1); see the module docstring
    for the sign discussion.

    Args:
        thermal_stability: Thermal stability factor Δ.
        read_current_ua: Read current I_read in microamperes.
        critical_current_ua: Critical switching current I_C0 in microamperes.
        read_pulse_width_ns: Read pulse width t_read in nanoseconds.
        attempt_period_ns: Attempt period τ in nanoseconds (default 1 ns, as
            assumed by the paper).

    Returns:
        Probability in [0, 1] of a disturbance during a single read.

    Raises:
        ConfigurationError: if any parameter is non-positive or the read
            current is not below the critical current.
    """
    if thermal_stability <= 0:
        raise ConfigurationError("thermal_stability must be positive")
    if read_current_ua <= 0 or critical_current_ua <= 0:
        raise ConfigurationError("currents must be positive")
    if read_current_ua >= critical_current_ua:
        raise ConfigurationError(
            "read current must be below the critical current for a read operation"
        )
    if read_pulse_width_ns <= 0 or attempt_period_ns <= 0:
        raise ConfigurationError("pulse width and attempt period must be positive")

    barrier = thermal_stability * (1.0 - read_current_ua / critical_current_ua)
    rate_per_attempt = math.exp(-barrier)
    exponent = -(read_pulse_width_ns / attempt_period_ns) * rate_per_attempt
    return -math.expm1(exponent)


def read_current_for_target_probability(
    target_probability: float,
    thermal_stability: float,
    critical_current_ua: float,
    read_pulse_width_ns: float,
    attempt_period_ns: float = 1.0,
) -> float:
    """Invert the disturbance model: read current giving a target probability.

    Useful for calibrating an operating point, e.g. "which read current gives
    P_RD = 1e-8 per read" so an experiment can be pinned to the paper's
    numeric example.

    Args:
        target_probability: Desired per-read disturbance probability,
            strictly between 0 and 1.
        thermal_stability: Thermal stability factor Δ.
        critical_current_ua: Critical switching current in microamperes.
        read_pulse_width_ns: Read pulse width in nanoseconds.
        attempt_period_ns: Attempt period in nanoseconds.

    Returns:
        The read current in microamperes that produces the target
        probability under the corrected Eq. (1).

    Raises:
        ConfigurationError: if the target is not achievable with a current in
            (0, I_C0), or parameters are invalid.
    """
    if not 0.0 < target_probability < 1.0:
        raise ConfigurationError("target_probability must be in (0, 1)")
    if thermal_stability <= 0 or critical_current_ua <= 0:
        raise ConfigurationError("thermal_stability and critical current must be positive")
    if read_pulse_width_ns <= 0 or attempt_period_ns <= 0:
        raise ConfigurationError("pulse width and attempt period must be positive")

    # P = 1 - exp(-(t/τ) e^{-Δ(1-r)})  =>  e^{-Δ(1-r)} = -ln(1-P)·τ/t
    rate = -math.log1p(-target_probability) * attempt_period_ns / read_pulse_width_ns
    if rate <= 0:
        raise ConfigurationError("target_probability too small to represent")
    barrier = -math.log(rate)
    ratio = 1.0 - barrier / thermal_stability
    if not 0.0 < ratio < 1.0:
        raise ConfigurationError(
            "target probability not reachable with a sub-critical read current "
            f"(required I_read/I_C0 = {ratio:.3f})"
        )
    return ratio * critical_current_ua


@dataclass(frozen=True)
class ReadDisturbanceModel:
    """Convenience wrapper binding the disturbance model to an MTJ config.

    The model exposes the per-read, per-cell disturbance probability and
    block-level helpers used by the cache reliability engine.
    """

    config: MTJConfig

    @property
    def per_read_probability(self) -> float:
        """Per-read disturbance probability of a single cell storing '1'."""
        return read_disturbance_probability(
            thermal_stability=self.config.thermal_stability,
            read_current_ua=self.config.read_current_ua,
            critical_current_ua=self.config.critical_current_ua,
            read_pulse_width_ns=self.config.read_pulse_width_ns,
            attempt_period_ns=self.config.attempt_period_ns,
        )

    def probability_after_reads(self, num_reads: int) -> float:
        """Probability a '1' cell has flipped after ``num_reads`` unchecked reads.

        Disturbance events in successive reads are independent Bernoulli
        trials, so the cell survives all reads with probability
        ``(1 - p)^num_reads``.
        """
        if num_reads < 0:
            raise ConfigurationError("num_reads must be non-negative")
        if num_reads == 0:
            return 0.0
        p = self.per_read_probability
        return -math.expm1(num_reads * math.log1p(-p))

    def expected_flips(self, num_ones: int, num_reads: int) -> float:
        """Expected number of flipped cells in a block.

        Args:
            num_ones: Number of cells storing '1' in the block.
            num_reads: Number of unchecked reads the block experienced.
        """
        if num_ones < 0:
            raise ConfigurationError("num_ones must be non-negative")
        return num_ones * self.probability_after_reads(num_reads)

    @classmethod
    def with_target_probability(
        cls, target_probability: float, base: MTJConfig | None = None
    ) -> "ReadDisturbanceModel":
        """Build a model whose per-read probability equals ``target_probability``.

        The read current of the base configuration is re-derived so the
        corrected Eq. (1) yields exactly the requested probability; all other
        parameters are preserved.
        """
        base = base or MTJConfig()
        current = read_current_for_target_probability(
            target_probability=target_probability,
            thermal_stability=base.thermal_stability,
            critical_current_ua=base.critical_current_ua,
            read_pulse_width_ns=base.read_pulse_width_ns,
            attempt_period_ns=base.attempt_period_ns,
        )
        config = MTJConfig(
            thermal_stability=base.thermal_stability,
            read_current_ua=current,
            critical_current_ua=base.critical_current_ua,
            read_pulse_width_ns=base.read_pulse_width_ns,
            attempt_period_ns=base.attempt_period_ns,
            write_pulse_width_ns=base.write_pulse_width_ns,
            write_current_ua=base.write_current_ua,
            temperature_k=base.temperature_k,
        )
        return cls(config=config)
