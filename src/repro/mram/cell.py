"""Bit-true STT-MRAM cell model for Monte-Carlo fault injection.

While the analytic models in :mod:`repro.mram.read_disturbance` and
:mod:`repro.reliability.binomial` compute error probabilities in closed form,
the Monte-Carlo path of the library needs cells whose stored value can
actually be disturbed by sampled random events.  :class:`STTCell` is that
object: it stores a single bit and mutates it according to the configured
disturbance / write-failure probabilities when driven by an external random
generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import MTJConfig
from ..errors import ConfigurationError
from .read_disturbance import ReadDisturbanceModel
from .write_error import WriteErrorModel


@dataclass
class STTCell:
    """A single STT-MRAM cell with a stored bit and disturbance behaviour.

    Attributes:
        value: The currently stored bit (0 or 1).
        disturb_probability: Per-read probability of flipping when storing 1.
        write_failure_probability: Per-write probability the pulse fails.
        read_count: Number of reads the cell has experienced.
        disturb_count: Number of read disturbances that actually occurred.
    """

    value: int = 0
    disturb_probability: float = 1e-8
    write_failure_probability: float = 0.0
    read_count: int = field(default=0, compare=False)
    disturb_count: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ConfigurationError("cell value must be 0 or 1")
        if not 0.0 <= self.disturb_probability <= 1.0:
            raise ConfigurationError("disturb_probability must be in [0, 1]")
        if not 0.0 <= self.write_failure_probability <= 1.0:
            raise ConfigurationError("write_failure_probability must be in [0, 1]")

    @classmethod
    def from_mtj(cls, config: MTJConfig, value: int = 0) -> "STTCell":
        """Build a cell whose probabilities follow an MTJ operating point."""
        read_model = ReadDisturbanceModel(config)
        write_model = WriteErrorModel(config)
        return cls(
            value=value,
            disturb_probability=read_model.per_read_probability,
            write_failure_probability=write_model.per_write_failure_probability,
        )

    def read(self, rng: np.random.Generator) -> int:
        """Read the cell, possibly disturbing it.

        Read disturbance is unidirectional: only a stored '1' can flip to
        '0'.  The returned value is the *pre-disturbance* content — the sense
        amplifier resolves before the flip completes — matching the standard
        modelling assumption that a disturbed read still returns correct data
        and the corruption is only visible to later reads.

        Args:
            rng: Random generator supplying the Bernoulli draw.

        Returns:
            The bit value seen by the sense amplifier.
        """
        observed = self.value
        self.read_count += 1
        if self.value == 1 and rng.random() < self.disturb_probability:
            self.value = 0
            self.disturb_count += 1
        return observed

    def write(self, value: int, rng: np.random.Generator | None = None) -> bool:
        """Write a bit into the cell.

        Args:
            value: The bit to store (0 or 1).
            rng: Optional random generator; when provided and the cell value
                must change, a write failure may leave the old value in place.

        Returns:
            ``True`` when the cell ends up holding ``value``.
        """
        if value not in (0, 1):
            raise ConfigurationError("cell value must be 0 or 1")
        if value == self.value:
            return True
        if rng is not None and rng.random() < self.write_failure_probability:
            return False
        self.value = value
        return True

    def scrub(self, correct_value: int) -> None:
        """Restore the cell to a known-correct value (ECC correction path)."""
        if correct_value not in (0, 1):
            raise ConfigurationError("cell value must be 0 or 1")
        self.value = correct_value
