"""Write-error model for STT-MRAM cells.

Writing an STT-MRAM cell is also a stochastic switching event: if the write
pulse ends before the free layer has switched, the cell keeps its old value
(a *write failure*).  The paper mentions write failures as the reliability
cost of the "disruptive read and restore" mitigation family [14, 15]: every
restore is an extra write and therefore an extra opportunity to fail.

The model mirrors the read-disturbance model but for currents at or above
the critical current, where switching is intended:

``P_write_success = 1 - exp(-(t_write / τ) · exp(-Δ · max(0, 1 - I_w/I_C0)))``

For I_w > I_C0 the barrier term is clamped to zero, leaving the familiar
``1 - exp(-t/τ)``-style success probability whose failure tail shrinks
exponentially with pulse width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import MTJConfig
from ..errors import ConfigurationError


def write_failure_probability(
    thermal_stability: float,
    write_current_ua: float,
    critical_current_ua: float,
    write_pulse_width_ns: float,
    attempt_period_ns: float = 1.0,
) -> float:
    """Probability that a single write pulse fails to switch the cell.

    Args:
        thermal_stability: Thermal stability factor Δ.
        write_current_ua: Write current in microamperes.
        critical_current_ua: Critical switching current in microamperes.
        write_pulse_width_ns: Write pulse width in nanoseconds.
        attempt_period_ns: Attempt period τ in nanoseconds.

    Returns:
        Failure probability in [0, 1].
    """
    if thermal_stability <= 0:
        raise ConfigurationError("thermal_stability must be positive")
    if write_current_ua <= 0 or critical_current_ua <= 0:
        raise ConfigurationError("currents must be positive")
    if write_pulse_width_ns <= 0 or attempt_period_ns <= 0:
        raise ConfigurationError("pulse width and attempt period must be positive")

    barrier = thermal_stability * max(0.0, 1.0 - write_current_ua / critical_current_ua)
    rate_per_attempt = math.exp(-barrier)
    success = -math.expm1(
        -(write_pulse_width_ns / attempt_period_ns) * rate_per_attempt
    )
    return 1.0 - success


@dataclass(frozen=True)
class WriteErrorModel:
    """Write-failure model bound to an MTJ operating point."""

    config: MTJConfig

    @property
    def per_write_failure_probability(self) -> float:
        """Probability that a single cell write fails."""
        return write_failure_probability(
            thermal_stability=self.config.thermal_stability,
            write_current_ua=self.config.write_current_ua,
            critical_current_ua=self.config.critical_current_ua,
            write_pulse_width_ns=self.config.write_pulse_width_ns,
            attempt_period_ns=self.config.attempt_period_ns,
        )

    def block_write_failure_probability(self, bits_written: int) -> float:
        """Probability at least one of ``bits_written`` cells fails to write.

        Only cells whose value actually changes are pulsed; callers should
        pass the Hamming distance between old and new block contents when it
        is known, or the full block width as a conservative bound.
        """
        if bits_written < 0:
            raise ConfigurationError("bits_written must be non-negative")
        if bits_written == 0:
            return 0.0
        p = self.per_write_failure_probability
        return -math.expm1(bits_written * math.log1p(-p))

    def restore_failure_probability(self, bits_restored: int, num_restores: int) -> float:
        """Failure probability of a restore-after-read mitigation scheme.

        Each restore rewrites ``bits_restored`` cells; performing
        ``num_restores`` restores multiplies the exposure.  Used by the
        :class:`repro.core.restore.RestoreCache` baseline to account for the
        write-failure cost the paper attributes to that approach.
        """
        if num_restores < 0:
            raise ConfigurationError("num_restores must be non-negative")
        if num_restores == 0:
            return 0.0
        single = self.block_write_failure_probability(bits_restored)
        if single <= 0.0:
            return 0.0
        return -math.expm1(num_restores * math.log1p(-single))
