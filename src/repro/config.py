"""Configuration dataclasses for devices, caches, and simulations.

The defaults reproduce the paper's setup:

* Table I cache hierarchy: 32 KB 4-way L1 I/D caches in SRAM and a shared
  1 MB 8-way L2 cache in STT-MRAM, all with 64-byte blocks and write-back
  policy.
* An MTJ operating point whose per-read disturbance probability lands in the
  1e-8 ... 1e-7 range the paper uses for its numeric examples (Section III-B).

Every configuration object validates itself in ``__post_init__`` and can be
round-tripped through plain dictionaries (``to_dict`` / ``from_dict``) so
experiments can be described in JSON files.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from enum import Enum
from pathlib import Path
from typing import Any, Mapping

from .errors import ConfigurationError
from .units import is_power_of_two, log2_exact, kib, mib, ns


class MemoryTechnology(str, Enum):
    """Storage technology of a cache level."""

    SRAM = "sram"
    STT_MRAM = "stt-mram"


class WritePolicy(str, Enum):
    """Cache write policy."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


class ReplacementPolicyName(str, Enum):
    """Replacement policies available in :mod:`repro.cache.replacement`."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"
    PLRU = "plru"
    LER = "ler"


class ReadPathMode(str, Enum):
    """Read-path organisation of a cache level.

    * ``PARALLEL`` — the conventional "fast access" mode: all ways of the set
      are read in parallel with tag comparison; only the selected way goes
      through the single ECC decoder (paper Fig. 2).
    * ``SERIAL``   — tag comparison first, then only the hitting way is read
      (no concealed reads, but longer access time).
    * ``REAP``     — parallel access, but the ECC decoder is replicated per
      way and placed before the MUX so every speculative read is checked and
      scrubbed (paper Fig. 4).
    """

    PARALLEL = "parallel"
    SERIAL = "serial"
    REAP = "reap"


class ECCKind(str, Enum):
    """Error-correcting code families supported by :mod:`repro.ecc`."""

    NONE = "none"
    PARITY = "parity"
    HAMMING_SEC = "hamming-sec"
    HAMMING_SECDED = "hamming-secded"
    INTERLEAVED_SECDED = "interleaved-secded"


@dataclass(frozen=True)
class MTJConfig:
    """Magnetic-tunnel-junction operating point.

    Attributes:
        thermal_stability: Thermal stability factor Δ (typically 40-80).
        read_current_ua: Read current I_read in microamperes.
        critical_current_ua: Critical switching current I_C0 at 0 K in
            microamperes; the read current must stay below it.
        read_pulse_width_ns: Read pulse width t_read in nanoseconds.
        attempt_period_ns: Attempt period τ in nanoseconds (paper assumes 1).
        write_pulse_width_ns: Write pulse width in nanoseconds.  The default
            (35 ns at 1.2x the critical current) keeps the per-bit write
            failure probability in the 1e-15 range, representative of a
            cache-grade STT-MRAM write with margin.
        write_current_ua: Write current in microamperes.
        temperature_k: Operating temperature in kelvin.
    """

    thermal_stability: float = 60.0
    read_current_ua: float = 40.0
    critical_current_ua: float = 100.0
    read_pulse_width_ns: float = 2.0
    attempt_period_ns: float = 1.0
    write_pulse_width_ns: float = 35.0
    write_current_ua: float = 120.0
    temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if self.thermal_stability <= 0:
            raise ConfigurationError("thermal_stability must be positive")
        if self.read_current_ua <= 0:
            raise ConfigurationError("read_current_ua must be positive")
        if self.critical_current_ua <= 0:
            raise ConfigurationError("critical_current_ua must be positive")
        if self.read_current_ua >= self.critical_current_ua:
            raise ConfigurationError(
                "read_current_ua must be below critical_current_ua; "
                f"got {self.read_current_ua} >= {self.critical_current_ua}"
            )
        if self.read_pulse_width_ns <= 0:
            raise ConfigurationError("read_pulse_width_ns must be positive")
        if self.attempt_period_ns <= 0:
            raise ConfigurationError("attempt_period_ns must be positive")
        if self.write_pulse_width_ns <= 0:
            raise ConfigurationError("write_pulse_width_ns must be positive")
        if self.write_current_ua <= 0:
            raise ConfigurationError("write_current_ua must be positive")
        if self.temperature_k <= 0:
            raise ConfigurationError("temperature_k must be positive")

    @property
    def read_pulse_width_s(self) -> float:
        """Read pulse width in seconds."""
        return ns(self.read_pulse_width_ns)

    @property
    def attempt_period_s(self) -> float:
        """Attempt period in seconds."""
        return ns(self.attempt_period_ns)

    @property
    def read_current_ratio(self) -> float:
        """I_read / I_C0, the fraction of the critical current used to read."""
        return self.read_current_ua / self.critical_current_ua

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MTJConfig":
        """Build from a plain dictionary, ignoring unknown keys."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class ECCConfig:
    """ECC protection applied to each cache block.

    Attributes:
        kind: Which code family to use.
        interleaving_degree: For interleaved codes, how many independent
            codewords the block is split into (ignored otherwise).
    """

    kind: ECCKind = ECCKind.HAMMING_SEC
    interleaving_degree: int = 1

    def __post_init__(self) -> None:
        if isinstance(self.kind, str) and not isinstance(self.kind, ECCKind):
            object.__setattr__(self, "kind", ECCKind(self.kind))
        if self.interleaving_degree < 1:
            raise ConfigurationError("interleaving_degree must be >= 1")
        if (
            self.kind is not ECCKind.INTERLEAVED_SECDED
            and self.interleaving_degree != 1
        ):
            raise ConfigurationError(
                "interleaving_degree is only meaningful for interleaved codes"
            )

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary."""
        return {"kind": self.kind.value, "interleaving_degree": self.interleaving_degree}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ECCConfig":
        """Build from a plain dictionary."""
        return cls(
            kind=ECCKind(data.get("kind", ECCKind.HAMMING_SEC)),
            interleaving_degree=int(data.get("interleaving_degree", 1)),
        )


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and organisation of one cache level.

    Attributes:
        name: Human-readable level name, e.g. ``"L2"``.
        size_bytes: Total data capacity in bytes.
        associativity: Number of ways per set.
        block_size_bytes: Cache-block (line) size in bytes.
        technology: SRAM or STT-MRAM.
        write_policy: Write-back or write-through.
        replacement: Replacement policy.
        read_path: Read-path organisation (parallel / serial / REAP).
        ecc: ECC protection of data blocks.
        address_bits: Width of the physical address in bits.
    """

    name: str
    size_bytes: int
    associativity: int
    block_size_bytes: int = 64
    technology: MemoryTechnology = MemoryTechnology.SRAM
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    replacement: ReplacementPolicyName = ReplacementPolicyName.LRU
    read_path: ReadPathMode = ReadPathMode.PARALLEL
    ecc: ECCConfig = field(default_factory=ECCConfig)
    address_bits: int = 48

    def __post_init__(self) -> None:
        for attr in ("technology", "write_policy", "replacement", "read_path"):
            value = getattr(self, attr)
            if isinstance(value, str) and not isinstance(value, Enum):
                enum_type = {
                    "technology": MemoryTechnology,
                    "write_policy": WritePolicy,
                    "replacement": ReplacementPolicyName,
                    "read_path": ReadPathMode,
                }[attr]
                object.__setattr__(self, attr, enum_type(value))
        if not self.name:
            raise ConfigurationError("cache level name must be non-empty")
        if self.size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        if self.associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        if self.block_size_bytes <= 0:
            raise ConfigurationError("block_size_bytes must be positive")
        if not is_power_of_two(self.block_size_bytes):
            raise ConfigurationError("block_size_bytes must be a power of two")
        if self.size_bytes % (self.block_size_bytes * self.associativity) != 0:
            raise ConfigurationError(
                "size_bytes must be a multiple of block_size_bytes * associativity"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"number of sets ({self.num_sets}) must be a power of two"
            )
        if self.address_bits <= self.offset_bits + self.index_bits:
            raise ConfigurationError(
                "address_bits too small for the chosen geometry"
            )

    # -- derived geometry ---------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Total number of cache blocks."""
        return self.size_bytes // self.block_size_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_blocks // self.associativity

    @property
    def offset_bits(self) -> int:
        """Number of block-offset bits in an address."""
        return log2_exact(self.block_size_bytes)

    @property
    def index_bits(self) -> int:
        """Number of set-index bits in an address."""
        return log2_exact(self.num_sets)

    @property
    def tag_bits(self) -> int:
        """Number of tag bits in an address."""
        return self.address_bits - self.offset_bits - self.index_bits

    @property
    def block_size_bits(self) -> int:
        """Cache-block size in bits."""
        return self.block_size_bytes * 8

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary."""
        return {
            "name": self.name,
            "size_bytes": self.size_bytes,
            "associativity": self.associativity,
            "block_size_bytes": self.block_size_bytes,
            "technology": self.technology.value,
            "write_policy": self.write_policy.value,
            "replacement": self.replacement.value,
            "read_path": self.read_path.value,
            "ecc": self.ecc.to_dict(),
            "address_bits": self.address_bits,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CacheLevelConfig":
        """Build from a plain dictionary."""
        payload = dict(data)
        ecc_data = payload.pop("ecc", None)
        ecc = ECCConfig.from_dict(ecc_data) if ecc_data is not None else ECCConfig()
        known = {f.name for f in fields(cls)} - {"ecc"}
        return cls(ecc=ecc, **{k: v for k, v in payload.items() if k in known})


@dataclass(frozen=True)
class HierarchyConfig:
    """Two-level cache hierarchy as in the paper's Table I."""

    l1i: CacheLevelConfig
    l1d: CacheLevelConfig
    l2: CacheLevelConfig

    def __post_init__(self) -> None:
        if self.l1i.block_size_bytes != self.l2.block_size_bytes:
            raise ConfigurationError("L1I and L2 block sizes must match")
        if self.l1d.block_size_bytes != self.l2.block_size_bytes:
            raise ConfigurationError("L1D and L2 block sizes must match")
        if self.l2.size_bytes < self.l1d.size_bytes:
            raise ConfigurationError("L2 must be at least as large as L1D")

    def levels(self) -> tuple[CacheLevelConfig, CacheLevelConfig, CacheLevelConfig]:
        """Return the (L1I, L1D, L2) level configurations."""
        return (self.l1i, self.l1d, self.l2)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary."""
        return {
            "l1i": self.l1i.to_dict(),
            "l1d": self.l1d.to_dict(),
            "l2": self.l2.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HierarchyConfig":
        """Build from a plain dictionary."""
        return cls(
            l1i=CacheLevelConfig.from_dict(data["l1i"]),
            l1d=CacheLevelConfig.from_dict(data["l1d"]),
            l2=CacheLevelConfig.from_dict(data["l2"]),
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Global simulation parameters.

    Attributes:
        mtj: MTJ operating point for the STT-MRAM level(s).
        hierarchy: Two-level cache hierarchy.
        clock_frequency_ghz: Core clock used to convert cycles to time.
        l2_read_latency_cycles: L2 hit latency in cycles.
        l2_write_latency_cycles: L2 write latency in cycles.
        memory_latency_cycles: Main-memory latency in cycles.
        seed: Default random seed for generators and Monte-Carlo runs.
    """

    mtj: MTJConfig = field(default_factory=MTJConfig)
    hierarchy: "HierarchyConfig" = None  # type: ignore[assignment]
    clock_frequency_ghz: float = 2.0
    l2_read_latency_cycles: int = 20
    l2_write_latency_cycles: int = 30
    memory_latency_cycles: int = 200
    seed: int = 1

    def __post_init__(self) -> None:
        if self.hierarchy is None:
            object.__setattr__(self, "hierarchy", paper_hierarchy())
        if self.clock_frequency_ghz <= 0:
            raise ConfigurationError("clock_frequency_ghz must be positive")
        for attr in (
            "l2_read_latency_cycles",
            "l2_write_latency_cycles",
            "memory_latency_cycles",
        ):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1e-9 / self.clock_frequency_ghz

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a plain dictionary."""
        return {
            "mtj": self.mtj.to_dict(),
            "hierarchy": self.hierarchy.to_dict(),
            "clock_frequency_ghz": self.clock_frequency_ghz,
            "l2_read_latency_cycles": self.l2_read_latency_cycles,
            "l2_write_latency_cycles": self.l2_write_latency_cycles,
            "memory_latency_cycles": self.memory_latency_cycles,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationConfig":
        """Build from a plain dictionary."""
        payload = dict(data)
        mtj = MTJConfig.from_dict(payload.pop("mtj", {}))
        hierarchy_data = payload.pop("hierarchy", None)
        hierarchy = (
            HierarchyConfig.from_dict(hierarchy_data)
            if hierarchy_data is not None
            else paper_hierarchy()
        )
        known = {f.name for f in fields(cls)} - {"mtj", "hierarchy"}
        return cls(
            mtj=mtj,
            hierarchy=hierarchy,
            **{k: v for k, v in payload.items() if k in known},
        )

    def to_json(self, path: str | Path) -> None:
        """Write this configuration to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def from_json(cls, path: str | Path) -> "SimulationConfig":
        """Load a configuration from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Paper defaults (Table I)
# ---------------------------------------------------------------------------


def paper_l1i_config() -> CacheLevelConfig:
    """L1 instruction cache from Table I: 32 KB, 4-way, 64 B blocks, SRAM."""
    return CacheLevelConfig(
        name="L1I",
        size_bytes=kib(32),
        associativity=4,
        block_size_bytes=64,
        technology=MemoryTechnology.SRAM,
        write_policy=WritePolicy.WRITE_BACK,
        ecc=ECCConfig(kind=ECCKind.NONE),
    )


def paper_l1d_config() -> CacheLevelConfig:
    """L1 data cache from Table I: 32 KB, 4-way, 64 B blocks, SRAM."""
    return CacheLevelConfig(
        name="L1D",
        size_bytes=kib(32),
        associativity=4,
        block_size_bytes=64,
        technology=MemoryTechnology.SRAM,
        write_policy=WritePolicy.WRITE_BACK,
        ecc=ECCConfig(kind=ECCKind.NONE),
    )


def paper_l2_config(read_path: ReadPathMode = ReadPathMode.PARALLEL) -> CacheLevelConfig:
    """Shared L2 from Table I: 1 MB, 8-way, 64 B blocks, STT-MRAM, SEC ECC."""
    return CacheLevelConfig(
        name="L2",
        size_bytes=mib(1),
        associativity=8,
        block_size_bytes=64,
        technology=MemoryTechnology.STT_MRAM,
        write_policy=WritePolicy.WRITE_BACK,
        read_path=read_path,
        ecc=ECCConfig(kind=ECCKind.HAMMING_SEC),
    )


def paper_hierarchy(read_path: ReadPathMode = ReadPathMode.PARALLEL) -> HierarchyConfig:
    """Full Table I hierarchy with the chosen L2 read-path organisation."""
    return HierarchyConfig(
        l1i=paper_l1i_config(),
        l1d=paper_l1d_config(),
        l2=paper_l2_config(read_path=read_path),
    )


def paper_simulation_config(
    read_path: ReadPathMode = ReadPathMode.PARALLEL, seed: int = 1
) -> SimulationConfig:
    """Complete paper-default simulation configuration."""
    return SimulationConfig(hierarchy=paper_hierarchy(read_path=read_path), seed=seed)
