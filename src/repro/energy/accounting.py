"""Per-simulation energy accounting.

:class:`EnergyAccountant` accumulates dynamic energy event by event as the
protected cache models run a trace, and can add leakage for a given runtime.
The figure builders use its totals to produce the Fig. 6 comparison (dynamic
energy of REAP normalised to the conventional cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .nvsim import NVSimLikeModel


@dataclass
class EnergyTotals:
    """Accumulated energy, in picojoules, broken down by component."""

    tag_pj: float = 0.0
    data_read_pj: float = 0.0
    data_write_pj: float = 0.0
    ecc_decode_pj: float = 0.0
    ecc_encode_pj: float = 0.0
    mux_pj: float = 0.0
    leakage_pj: float = 0.0

    @property
    def dynamic_pj(self) -> float:
        """Total dynamic energy."""
        return (
            self.tag_pj
            + self.data_read_pj
            + self.data_write_pj
            + self.ecc_decode_pj
            + self.ecc_encode_pj
            + self.mux_pj
        )

    @property
    def total_pj(self) -> float:
        """Dynamic plus leakage energy."""
        return self.dynamic_pj + self.leakage_pj

    @property
    def ecc_fraction_of_dynamic(self) -> float:
        """ECC (encode + decode) share of the dynamic energy."""
        if self.dynamic_pj == 0:
            return 0.0
        return (self.ecc_decode_pj + self.ecc_encode_pj) / self.dynamic_pj

    def as_dict(self) -> dict[str, float]:
        """Totals plus derived values as a flat dictionary."""
        data = dict(vars(self))
        data.update(
            dynamic_pj=self.dynamic_pj,
            total_pj=self.total_pj,
            ecc_fraction_of_dynamic=self.ecc_fraction_of_dynamic,
        )
        return data


@dataclass
class EnergyAccountant:
    """Accumulates the energy of cache events against an NVSim-like model."""

    model: NVSimLikeModel
    totals: EnergyTotals = field(default_factory=EnergyTotals)

    def record_read_access(self, ways_read: int, ecc_decodes: int) -> None:
        """Account one demand read with the given event counts."""
        if ways_read < 0 or ecc_decodes < 0:
            raise ConfigurationError("event counts must be non-negative")
        self.totals.tag_pj += self.model.tag_lookup_energy_pj()
        self.totals.data_read_pj += ways_read * self.model.way_read_energy_pj()
        self.totals.ecc_decode_pj += ecc_decodes * self.model.ecc_decode_energy_pj()
        self.totals.mux_pj += self.model.mux_energy_pj()

    def record_write_access(self) -> None:
        """Account one demand write (store or write-back into this level)."""
        breakdown = self.model.write_access_energy()
        self.totals.tag_pj += breakdown.tag_pj
        self.totals.data_write_pj += breakdown.data_array_pj
        self.totals.ecc_encode_pj += breakdown.ecc_pj

    def record_fill(self) -> None:
        """Account the installation of a block fetched from the next level."""
        self.record_write_access()

    def record_scrub(self) -> None:
        """Account an ECC-correction write-back (REAP scrubbing a way)."""
        self.totals.data_write_pj += self.model.way_write_energy_pj()
        self.totals.ecc_encode_pj += self.model.ecc_encode_energy_pj()

    def add_leakage(self, runtime_s: float) -> None:
        """Add leakage energy for a runtime interval."""
        if runtime_s < 0:
            raise ConfigurationError("runtime_s must be non-negative")
        self.totals.leakage_pj += self.model.leakage_power_mw() * 1e-3 * runtime_s * 1e12

    def dynamic_energy_pj(self) -> float:
        """Total dynamic energy accumulated so far."""
        return self.totals.dynamic_pj
