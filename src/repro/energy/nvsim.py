"""NVSim-like analytic cache model: per-access energy, area, and latency.

The paper extracts its energy/area/latency parameters from NVSim [21] and
uses them to cost the conventional and REAP organisations.  This module
provides the equivalent analytic model: given a cache level's geometry,
technology, ECC scheme and read-path organisation, it reports

* the energy of each primitive event (tag lookup, reading/writing one data
  way, one ECC encode/decode, the MUX),
* the total area, broken into data array, tag array, peripheral and ECC
  decoder contributions, and
* the read-hit latency under each read-path organisation.

Only ratios REAP/conventional are quoted in the reproduction figures, so the
absolute calibration of the component constants matters only insofar as it
keeps the decoder-to-array proportions in the range the paper reports
(decoder < 1% of access energy, ~0.1% of area).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CacheLevelConfig, ReadPathMode
from ..ecc import ECCScheme
from ..errors import ConfigurationError
from ..cache.readpath import ReadPathTiming, build_read_path
from ..units import to_mib
from .components import (
    ArrayEnergyProfile,
    ECCUnitProfile,
    PeripheralEnergyProfile,
    array_profile_for,
)


@dataclass(frozen=True)
class CacheAreaBreakdown:
    """Area of one cache level, by component, in square millimetres."""

    data_array_mm2: float
    tag_array_mm2: float
    peripheral_mm2: float
    ecc_decoders_mm2: float
    ecc_encoder_mm2: float

    @property
    def total_mm2(self) -> float:
        """Total cache area."""
        return (
            self.data_array_mm2
            + self.tag_array_mm2
            + self.peripheral_mm2
            + self.ecc_decoders_mm2
            + self.ecc_encoder_mm2
        )

    @property
    def ecc_decoder_fraction(self) -> float:
        """ECC decoders' share of the total area."""
        return self.ecc_decoders_mm2 / self.total_mm2


@dataclass(frozen=True)
class AccessEnergyBreakdown:
    """Energy of one demand access, by component, in picojoules."""

    tag_pj: float
    data_array_pj: float
    ecc_pj: float
    mux_pj: float

    @property
    def total_pj(self) -> float:
        """Total access energy."""
        return self.tag_pj + self.data_array_pj + self.ecc_pj + self.mux_pj

    @property
    def ecc_fraction(self) -> float:
        """ECC share of the access energy."""
        if self.total_pj == 0:
            return 0.0
        return self.ecc_pj / self.total_pj


class NVSimLikeModel:
    """Analytic energy/area/latency model of one cache level."""

    def __init__(
        self,
        config: CacheLevelConfig,
        ecc_scheme: ECCScheme,
        array_profile: ArrayEnergyProfile | None = None,
        peripheral_profile: PeripheralEnergyProfile | None = None,
        ecc_profile: ECCUnitProfile | None = None,
        timing: ReadPathTiming | None = None,
    ) -> None:
        """Create the model.

        Args:
            config: Cache geometry, technology and read-path organisation.
            ecc_scheme: The ECC code protecting each block (used for the
                check-bit storage overhead).
            array_profile: Per-way array energy profile; defaults to the
                technology's representative profile.
            peripheral_profile: Tag/MUX profile; defaults are used if omitted.
            ecc_profile: ECC codec profile; defaults are used if omitted.
            timing: Component latencies for the access-time model.
        """
        self._config = config
        self._ecc_scheme = ecc_scheme
        self._array = array_profile or array_profile_for(config.technology)
        self._peripheral = peripheral_profile or PeripheralEnergyProfile()
        self._ecc = ecc_profile or ECCUnitProfile()
        self._timing = timing or ReadPathTiming(
            data_read_ns=self._array.read_latency_ns,
            ecc_decode_ns=self._ecc.decode_latency_ns,
        )

    # -- basic properties -------------------------------------------------------

    @property
    def config(self) -> CacheLevelConfig:
        """The cache level being modelled."""
        return self._config

    @property
    def ecc_profile(self) -> ECCUnitProfile:
        """ECC codec energy/area profile."""
        return self._ecc

    @property
    def array_profile(self) -> ArrayEnergyProfile:
        """Data-array energy profile."""
        return self._array

    def num_ecc_decoders(self, read_path: ReadPathMode | None = None) -> int:
        """Number of ECC decoder instances required by the organisation."""
        mode = read_path or self._config.read_path
        return build_read_path(mode, self._config.associativity).ecc_decoder_instances

    # -- area --------------------------------------------------------------------

    def area(self, read_path: ReadPathMode | None = None) -> CacheAreaBreakdown:
        """Area breakdown for the cache under a read-path organisation.

        The data array is sized for data *plus* ECC check bits (the check
        bits are stored alongside the data, as in the paper's Fig. 2/4), the
        tag array as a fixed fraction of the data area, and ECC decoders are
        replicated per the organisation (1 conventional, k REAP).
        """
        capacity_mb = to_mib(self._config.size_bytes)
        check_bit_factor = 1.0 + self._ecc_scheme.storage_overhead
        data_area = self._array.area_mm2_per_mb * capacity_mb * check_bit_factor
        tag_area = data_area * self._peripheral.tag_area_fraction
        peripheral = self._peripheral.mux_area_mm2
        decoders = self.num_ecc_decoders(read_path) * self._ecc.decoder_area_mm2
        encoder = self._ecc.encoder_area_mm2
        return CacheAreaBreakdown(
            data_array_mm2=data_area,
            tag_array_mm2=tag_area,
            peripheral_mm2=peripheral,
            ecc_decoders_mm2=decoders,
            ecc_encoder_mm2=encoder,
        )

    def area_overhead_vs(self, baseline_read_path: ReadPathMode) -> float:
        """Relative area increase of this configuration vs. another read path."""
        mine = self.area().total_mm2
        baseline = self.area(read_path=baseline_read_path).total_mm2
        return mine / baseline - 1.0

    # -- per-event energies -------------------------------------------------------

    def tag_lookup_energy_pj(self) -> float:
        """Energy of reading and comparing all tags of one set."""
        return self._peripheral.tag_read_energy_pj

    def way_read_energy_pj(self) -> float:
        """Energy of reading one data way (data + check bits)."""
        return self._array.read_energy_pj * (1.0 + self._ecc_scheme.storage_overhead)

    def way_write_energy_pj(self) -> float:
        """Energy of writing one data way (data + check bits)."""
        return self._array.write_energy_pj * (1.0 + self._ecc_scheme.storage_overhead)

    def ecc_decode_energy_pj(self) -> float:
        """Energy of one ECC decode."""
        return self._ecc.decode_energy_pj

    def ecc_encode_energy_pj(self) -> float:
        """Energy of one ECC encode."""
        return self._ecc.encode_energy_pj

    def mux_energy_pj(self) -> float:
        """Energy of the way-selection MUX."""
        return self._peripheral.mux_energy_pj

    # -- per-access energies -------------------------------------------------------

    def read_access_energy(
        self, ways_read: int, ecc_decodes: int
    ) -> AccessEnergyBreakdown:
        """Energy of one demand read with the given event counts."""
        if ways_read < 0 or ecc_decodes < 0:
            raise ConfigurationError("event counts must be non-negative")
        return AccessEnergyBreakdown(
            tag_pj=self.tag_lookup_energy_pj(),
            data_array_pj=ways_read * self.way_read_energy_pj(),
            ecc_pj=ecc_decodes * self.ecc_decode_energy_pj(),
            mux_pj=self.mux_energy_pj(),
        )

    def write_access_energy(self) -> AccessEnergyBreakdown:
        """Energy of one demand write (tag update + one way write + encode)."""
        return AccessEnergyBreakdown(
            tag_pj=self._peripheral.tag_write_energy_pj,
            data_array_pj=self.way_write_energy_pj(),
            ecc_pj=self.ecc_encode_energy_pj(),
            mux_pj=0.0,
        )

    def fill_energy(self) -> AccessEnergyBreakdown:
        """Energy of installing a block fetched from the next level."""
        return self.write_access_energy()

    # -- leakage and latency --------------------------------------------------------

    def leakage_power_mw(self) -> float:
        """Static leakage power of the level."""
        capacity_mb = to_mib(self._config.size_bytes)
        check_bit_factor = 1.0 + self._ecc_scheme.storage_overhead
        return self._array.leakage_mw_per_mb * capacity_mb * check_bit_factor

    def read_hit_latency_ns(self, read_path: ReadPathMode | None = None) -> float:
        """Read-hit latency under a read-path organisation."""
        mode = read_path or self._config.read_path
        return build_read_path(mode, self._config.associativity).access_latency_ns(
            self._timing
        )
