"""Per-component energy / area / latency constants of the cache datapath.

The constants play the role of the paper's NVSim extraction: per-access
energies of the tag array, one data way (SRAM or STT-MRAM), the way-selection
MUX and the ECC encoder/decoder, plus leakage power and area densities.  The
defaults are representative 32 nm-class numbers chosen so that the *ratios*
the paper relies on hold:

* reading one STT-MRAM data way costs two orders of magnitude more than one
  ECC decode (the paper: the decoder is "less than 1%" of the access energy);
* an STT-MRAM write is several times more expensive than a read;
* SRAM leaks, STT-MRAM essentially does not.

Absolute joules are not meaningful for the reproduction; every figure uses
energies normalised to the conventional cache.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import MemoryTechnology
from ..errors import ConfigurationError


@dataclass(frozen=True)
class ArrayEnergyProfile:
    """Per-operation energy and static characteristics of one data array way.

    Attributes:
        read_energy_pj: Energy of reading one 64-byte way.
        write_energy_pj: Energy of writing one 64-byte way.
        leakage_mw_per_mb: Leakage power per megabyte of capacity.
        area_mm2_per_mb: Area per megabyte of capacity.
        read_latency_ns: Array read latency.
        write_latency_ns: Array write latency.
    """

    read_energy_pj: float
    write_energy_pj: float
    leakage_mw_per_mb: float
    area_mm2_per_mb: float
    read_latency_ns: float
    write_latency_ns: float

    def __post_init__(self) -> None:
        for name in (
            "read_energy_pj",
            "write_energy_pj",
            "area_mm2_per_mb",
            "read_latency_ns",
            "write_latency_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.leakage_mw_per_mb < 0:
            raise ConfigurationError("leakage_mw_per_mb must be non-negative")

    def scaled(self, factor: float) -> "ArrayEnergyProfile":
        """Return a copy with dynamic energies scaled by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        return replace(
            self,
            read_energy_pj=self.read_energy_pj * factor,
            write_energy_pj=self.write_energy_pj * factor,
        )


SRAM_PROFILE = ArrayEnergyProfile(
    read_energy_pj=35.0,
    write_energy_pj=38.0,
    leakage_mw_per_mb=320.0,
    area_mm2_per_mb=2.4,
    read_latency_ns=1.0,
    write_latency_ns=1.0,
)
"""Representative SRAM way: cheap dynamic accesses, heavy leakage, large cells."""


STT_MRAM_PROFILE = ArrayEnergyProfile(
    read_energy_pj=22.0,
    write_energy_pj=380.0,
    leakage_mw_per_mb=8.0,
    area_mm2_per_mb=0.9,
    read_latency_ns=1.2,
    write_latency_ns=5.0,
)
"""Representative STT-MRAM way: denser and near-zero leakage, expensive writes."""


@dataclass(frozen=True)
class PeripheralEnergyProfile:
    """Energy/area of the set-level peripheral logic.

    Attributes:
        tag_read_energy_pj: Energy of reading and comparing all tags of a set.
        tag_write_energy_pj: Energy of updating one tag entry.
        mux_energy_pj: Energy of the way-selection MUX.
        tag_area_fraction: Tag array area as a fraction of the data area.
        mux_area_mm2: Area of the output MUX.
    """

    tag_read_energy_pj: float = 9.0
    tag_write_energy_pj: float = 3.0
    mux_energy_pj: float = 0.8
    tag_area_fraction: float = 0.06
    mux_area_mm2: float = 0.002

    def __post_init__(self) -> None:
        for name in (
            "tag_read_energy_pj",
            "tag_write_energy_pj",
            "mux_energy_pj",
            "mux_area_mm2",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not 0 <= self.tag_area_fraction < 1:
            raise ConfigurationError("tag_area_fraction must be in [0, 1)")


@dataclass(frozen=True)
class ECCUnitProfile:
    """Energy/area/latency of one ECC encoder or decoder instance.

    Defaults correspond to a SEC(512+10) codec and keep the decoder at well
    under 1% of a data-way read, as the paper reports.  The
    :class:`repro.ecc.ECCCostModel` can be used to derive these numbers from
    a gate-level estimate instead.
    """

    decode_energy_pj: float = 1.5
    encode_energy_pj: float = 1.0
    decoder_area_mm2: float = 0.0009
    encoder_area_mm2: float = 0.0006
    decode_latency_ns: float = 0.4
    encode_latency_ns: float = 0.3

    def __post_init__(self) -> None:
        for name in (
            "decode_energy_pj",
            "encode_energy_pj",
            "decoder_area_mm2",
            "encoder_area_mm2",
            "decode_latency_ns",
            "encode_latency_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


def array_profile_for(technology: MemoryTechnology) -> ArrayEnergyProfile:
    """Default array profile for a memory technology."""
    if technology is MemoryTechnology.SRAM:
        return SRAM_PROFILE
    if technology is MemoryTechnology.STT_MRAM:
        return STT_MRAM_PROFILE
    raise ConfigurationError(f"unknown memory technology: {technology}")
