"""Energy, area and latency models (the reproduction's NVSim substitute).

Public surface:

* component profiles (:class:`ArrayEnergyProfile`, :class:`ECCUnitProfile`,
  :class:`PeripheralEnergyProfile`);
* :class:`NVSimLikeModel` — per-event and per-access energy, area breakdown,
  leakage and read-hit latency of one cache level;
* :class:`EnergyAccountant` / :class:`EnergyTotals` — per-simulation
  accumulation used by the Fig. 6 builder.
"""

from .accounting import EnergyAccountant, EnergyTotals
from .components import (
    SRAM_PROFILE,
    STT_MRAM_PROFILE,
    ArrayEnergyProfile,
    ECCUnitProfile,
    PeripheralEnergyProfile,
    array_profile_for,
)
from .nvsim import AccessEnergyBreakdown, CacheAreaBreakdown, NVSimLikeModel

__all__ = [
    "ArrayEnergyProfile",
    "ECCUnitProfile",
    "PeripheralEnergyProfile",
    "SRAM_PROFILE",
    "STT_MRAM_PROFILE",
    "array_profile_for",
    "NVSimLikeModel",
    "AccessEnergyBreakdown",
    "CacheAreaBreakdown",
    "EnergyAccountant",
    "EnergyTotals",
]
