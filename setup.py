"""Setuptools shim.

The environment used for the reproduction has no network access and ships a
setuptools without the ``wheel`` package, so PEP 660 editable installs
(``pip install -e .``) cannot build an editable wheel.  This shim lets the
legacy ``setup.py develop`` code path handle ``pip install -e .
--no-use-pep517 --no-build-isolation`` instead; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
