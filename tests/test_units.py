"""Tests for unit helpers and conversions."""

import math

import pytest

from repro import units


class TestTimeConversions:
    def test_ns_to_seconds(self):
        assert units.ns(1.0) == pytest.approx(1e-9)

    def test_ps_to_seconds(self):
        assert units.ps(1.0) == pytest.approx(1e-12)

    def test_us_to_seconds(self):
        assert units.us(2.0) == pytest.approx(2e-6)

    def test_to_ns_roundtrip(self):
        assert units.to_ns(units.ns(123.0)) == pytest.approx(123.0)

    def test_seconds_to_years(self):
        assert units.seconds_to_years(units.YEAR) == pytest.approx(1.0)

    def test_year_is_365_25_days(self):
        assert units.YEAR == pytest.approx(365.25 * 24 * 3600)


class TestCurrentConversions:
    def test_ua_to_amperes(self):
        assert units.ua(100.0) == pytest.approx(1e-4)

    def test_to_ua_roundtrip(self):
        assert units.to_ua(units.ua(37.5)) == pytest.approx(37.5)


class TestEnergyConversions:
    def test_pj(self):
        assert units.pj(1.0) == pytest.approx(1e-12)

    def test_nj(self):
        assert units.nj(1.0) == pytest.approx(1e-9)

    def test_fj(self):
        assert units.fj(1.0) == pytest.approx(1e-15)

    def test_to_pj_roundtrip(self):
        assert units.to_pj(units.pj(42.0)) == pytest.approx(42.0)

    def test_to_nj_roundtrip(self):
        assert units.to_nj(units.nj(7.0)) == pytest.approx(7.0)


class TestPowerAndArea:
    def test_mw(self):
        assert units.mw(3.0) == pytest.approx(3e-3)

    def test_to_mw_roundtrip(self):
        assert units.to_mw(units.mw(11.0)) == pytest.approx(11.0)

    def test_mm2(self):
        assert units.mm2(1.0) == pytest.approx(1e-6)

    def test_um2(self):
        assert units.um2(1.0) == pytest.approx(1e-12)

    def test_to_mm2_roundtrip(self):
        assert units.to_mm2(units.mm2(5.5)) == pytest.approx(5.5)

    def test_to_um2_roundtrip(self):
        assert units.to_um2(units.um2(2.5)) == pytest.approx(2.5)


class TestCapacity:
    def test_kib(self):
        assert units.kib(32) == 32 * 1024

    def test_mib(self):
        assert units.mib(1) == 1024 * 1024

    def test_to_kib(self):
        assert units.to_kib(units.kib(32)) == pytest.approx(32.0)

    def test_to_mib(self):
        assert units.to_mib(units.mib(3)) == pytest.approx(3.0)


class TestPowerOfTwoHelpers:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 1024, 1 << 20])
    def test_is_power_of_two_true(self, value):
        assert units.is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1000])
    def test_is_power_of_two_false(self, value):
        assert not units.is_power_of_two(value)

    @pytest.mark.parametrize("value, expected", [(1, 0), (2, 1), (64, 6), (1024, 10)])
    def test_log2_exact(self, value, expected):
        assert units.log2_exact(value) == expected

    def test_log2_exact_rejects_non_power(self):
        with pytest.raises(ValueError):
            units.log2_exact(48)

    def test_boltzmann_constant_value(self):
        assert math.isclose(units.BOLTZMANN_CONSTANT, 1.380649e-23)
