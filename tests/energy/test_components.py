"""Tests for the per-component energy profiles."""

import pytest

from repro.config import MemoryTechnology
from repro.energy import SRAM_PROFILE, STT_MRAM_PROFILE, ArrayEnergyProfile, array_profile_for
from repro.energy.components import ECCUnitProfile, PeripheralEnergyProfile
from repro.errors import ConfigurationError


class TestArrayProfiles:
    def test_stt_mram_writes_cost_more_than_reads(self):
        assert STT_MRAM_PROFILE.write_energy_pj > STT_MRAM_PROFILE.read_energy_pj

    def test_stt_mram_leaks_far_less_than_sram(self):
        assert STT_MRAM_PROFILE.leakage_mw_per_mb < SRAM_PROFILE.leakage_mw_per_mb / 10

    def test_stt_mram_is_denser_than_sram(self):
        assert STT_MRAM_PROFILE.area_mm2_per_mb < SRAM_PROFILE.area_mm2_per_mb

    def test_profile_for_technology(self):
        assert array_profile_for(MemoryTechnology.SRAM) is SRAM_PROFILE
        assert array_profile_for(MemoryTechnology.STT_MRAM) is STT_MRAM_PROFILE

    def test_scaled_profile(self):
        scaled = STT_MRAM_PROFILE.scaled(2.0)
        assert scaled.read_energy_pj == pytest.approx(2 * STT_MRAM_PROFILE.read_energy_pj)
        assert scaled.leakage_mw_per_mb == STT_MRAM_PROFILE.leakage_mw_per_mb

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            STT_MRAM_PROFILE.scaled(0.0)

    def test_rejects_negative_energy(self):
        with pytest.raises(ConfigurationError):
            ArrayEnergyProfile(
                read_energy_pj=-1.0,
                write_energy_pj=1.0,
                leakage_mw_per_mb=1.0,
                area_mm2_per_mb=1.0,
                read_latency_ns=1.0,
                write_latency_ns=1.0,
            )


class TestPeripheralAndECCProfiles:
    def test_defaults_valid(self):
        assert PeripheralEnergyProfile().tag_read_energy_pj > 0
        assert ECCUnitProfile().decode_energy_pj > 0

    def test_decoder_energy_is_tiny_vs_way_read(self):
        """The paper's premise: the decoder is a negligible fraction of a read."""
        assert ECCUnitProfile().decode_energy_pj < 0.1 * STT_MRAM_PROFILE.read_energy_pj

    def test_rejects_bad_tag_fraction(self):
        with pytest.raises(ConfigurationError):
            PeripheralEnergyProfile(tag_area_fraction=1.5)

    def test_rejects_nonpositive_decode_energy(self):
        with pytest.raises(ConfigurationError):
            ECCUnitProfile(decode_energy_pj=0.0)
