"""Tests for the per-simulation energy accountant."""

import pytest

from repro.config import paper_l2_config
from repro.ecc import build_ecc_scheme
from repro.energy import EnergyAccountant, NVSimLikeModel
from repro.errors import ConfigurationError


@pytest.fixture
def accountant():
    config = paper_l2_config()
    ecc = build_ecc_scheme(config.ecc, config.block_size_bits)
    return EnergyAccountant(NVSimLikeModel(config, ecc))


class TestEnergyAccountant:
    def test_starts_at_zero(self, accountant):
        assert accountant.totals.dynamic_pj == 0.0
        assert accountant.totals.total_pj == 0.0

    def test_read_access_accumulates(self, accountant):
        accountant.record_read_access(ways_read=8, ecc_decodes=1)
        totals = accountant.totals
        assert totals.data_read_pj == pytest.approx(8 * accountant.model.way_read_energy_pj())
        assert totals.ecc_decode_pj == pytest.approx(accountant.model.ecc_decode_energy_pj())
        assert totals.tag_pj > 0 and totals.mux_pj > 0

    def test_reap_read_adds_more_decode_energy(self):
        config = paper_l2_config()
        ecc = build_ecc_scheme(config.ecc, config.block_size_bits)
        conventional = EnergyAccountant(NVSimLikeModel(config, ecc))
        reap = EnergyAccountant(NVSimLikeModel(config, ecc))
        conventional.record_read_access(8, 1)
        reap.record_read_access(8, 8)
        assert reap.totals.dynamic_pj > conventional.totals.dynamic_pj
        difference = reap.totals.dynamic_pj - conventional.totals.dynamic_pj
        assert difference == pytest.approx(7 * reap.model.ecc_decode_energy_pj())

    def test_write_access(self, accountant):
        accountant.record_write_access()
        assert accountant.totals.data_write_pj > 0
        assert accountant.totals.ecc_encode_pj > 0

    def test_fill_counts_as_write(self, accountant):
        accountant.record_fill()
        assert accountant.totals.data_write_pj > 0

    def test_scrub_energy(self, accountant):
        accountant.record_scrub()
        assert accountant.totals.data_write_pj > 0

    def test_leakage(self, accountant):
        accountant.add_leakage(runtime_s=1e-3)
        assert accountant.totals.leakage_pj > 0
        assert accountant.totals.total_pj > accountant.totals.dynamic_pj

    def test_ecc_fraction_of_dynamic(self, accountant):
        accountant.record_read_access(8, 1)
        assert 0.0 < accountant.totals.ecc_fraction_of_dynamic < 0.05

    def test_as_dict(self, accountant):
        accountant.record_read_access(8, 1)
        data = accountant.totals.as_dict()
        assert "dynamic_pj" in data and "ecc_fraction_of_dynamic" in data

    def test_rejects_negative_events(self, accountant):
        with pytest.raises(ConfigurationError):
            accountant.record_read_access(-1, 0)
        with pytest.raises(ConfigurationError):
            accountant.add_leakage(-1.0)
