"""Tests for the NVSim-like cache energy/area/latency model."""

import pytest

from repro.config import ECCConfig, ECCKind, MemoryTechnology, ReadPathMode, paper_l2_config
from repro.ecc import build_ecc_scheme
from repro.energy import NVSimLikeModel
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    config = paper_l2_config()
    ecc = build_ecc_scheme(config.ecc, config.block_size_bits)
    return NVSimLikeModel(config, ecc)


class TestArea:
    def test_reap_needs_eight_decoders(self, model):
        assert model.num_ecc_decoders(ReadPathMode.PARALLEL) == 1
        assert model.num_ecc_decoders(ReadPathMode.REAP) == 8

    def test_area_overhead_below_one_percent(self, model):
        """The paper's Section V-B area claim."""
        overhead = model.area(ReadPathMode.REAP).total_mm2 / model.area(
            ReadPathMode.PARALLEL
        ).total_mm2 - 1.0
        assert 0.0 < overhead < 0.01

    def test_decoder_is_about_a_thousandth_of_the_cache(self, model):
        """The paper: decoder contributes ~0.1% of total cache area."""
        area = model.area(ReadPathMode.PARALLEL)
        assert 0.0001 < area.ecc_decoders_mm2 / area.total_mm2 < 0.01

    def test_data_array_dominates(self, model):
        area = model.area()
        assert area.data_array_mm2 > 0.8 * area.total_mm2

    def test_check_bits_increase_data_area(self):
        config = paper_l2_config()
        no_ecc = NVSimLikeModel(config, build_ecc_scheme(ECCConfig(kind=ECCKind.NONE), 512))
        sec = NVSimLikeModel(config, build_ecc_scheme(ECCConfig(kind=ECCKind.HAMMING_SEC), 512))
        assert sec.area().data_array_mm2 > no_ecc.area().data_array_mm2

    def test_area_overhead_vs_helper(self, model):
        reap_config = paper_l2_config(read_path=ReadPathMode.REAP)
        ecc = build_ecc_scheme(reap_config.ecc, reap_config.block_size_bits)
        reap_model = NVSimLikeModel(reap_config, ecc)
        assert reap_model.area_overhead_vs(ReadPathMode.PARALLEL) > 0


class TestEnergy:
    def test_read_access_breakdown(self, model):
        breakdown = model.read_access_energy(ways_read=8, ecc_decodes=1)
        assert breakdown.total_pj > 0
        assert breakdown.data_array_pj == pytest.approx(8 * model.way_read_energy_pj())

    def test_decoder_below_one_percent_of_read_access(self, model):
        """The paper: the ECC decoder is <1% of the access energy."""
        breakdown = model.read_access_energy(ways_read=8, ecc_decodes=1)
        assert breakdown.ecc_fraction < 0.01

    def test_reap_read_costs_slightly_more(self, model):
        conventional = model.read_access_energy(ways_read=8, ecc_decodes=1).total_pj
        reap = model.read_access_energy(ways_read=8, ecc_decodes=8).total_pj
        assert conventional < reap < conventional * 1.10

    def test_write_access_energy_dominated_by_array(self, model):
        breakdown = model.write_access_energy()
        assert breakdown.data_array_pj > 0.9 * breakdown.total_pj

    def test_write_way_costs_more_than_read_way(self, model):
        assert model.way_write_energy_pj() > model.way_read_energy_pj()

    def test_rejects_negative_counts(self, model):
        with pytest.raises(ConfigurationError):
            model.read_access_energy(ways_read=-1, ecc_decodes=0)


class TestLeakageAndLatency:
    def test_stt_mram_leakage_is_small(self, model):
        assert model.leakage_power_mw() < 20.0

    def test_sram_leaks_more(self):
        config = paper_l2_config()
        sram_config = type(config)(
            name="L2-sram",
            size_bytes=config.size_bytes,
            associativity=config.associativity,
            block_size_bytes=config.block_size_bytes,
            technology=MemoryTechnology.SRAM,
            ecc=config.ecc,
        )
        ecc = build_ecc_scheme(config.ecc, config.block_size_bits)
        sram = NVSimLikeModel(sram_config, ecc)
        stt = NVSimLikeModel(config, ecc)
        assert sram.leakage_power_mw() > 10 * stt.leakage_power_mw()

    def test_reap_latency_not_longer(self, model):
        assert model.read_hit_latency_ns(ReadPathMode.REAP) <= model.read_hit_latency_ns(
            ReadPathMode.PARALLEL
        )

    def test_serial_latency_longer(self, model):
        assert model.read_hit_latency_ns(ReadPathMode.SERIAL) > model.read_hit_latency_ns(
            ReadPathMode.PARALLEL
        )
