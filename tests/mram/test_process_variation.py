"""Tests for the process-variation sampler."""

import numpy as np
import pytest

from repro.config import MTJConfig
from repro.errors import ConfigurationError
from repro.mram import ProcessVariationConfig, ProcessVariationSampler


class TestProcessVariationConfig:
    def test_defaults_valid(self):
        config = ProcessVariationConfig()
        assert config.thermal_stability_sigma == pytest.approx(0.05)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            ProcessVariationConfig(thermal_stability_sigma=-0.1)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            ProcessVariationConfig(min_multiplier=1.2, max_multiplier=1.4)


class TestProcessVariationSampler:
    def test_sample_shape(self):
        sampler = ProcessVariationSampler(MTJConfig(), seed=3)
        samples = sampler.sample_cell_probabilities(100)
        assert samples.shape == (100,)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_zero_cells_gives_empty(self):
        sampler = ProcessVariationSampler(MTJConfig())
        assert sampler.sample_cell_probabilities(0).size == 0

    def test_reproducible_with_seed(self):
        a = ProcessVariationSampler(MTJConfig(), seed=7).sample_cell_probabilities(50)
        b = ProcessVariationSampler(MTJConfig(), seed=7).sample_cell_probabilities(50)
        assert np.allclose(a, b)

    def test_zero_variation_matches_nominal(self):
        variation = ProcessVariationConfig(
            thermal_stability_sigma=0.0, critical_current_sigma=0.0
        )
        sampler = ProcessVariationSampler(MTJConfig(), variation=variation, seed=1)
        samples = sampler.sample_cell_probabilities(20)
        assert np.allclose(samples, sampler.nominal_probability, rtol=1e-9)

    def test_variation_spreads_probabilities(self):
        sampler = ProcessVariationSampler(MTJConfig(), seed=5)
        samples = sampler.sample_cell_probabilities(500)
        # Variation in Delta moves the probability by orders of magnitude.
        assert samples.max() / max(samples.min(), 1e-300) > 10.0

    def test_worst_case_exceeds_nominal(self):
        sampler = ProcessVariationSampler(MTJConfig(), seed=11)
        assert sampler.worst_case_probability(500) >= sampler.nominal_probability

    def test_worst_case_rejects_bad_quantile(self):
        with pytest.raises(ConfigurationError):
            ProcessVariationSampler(MTJConfig()).worst_case_probability(10, quantile=1.5)

    def test_negative_cells_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessVariationSampler(MTJConfig()).sample_cell_probabilities(-1)
