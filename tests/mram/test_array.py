"""Tests for the bit-true STT block array."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mram import STTBlockArray


def make_array(num_bits=64, disturb=0.0, write_fail=0.0, seed=0):
    return STTBlockArray(
        num_bits=num_bits,
        disturb_probability=disturb,
        write_failure_probability=write_fail,
        rng=np.random.default_rng(seed),
    )


class TestConstruction:
    def test_starts_all_zero(self):
        array = make_array()
        assert array.ones_count == 0
        assert array.num_bits == 64

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConfigurationError):
            STTBlockArray(num_bits=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            STTBlockArray(num_bits=8, disturb_probability=2.0)

    def test_default_probabilities_from_mtj(self):
        array = STTBlockArray(num_bits=8)
        assert 0.0 <= array.disturb_probability < 1.0


class TestWrite:
    def test_write_sets_bits(self):
        array = make_array(8)
        bits = np.array([1, 0, 1, 0, 1, 1, 0, 0], dtype=np.uint8)
        failures = array.write(bits)
        assert failures == 0
        assert np.array_equal(array.snapshot(), bits)

    def test_write_wrong_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            make_array(8).write(np.ones(4, dtype=np.uint8))

    def test_write_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            make_array(4).write(np.array([0, 1, 2, 0]))

    def test_write_failures_leave_old_values(self):
        array = make_array(16, write_fail=1.0)
        bits = np.ones(16, dtype=np.uint8)
        failures = array.write(bits)
        assert failures == 16
        assert array.ones_count == 0

    def test_unchanged_bits_are_not_pulsed(self):
        array = make_array(8, write_fail=1.0)
        failures = array.write(np.zeros(8, dtype=np.uint8))
        assert failures == 0


class TestReadAndDisturb:
    def test_read_returns_pre_disturbance_value(self):
        array = make_array(8, disturb=1.0)
        array.write(np.ones(8, dtype=np.uint8))
        observed = array.read()
        assert observed.sum() == 8
        assert array.ones_count == 0
        assert array.disturb_event_count == 8

    def test_zero_disturbance_preserves_content(self):
        array = make_array(32)
        pattern = (np.arange(32) % 2).astype(np.uint8)
        array.write(pattern)
        for _ in range(50):
            array.read()
        assert np.array_equal(array.snapshot(), pattern)

    def test_read_count_tracks(self):
        array = make_array(8)
        for _ in range(7):
            array.read()
        assert array.read_count == 7

    def test_only_ones_can_flip(self):
        array = make_array(16, disturb=1.0)
        pattern = np.zeros(16, dtype=np.uint8)
        pattern[:4] = 1
        array.write(pattern)
        array.read()
        assert array.disturb_event_count == 4
        assert array.ones_count == 0


class TestScrubAndInjection:
    def test_scrub_restores(self):
        array = make_array(8, disturb=1.0)
        golden = np.ones(8, dtype=np.uint8)
        array.write(golden)
        array.read()
        repaired = array.scrub(golden)
        assert repaired == 8
        assert np.array_equal(array.snapshot(), golden)

    def test_inject_errors_flips_positions(self):
        array = make_array(8)
        array.inject_errors([0, 3])
        assert array.snapshot()[0] == 1
        assert array.snapshot()[3] == 1

    def test_inject_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            make_array(8).inject_errors([9])

    def test_error_count_against_reference(self):
        array = make_array(8)
        reference = np.zeros(8, dtype=np.uint8)
        array.inject_errors([1, 2, 5])
        assert array.error_count(reference) == 3

    def test_error_count_shape_check(self):
        with pytest.raises(ConfigurationError):
            make_array(8).error_count(np.zeros(4, dtype=np.uint8))
