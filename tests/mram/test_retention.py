"""Tests for the retention-failure model."""

import pytest

from repro.config import MTJConfig
from repro.errors import ConfigurationError
from repro.mram import RetentionModel, retention_failure_probability


class TestRetentionFailureProbability:
    def test_zero_idle_time_no_failure(self):
        assert retention_failure_probability(60.0, 0.0) == 0.0

    def test_bounded(self):
        assert 0.0 <= retention_failure_probability(30.0, 1.0) <= 1.0

    def test_grows_with_idle_time(self):
        short = retention_failure_probability(40.0, 1.0)
        long = retention_failure_probability(40.0, 1000.0)
        assert long > short

    def test_shrinks_with_thermal_stability(self):
        weak = retention_failure_probability(30.0, 1.0)
        strong = retention_failure_probability(60.0, 1.0)
        assert strong < weak

    def test_delta_60_is_negligible_over_a_year(self):
        p = retention_failure_probability(60.0, 3.15e7)
        assert p < 1e-9

    def test_rejects_negative_idle(self):
        with pytest.raises(ConfigurationError):
            retention_failure_probability(60.0, -1.0)


class TestRetentionModel:
    def test_mean_retention_time_matches_arrhenius(self):
        model = RetentionModel(MTJConfig(thermal_stability=40.0, attempt_period_ns=1.0))
        assert model.mean_retention_time_s() == pytest.approx(1e-9 * 2.353852668370200e17, rel=1e-6)

    def test_block_probability_zero_for_zero_ones(self):
        model = RetentionModel(MTJConfig())
        assert model.block_failure_probability(0, 100.0) == 0.0

    def test_block_probability_grows_with_ones(self):
        model = RetentionModel(MTJConfig(thermal_stability=30.0))
        assert model.block_failure_probability(512, 1.0) >= model.block_failure_probability(10, 1.0)

    def test_negative_ones_rejected(self):
        with pytest.raises(ConfigurationError):
            RetentionModel(MTJConfig()).block_failure_probability(-1, 1.0)
