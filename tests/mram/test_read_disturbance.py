"""Tests for the read-disturbance probability model (corrected Eq. 1)."""

import math

import pytest

from repro.config import MTJConfig
from repro.errors import ConfigurationError
from repro.mram import (
    ReadDisturbanceModel,
    read_current_for_target_probability,
    read_disturbance_probability,
)


class TestReadDisturbanceProbability:
    def test_probability_in_unit_interval(self):
        p = read_disturbance_probability(60.0, 40.0, 100.0, 2.0)
        assert 0.0 < p < 1.0

    def test_default_operating_point_near_paper_regime(self):
        """The paper's numeric examples use P_RD around 1e-8...1e-7."""
        p = read_disturbance_probability(60.0, 40.0, 100.0, 2.0)
        assert 1e-17 < p < 1e-4

    def test_monotonic_in_read_current(self):
        ps = [read_disturbance_probability(60.0, i, 100.0, 2.0) for i in (20, 40, 60, 80)]
        assert ps == sorted(ps)

    def test_monotonic_in_pulse_width(self):
        ps = [read_disturbance_probability(60.0, 50.0, 100.0, t) for t in (1.0, 2.0, 8.0)]
        assert ps == sorted(ps)

    def test_decreasing_in_thermal_stability(self):
        ps = [read_disturbance_probability(d, 50.0, 100.0, 2.0) for d in (40.0, 60.0, 80.0)]
        assert ps == sorted(ps, reverse=True)

    def test_closed_form_value(self):
        delta, iread, ic0, tread, tau = 60.0, 40.0, 100.0, 2.0, 1.0
        expected = 1 - math.exp(-(tread / tau) * math.exp(-delta * (1 - iread / ic0)))
        assert read_disturbance_probability(delta, iread, ic0, tread, tau) == pytest.approx(
            expected, rel=1e-12
        )

    def test_rejects_read_current_at_critical(self):
        with pytest.raises(ConfigurationError):
            read_disturbance_probability(60.0, 100.0, 100.0, 2.0)

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ConfigurationError):
            read_disturbance_probability(0.0, 40.0, 100.0, 2.0)

    def test_rejects_nonpositive_pulse(self):
        with pytest.raises(ConfigurationError):
            read_disturbance_probability(60.0, 40.0, 100.0, 0.0)


class TestInverseModel:
    @pytest.mark.parametrize("target", [1e-10, 1e-8, 1e-6])
    def test_roundtrip(self, target):
        current = read_current_for_target_probability(target, 60.0, 100.0, 2.0)
        achieved = read_disturbance_probability(60.0, current, 100.0, 2.0)
        assert achieved == pytest.approx(target, rel=1e-6)

    def test_rejects_target_of_one(self):
        with pytest.raises(ConfigurationError):
            read_current_for_target_probability(1.0, 60.0, 100.0, 2.0)

    def test_rejects_unreachable_target(self):
        # A probability this high would need a super-critical read current.
        with pytest.raises(ConfigurationError):
            read_current_for_target_probability(0.99, 60.0, 100.0, 2.0)


class TestReadDisturbanceModel:
    def test_per_read_probability_matches_function(self):
        config = MTJConfig()
        model = ReadDisturbanceModel(config)
        expected = read_disturbance_probability(
            config.thermal_stability,
            config.read_current_ua,
            config.critical_current_ua,
            config.read_pulse_width_ns,
            config.attempt_period_ns,
        )
        assert model.per_read_probability == pytest.approx(expected)

    def test_probability_after_zero_reads_is_zero(self):
        assert ReadDisturbanceModel(MTJConfig()).probability_after_reads(0) == 0.0

    def test_probability_accumulates_with_reads(self):
        model = ReadDisturbanceModel.with_target_probability(1e-6)
        one = model.probability_after_reads(1)
        many = model.probability_after_reads(1000)
        assert many > one
        assert many == pytest.approx(1000 * one, rel=1e-2)

    def test_expected_flips_scales_with_ones(self):
        model = ReadDisturbanceModel.with_target_probability(1e-6)
        assert model.expected_flips(200, 10) == pytest.approx(2 * model.expected_flips(100, 10))

    def test_with_target_probability_pins_value(self):
        model = ReadDisturbanceModel.with_target_probability(1e-8)
        assert model.per_read_probability == pytest.approx(1e-8, rel=1e-6)

    def test_negative_reads_rejected(self):
        with pytest.raises(ConfigurationError):
            ReadDisturbanceModel(MTJConfig()).probability_after_reads(-1)
