"""Tests for the static MTJ device model."""

import math

import pytest

from repro.config import MTJConfig
from repro.errors import ConfigurationError
from repro.mram import MTJDevice, default_mtj_device


class TestMTJDevice:
    def test_default_device_builds(self):
        device = default_mtj_device()
        assert device.thermal_stability == pytest.approx(60.0)

    def test_tmr_ratio(self):
        device = MTJDevice(
            config=MTJConfig(),
            resistance_parallel_ohm=3000.0,
            resistance_antiparallel_ohm=6000.0,
        )
        assert device.tmr_ratio == pytest.approx(1.0)

    def test_rejects_inverted_resistances(self):
        with pytest.raises(ConfigurationError):
            MTJDevice(
                config=MTJConfig(),
                resistance_parallel_ohm=6000.0,
                resistance_antiparallel_ohm=3000.0,
            )

    def test_read_voltage_higher_for_one(self):
        device = default_mtj_device()
        assert device.read_voltage_v(True) > device.read_voltage_v(False)

    def test_sense_margin_positive(self):
        assert default_mtj_device().sense_margin_v() > 0

    def test_energy_barrier_scales_with_delta(self):
        low = MTJDevice(config=MTJConfig(thermal_stability=40.0))
        high = MTJDevice(config=MTJConfig(thermal_stability=80.0))
        assert high.energy_barrier_joule == pytest.approx(2 * low.energy_barrier_joule)

    def test_retention_time_is_astronomical_at_delta_60(self):
        device = default_mtj_device()
        # exp(60) ns is ~3.6 thousand years; far beyond any cache residency.
        assert device.retention_time_s() > 1e10


class TestSwitchingProbability:
    def test_zero_pulse_never_switches(self):
        assert default_mtj_device().switching_probability(100.0, 0.0) == 0.0

    def test_zero_current_never_switches(self):
        assert default_mtj_device().switching_probability(0.0, 1e-9) == 0.0

    def test_probability_bounded(self):
        device = default_mtj_device()
        p = device.switching_probability(90.0, 10e-9)
        assert 0.0 <= p <= 1.0

    def test_monotonic_in_current(self):
        device = default_mtj_device()
        probabilities = [
            device.switching_probability(current, 5e-9) for current in (20, 50, 80, 99)
        ]
        assert probabilities == sorted(probabilities)

    def test_monotonic_in_pulse_width(self):
        device = default_mtj_device()
        probabilities = [
            device.switching_probability(90.0, width) for width in (1e-9, 5e-9, 50e-9)
        ]
        assert probabilities == sorted(probabilities)

    def test_above_critical_long_pulse_switches(self):
        device = default_mtj_device()
        # At the critical current the barrier vanishes; a pulse much longer
        # than the attempt period switches essentially surely.
        assert device.switching_probability(100.0, 1e-6) == pytest.approx(1.0)

    def test_low_current_probability_is_tiny(self):
        device = default_mtj_device()
        p = device.switching_probability(40.0, 2e-9)
        assert p < 1e-10

    def test_rejects_negative_current(self):
        with pytest.raises(ConfigurationError):
            default_mtj_device().switching_probability(-1.0, 1e-9)

    def test_rejects_negative_pulse(self):
        with pytest.raises(ConfigurationError):
            default_mtj_device().switching_probability(10.0, -1e-9)

    def test_matches_closed_form(self):
        config = MTJConfig()
        device = MTJDevice(config=config)
        current, width = 70.0, 3e-9
        ratio = current / config.critical_current_ua
        barrier = config.thermal_stability * (1 - ratio)
        expected = 1 - math.exp(-(width / config.attempt_period_s) * math.exp(-barrier))
        assert device.switching_probability(current, width) == pytest.approx(expected, rel=1e-9)
