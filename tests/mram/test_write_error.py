"""Tests for the write-failure model."""

import pytest

from repro.config import MTJConfig
from repro.errors import ConfigurationError
from repro.mram import WriteErrorModel, write_failure_probability


class TestWriteFailureProbability:
    def test_bounded(self):
        p = write_failure_probability(60.0, 120.0, 100.0, 10.0)
        assert 0.0 <= p <= 1.0

    def test_longer_pulse_fails_less(self):
        short = write_failure_probability(60.0, 120.0, 100.0, 2.0)
        long = write_failure_probability(60.0, 120.0, 100.0, 20.0)
        assert long < short

    def test_stronger_current_fails_less_or_equal(self):
        weak = write_failure_probability(60.0, 90.0, 100.0, 10.0)
        strong = write_failure_probability(60.0, 150.0, 100.0, 10.0)
        assert strong <= weak

    def test_sub_critical_write_mostly_fails_for_short_pulse(self):
        p = write_failure_probability(60.0, 50.0, 100.0, 1.0)
        assert p > 0.99

    def test_rejects_nonpositive_current(self):
        with pytest.raises(ConfigurationError):
            write_failure_probability(60.0, 0.0, 100.0, 10.0)

    def test_rejects_nonpositive_pulse(self):
        with pytest.raises(ConfigurationError):
            write_failure_probability(60.0, 120.0, 100.0, 0.0)


class TestWriteErrorModel:
    def test_per_write_probability_matches_function(self):
        config = MTJConfig()
        model = WriteErrorModel(config)
        expected = write_failure_probability(
            config.thermal_stability,
            config.write_current_ua,
            config.critical_current_ua,
            config.write_pulse_width_ns,
            config.attempt_period_ns,
        )
        assert model.per_write_failure_probability == pytest.approx(expected)

    def test_zero_bits_never_fail(self):
        assert WriteErrorModel(MTJConfig()).block_write_failure_probability(0) == 0.0

    def test_block_probability_grows_with_bits(self):
        model = WriteErrorModel(MTJConfig())
        assert model.block_write_failure_probability(512) >= model.block_write_failure_probability(64)

    def test_restore_exposure_grows_with_restores(self):
        model = WriteErrorModel(MTJConfig())
        one = model.restore_failure_probability(512, 1)
        many = model.restore_failure_probability(512, 1000)
        assert many >= one

    def test_zero_restores_no_failure(self):
        assert WriteErrorModel(MTJConfig()).restore_failure_probability(512, 0) == 0.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            WriteErrorModel(MTJConfig()).block_write_failure_probability(-1)
