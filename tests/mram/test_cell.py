"""Tests for the bit-true STT cell."""

import numpy as np
import pytest

from repro.config import MTJConfig
from repro.errors import ConfigurationError
from repro.mram import STTCell


class TestSTTCellBasics:
    def test_default_cell_stores_zero(self):
        assert STTCell().value == 0

    def test_rejects_invalid_value(self):
        with pytest.raises(ConfigurationError):
            STTCell(value=2)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            STTCell(disturb_probability=1.5)

    def test_from_mtj_derives_probabilities(self):
        cell = STTCell.from_mtj(MTJConfig(), value=1)
        assert cell.value == 1
        assert 0.0 <= cell.disturb_probability < 1.0


class TestReadBehaviour:
    def test_read_returns_stored_value(self):
        rng = np.random.default_rng(0)
        cell = STTCell(value=1, disturb_probability=0.0)
        assert cell.read(rng) == 1
        assert cell.value == 1

    def test_read_zero_never_disturbs(self):
        rng = np.random.default_rng(0)
        cell = STTCell(value=0, disturb_probability=1.0)
        for _ in range(10):
            assert cell.read(rng) == 0
        assert cell.disturb_count == 0

    def test_certain_disturbance_flips_one_to_zero(self):
        rng = np.random.default_rng(0)
        cell = STTCell(value=1, disturb_probability=1.0)
        observed = cell.read(rng)
        # The sense amplifier still sees the pre-disturbance value.
        assert observed == 1
        assert cell.value == 0
        assert cell.disturb_count == 1

    def test_read_count_increments(self):
        rng = np.random.default_rng(0)
        cell = STTCell(value=0)
        for _ in range(5):
            cell.read(rng)
        assert cell.read_count == 5

    def test_statistical_disturb_rate(self):
        rng = np.random.default_rng(42)
        flips = 0
        trials = 2000
        for _ in range(trials):
            cell = STTCell(value=1, disturb_probability=0.3)
            cell.read(rng)
            flips += cell.disturb_count
        assert flips / trials == pytest.approx(0.3, abs=0.05)


class TestWriteAndScrub:
    def test_write_same_value_always_succeeds(self):
        cell = STTCell(value=1, write_failure_probability=1.0)
        assert cell.write(1, np.random.default_rng(0))
        assert cell.value == 1

    def test_write_failure_keeps_old_value(self):
        cell = STTCell(value=0, write_failure_probability=1.0)
        assert not cell.write(1, np.random.default_rng(0))
        assert cell.value == 0

    def test_write_without_rng_is_deterministic(self):
        cell = STTCell(value=0, write_failure_probability=1.0)
        assert cell.write(1)
        assert cell.value == 1

    def test_write_rejects_invalid_value(self):
        with pytest.raises(ConfigurationError):
            STTCell().write(3)

    def test_scrub_restores_value(self):
        cell = STTCell(value=0)
        cell.scrub(1)
        assert cell.value == 1

    def test_scrub_rejects_invalid_value(self):
        with pytest.raises(ConfigurationError):
            STTCell().scrub(7)
