"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.accesses == 50_000
        assert args.p_cell == 1e-8
        assert args.workloads == []

    def test_example_arguments(self):
        args = build_parser().parse_args(["example", "--reads", "100"])
        assert args.reads == 100


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "L2" in out and "stt-mram" in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 5" in out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "Area overhead (%)" in out and "REAP" in out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out and "mcf" in out

    def test_fig5_small_run(self, capsys):
        assert main(["fig5", "--accesses", "2000", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "average=" in out

    def test_fig6_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig6.csv"
        assert main(["fig6", "--accesses", "2000", "--csv", str(csv_path), "gcc"]) == 0
        assert csv_path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_fig3_small_run(self, capsys):
        assert main(["fig3", "--accesses", "3000", "perlbench"]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out and "Failure rate" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            main(["fig5", "--accesses", "1000", "not-a-benchmark"])
