"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_sweep_arguments, _parse_sweep_value, build_parser, main
from repro.errors import CampaignError, ConfigurationError


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.accesses == 50_000
        assert args.p_cell == 1e-8
        assert args.workloads == []

    def test_example_arguments(self):
        args = build_parser().parse_args(["example", "--reads", "100"])
        assert args.reads == 100


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "L2" in out and "stt-mram" in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 5" in out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "Area overhead (%)" in out and "REAP" in out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out and "mcf" in out

    def test_fig5_small_run(self, capsys):
        assert main(["fig5", "--accesses", "2000", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "average=" in out

    def test_fig6_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig6.csv"
        assert main(["fig6", "--accesses", "2000", "--csv", str(csv_path), "gcc"]) == 0
        assert csv_path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_fig3_small_run(self, capsys):
        assert main(["fig3", "--accesses", "3000", "perlbench"]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out and "Failure rate" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            main(["fig5", "--accesses", "1000", "not-a-benchmark"])


class TestCampaignCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.jobs == 1
        assert args.store == "campaign_store.jsonl"
        assert args.schemes == "reap"
        assert args.sweep == []

    def test_sweep_value_parsing(self):
        assert _parse_sweep_value("3") == 3
        assert _parse_sweep_value("1e-8") == 1e-8
        assert _parse_sweep_value("true") is True
        assert _parse_sweep_value("none") is None
        assert _parse_sweep_value("lru") == "lru"

    def test_sweep_argument_parsing(self):
        sweep = _parse_sweep_arguments(["p_cell=1e-9,1e-8", "ones_count=50,100"])
        assert sweep == (("p_cell", (1e-9, 1e-8)), ("ones_count", (50, 100)))

    def test_malformed_sweep_argument_rejected(self):
        with pytest.raises(CampaignError):
            _parse_sweep_arguments(["p_cell"])

    def test_backend_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.backend == "local"
        assert args.shard_width is None
        assert args.lease_timeout == 30.0

    def test_dotted_sweep_campaign(self, tmp_path, capsys):
        argv = [
            "campaign", "gcc",
            "--accesses", "800",
            "--store", str(tmp_path / "store.jsonl"),
            "--sweep", "l2_config.associativity=4,8",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "l2_config.associativity=4" in out
        assert "2 jobs: 2 executed" in out

    def test_sharded_store_path(self, tmp_path, capsys):
        argv = [
            "campaign", "gcc",
            "--accesses", "800",
            "--store", str(tmp_path / "store_dir"),
            "--shard-width", "1",
        ]
        assert main(argv) == 0
        assert (tmp_path / "store_dir" / "store.json").exists()
        assert main(argv) == 0
        assert "1 cached" in capsys.readouterr().out

    def test_campaign_run_and_resume(self, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        argv = [
            "campaign", "gcc",
            "--accesses", "1000",
            "--store", str(store),
            "--csv", str(tmp_path / "summary.csv"),
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "1 jobs" in captured.out and "1 executed" in captured.out
        # Per-job progress is telemetry-driven and goes to stderr, keeping
        # stdout clean for the summary tables.
        assert "ran in" in captured.err
        assert store.exists()
        assert (tmp_path / "summary.csv").exists()
        # Second invocation: everything is served from the store.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "0 executed" in captured.out and "1 cached" in captured.out
        assert "cached" in captured.err


class TestTelemetryCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.telemetry is None
        assert args.progress is False
        assert args.quiet is False

    def test_campaign_telemetry_and_stats(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        argv = [
            "campaign", "gcc",
            "--accesses", "800",
            "--store", str(tmp_path / "store.jsonl"),
            "--telemetry", str(events),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert events.exists()
        assert main(["stats", str(events)]) == 0
        out = capsys.readouterr().out
        assert "phase timings" in out
        assert "campaign" in out and "engine selections" in out
        assert "accesses/s" in out

    def test_quiet_suppresses_progress_and_header(self, tmp_path, capsys):
        argv = [
            "campaign", "gcc",
            "--accesses", "800",
            "--store", str(tmp_path / "store.jsonl"),
            "--quiet",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "jobs on" not in captured.out  # header line suppressed
        assert "1 executed" in captured.out  # summary tables still print

    def test_quiet_still_writes_telemetry(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        argv = [
            "campaign", "gcc",
            "--accesses", "800",
            "--store", str(tmp_path / "store.jsonl"),
            "--quiet",
            "--telemetry", str(events),
        ]
        assert main(argv) == 0
        assert capsys.readouterr().err == ""
        assert events.exists() and events.stat().st_size > 0

    def test_live_progress_mode(self, tmp_path, capsys):
        argv = [
            "campaign", "gcc",
            "--accesses", "800",
            "--store", str(tmp_path / "store.jsonl"),
            "--progress",
        ]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "\r" in err and "jobs 1/1" in err
        assert "campaign finished: 1 jobs" in err

    def test_stats_on_missing_file_fails_cleanly(self, tmp_path):
        from repro.errors import TelemetryError

        with pytest.raises(TelemetryError):
            main(["stats", str(tmp_path / "missing.jsonl")])


class TestStoreCommands:
    def run_small_campaign(self, store_path, workload="gcc", accesses="800"):
        assert (
            main(
                [
                    "campaign", workload,
                    "--accesses", accesses,
                    "--store", str(store_path),
                ]
            )
            == 0
        )

    def test_merge_and_diff(self, tmp_path, capsys):
        self.run_small_campaign(tmp_path / "a.jsonl", "gcc")
        self.run_small_campaign(tmp_path / "b.jsonl", "mcf")
        assert (
            main(
                [
                    "store", "merge", str(tmp_path / "merged.jsonl"),
                    str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 added" in out and "2 total" in out
        # merged vs a: b's entry is extra -> exit code 1.
        assert (
            main(
                ["store", "diff", str(tmp_path / "merged.jsonl"), str(tmp_path / "a.jsonl")]
            )
            == 1
        )
        assert "only in" in capsys.readouterr().out
        # identical stores -> exit code 0.
        self.run_small_campaign(tmp_path / "a2.jsonl", "gcc")
        assert (
            main(["store", "diff", str(tmp_path / "a.jsonl"), str(tmp_path / "a2.jsonl")])
            == 0
        )
        assert "1 identical" in capsys.readouterr().out

    def test_worker_parser(self):
        args = build_parser().parse_args(["worker", "tcp://127.0.0.1:7654"])
        assert args.address == "tcp://127.0.0.1:7654"
        assert args.jobs == 1
        assert args.connect_retry == 30.0

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])
