"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_sweep_arguments, _parse_sweep_value, build_parser, main
from repro.errors import CampaignError, ConfigurationError


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.accesses == 50_000
        assert args.p_cell == 1e-8
        assert args.workloads == []

    def test_example_arguments(self):
        args = build_parser().parse_args(["example", "--reads", "100"])
        assert args.reads == 100


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "L2" in out and "stt-mram" in out

    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 5" in out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "Area overhead (%)" in out and "REAP" in out

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out and "mcf" in out

    def test_fig5_small_run(self, capsys):
        assert main(["fig5", "--accesses", "2000", "gcc"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "average=" in out

    def test_fig6_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "fig6.csv"
        assert main(["fig6", "--accesses", "2000", "--csv", str(csv_path), "gcc"]) == 0
        assert csv_path.exists()
        assert "wrote" in capsys.readouterr().out

    def test_fig3_small_run(self, capsys):
        assert main(["fig3", "--accesses", "3000", "perlbench"]) == 0
        out = capsys.readouterr().out
        assert "perlbench" in out and "Failure rate" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            main(["fig5", "--accesses", "1000", "not-a-benchmark"])


class TestCampaignCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.jobs == 1
        assert args.store == "campaign_store.jsonl"
        assert args.schemes == "reap"
        assert args.sweep == []

    def test_sweep_value_parsing(self):
        assert _parse_sweep_value("3") == 3
        assert _parse_sweep_value("1e-8") == 1e-8
        assert _parse_sweep_value("true") is True
        assert _parse_sweep_value("none") is None
        assert _parse_sweep_value("lru") == "lru"

    def test_sweep_argument_parsing(self):
        sweep = _parse_sweep_arguments(["p_cell=1e-9,1e-8", "ones_count=50,100"])
        assert sweep == (("p_cell", (1e-9, 1e-8)), ("ones_count", (50, 100)))

    def test_malformed_sweep_argument_rejected(self):
        with pytest.raises(CampaignError):
            _parse_sweep_arguments(["p_cell"])

    def test_campaign_run_and_resume(self, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        argv = [
            "campaign", "gcc",
            "--accesses", "1000",
            "--store", str(store),
            "--csv", str(tmp_path / "summary.csv"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 jobs" in out and "ran in" in out and "1 executed" in out
        assert store.exists()
        assert (tmp_path / "summary.csv").exists()
        # Second invocation: everything is served from the store.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out and "1 cached" in out
