"""Tests for the Fig. 3 / Fig. 5 / Fig. 6 builders (small, fast settings)."""

import pytest

from repro.analysis import (
    build_figure3,
    build_figure5,
    build_figure6,
    comparisons_to_figure5,
    comparisons_to_figure6,
)
from repro.config import CacheLevelConfig
from repro.errors import AnalysisError
from repro.sim import ExperimentSettings, compare_schemes


@pytest.fixture(scope="module")
def fast_settings():
    return ExperimentSettings(
        l2_config=CacheLevelConfig(
            name="L2", size_bytes=256 * 1024, associativity=8, block_size_bytes=64,
            technology="stt-mram",
        ),
        p_cell=1e-8,
        num_accesses=6_000,
        ones_count=100,
        seed=1,
    )


class TestFigure3:
    def test_builds_histogram(self, fast_settings):
        series = build_figure3("perlbench", settings=fast_settings)
        assert series.workload == "perlbench"
        assert len(series.bins) > 1
        assert series.total_failure_rate > 0
        assert series.max_concealed_reads > 0

    def test_frequencies_normalised_to_reference_bin(self, fast_settings):
        """The lowest-concealed-read bin is the paper's 100-point reference."""
        series = build_figure3("perlbench", settings=fast_settings)
        lowest = min(series.bins, key=lambda b: b.concealed_reads)
        assert lowest.normalized_frequency == pytest.approx(100.0)

    def test_high_count_bins_rare_but_contribute(self, fast_settings):
        """The paper's Fig. 3 observation: the tail has tiny frequency but a
        large share of the failure rate."""
        series = build_figure3("perlbench", settings=fast_settings)
        bins = sorted(series.bins, key=lambda b: b.concealed_reads)
        low, high = bins[0], bins[-1]
        assert high.normalized_frequency < low.normalized_frequency
        assert series.tail_dominance > 0.3

    def test_requires_tracking(self, fast_settings):
        settings = ExperimentSettings(
            l2_config=fast_settings.l2_config,
            p_cell=1e-8,
            num_accesses=1_000,
            track_accumulation=False,
        )
        with pytest.raises(AnalysisError):
            build_figure3("perlbench", settings=settings)


class TestFigure5:
    def test_reap_wins_everywhere(self, fast_settings):
        data = build_figure5(workloads=["mcf", "perlbench"], settings=fast_settings)
        assert len(data.rows) == 2
        for row in data.rows:
            assert row.mttf_improvement > 1.0
        assert data.min_improvement <= data.average_improvement <= data.max_improvement

    def test_mcf_gains_least(self, fast_settings):
        """Paper: mcf is the worst case (7.9x); heavy-reuse workloads gain more."""
        data = build_figure5(workloads=["mcf", "perlbench", "h264ref"], settings=fast_settings)
        assert data.row("mcf").mttf_improvement == data.min_improvement
        assert data.row("h264ref").mttf_improvement > data.row("mcf").mttf_improvement

    def test_row_lookup_unknown(self, fast_settings):
        data = build_figure5(workloads=["mcf"], settings=fast_settings)
        with pytest.raises(AnalysisError):
            data.row("gcc")


class TestFigure6:
    def test_small_positive_overheads(self, fast_settings):
        data = build_figure6(workloads=["cactusADM", "xalancbmk"], settings=fast_settings)
        for row in data.rows:
            assert 0.0 < row.overhead_percent < 10.0
            assert row.relative_dynamic_energy > 1.0

    def test_read_dominated_workload_has_larger_overhead(self, fast_settings):
        """Paper: cactusADM is the worst case (6.5%), xalancbmk the best (1.0%)."""
        data = build_figure6(workloads=["cactusADM", "xalancbmk"], settings=fast_settings)
        assert data.row("cactusADM").overhead_percent > data.row("xalancbmk").overhead_percent


class TestFromComparisons:
    def test_reuses_precomputed_comparisons(self, fast_settings):
        comparisons = [
            compare_schemes("gcc", settings=fast_settings),
            compare_schemes("mcf", settings=fast_settings),
        ]
        fig5 = comparisons_to_figure5(comparisons)
        fig6 = comparisons_to_figure6(comparisons)
        assert {r.workload for r in fig5.rows} == {"gcc", "mcf"}
        assert {r.workload for r in fig6.rows} == {"gcc", "mcf"}

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            comparisons_to_figure5([])
        with pytest.raises(AnalysisError):
            comparisons_to_figure6([])
