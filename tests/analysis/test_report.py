"""Tests for the plain-text report renderers."""

import pytest

from repro.analysis import (
    build_area_table,
    build_figure3,
    build_latency_table,
    build_table1,
    numeric_example,
    render_area_report,
    render_figure3,
    render_figure5,
    render_figure6,
    render_latency_report,
    render_numeric_example,
    render_table1,
)
from repro.analysis.figures import Figure5Data, Figure5Row, Figure6Data, Figure6Row
from repro.config import CacheLevelConfig
from repro.sim import ExperimentSettings


@pytest.fixture(scope="module")
def fast_settings():
    return ExperimentSettings(
        l2_config=CacheLevelConfig(
            name="L2", size_bytes=128 * 1024, associativity=8, block_size_bytes=64,
            technology="stt-mram",
        ),
        p_cell=1e-8,
        num_accesses=3_000,
        ones_count=100,
    )


class TestRenderers:
    def test_table1(self):
        text = render_table1(build_table1())
        assert "L2" in text and "stt-mram" in text

    def test_figure3(self, fast_settings):
        text = render_figure3(build_figure3("perlbench", settings=fast_settings))
        assert "perlbench" in text
        assert "Failure rate" in text

    def test_figure5(self):
        data = Figure5Data(
            rows=(
                Figure5Row("mcf", 7.9, 1e-3, 1.3e-4, 80),
                Figure5Row("namd", 1500.0, 1e-3, 6.7e-7, 20_000),
            ),
            average_improvement=753.95,
            min_improvement=7.9,
            max_improvement=1500.0,
        )
        text = render_figure5(data)
        assert "mcf" in text and "average=754.0x" in text

    def test_figure6(self):
        data = Figure6Data(
            rows=(Figure6Row("cactusADM", 1.065, 6.5, 0.96, 0.98),),
            average_overhead_percent=6.5,
            min_overhead_percent=6.5,
            max_overhead_percent=6.5,
        )
        text = render_figure6(data)
        assert "cactusADM" in text and "6.5" in text

    def test_area_report(self):
        text = render_area_report(build_area_table())
        assert "Area overhead (%)" in text

    def test_latency_report(self):
        text = render_latency_report(build_latency_table())
        assert "REAP" in text and "serial" in text

    def test_numeric_example(self):
        text = render_numeric_example(numeric_example())
        assert "Eq. 4" in text and "Eq. 5" in text
