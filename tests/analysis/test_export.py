"""Tests for CSV/JSON export of figure data and comparisons."""

import csv
import json

import pytest

from repro.analysis import build_figure3, comparisons_to_figure5, comparisons_to_figure6
from repro.analysis.export import (
    comparison_to_dict,
    comparisons_to_json,
    figure3_to_csv,
    figure5_to_csv,
    figure6_to_csv,
    load_comparisons_summary,
)
from repro.config import CacheLevelConfig
from repro.errors import AnalysisError
from repro.sim import ExperimentSettings, compare_schemes


@pytest.fixture(scope="module")
def fast_settings():
    return ExperimentSettings(
        l2_config=CacheLevelConfig(
            name="L2", size_bytes=128 * 1024, associativity=8, block_size_bytes=64,
            technology="stt-mram",
        ),
        p_cell=1e-8,
        num_accesses=3_000,
        ones_count=100,
        seed=1,
    )


@pytest.fixture(scope="module")
def comparisons(fast_settings):
    return [compare_schemes("gcc", settings=fast_settings)]


class TestCSVExport:
    def test_figure3_csv(self, tmp_path, fast_settings):
        series = build_figure3("perlbench", settings=fast_settings)
        path = figure3_to_csv(series, tmp_path / "fig3.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(series.bins)
        assert rows[0]["workload"] == "perlbench"
        assert float(rows[0]["normalized_frequency"]) > 0

    def test_figure5_csv(self, tmp_path, comparisons):
        data = comparisons_to_figure5(comparisons)
        path = figure5_to_csv(data, tmp_path / "fig5.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert {row["workload"] for row in rows} == {"gcc"}
        assert float(rows[0]["mttf_improvement"]) > 1.0

    def test_figure6_csv(self, tmp_path, comparisons):
        data = comparisons_to_figure6(comparisons)
        path = figure6_to_csv(data, tmp_path / "fig6.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert float(rows[0]["overhead_percent"]) > 0.0

    def test_creates_parent_directories(self, tmp_path, comparisons):
        data = comparisons_to_figure5(comparisons)
        path = figure5_to_csv(data, tmp_path / "nested" / "dir" / "fig5.csv")
        assert path.exists()


class TestJSONExport:
    def test_comparison_dict_contains_metrics(self, comparisons):
        payload = comparison_to_dict(comparisons[0])
        assert payload["workload"] == "gcc"
        assert "reap" in payload["metrics"]
        assert payload["metrics"]["reap"]["mttf_improvement"] > 1.0
        assert payload["baseline"]["scheme"] == "conventional"

    def test_round_trip_file(self, tmp_path, comparisons):
        path = comparisons_to_json(comparisons, tmp_path / "comparisons.json")
        loaded = load_comparisons_summary(path)
        assert len(loaded) == 1
        assert loaded[0]["workload"] == "gcc"
        # The file is valid JSON usable without the library.
        raw = json.loads(path.read_text())
        assert isinstance(raw, list)

    def test_rejects_empty_export(self, tmp_path):
        with pytest.raises(AnalysisError):
            comparisons_to_json([], tmp_path / "empty.json")
