"""Tests for Table I, the overhead reports and the worked example."""

import pytest

from repro.analysis import (
    build_area_table,
    build_latency_table,
    build_table1,
    numeric_example,
)
from repro.config import paper_l2_config


class TestTable1:
    def test_matches_paper_configuration(self):
        rows = {r.level: r for r in build_table1()}
        assert rows["L1I"].size_kib == 32 and rows["L1I"].associativity == 4
        assert rows["L1D"].size_kib == 32 and rows["L1D"].associativity == 4
        assert rows["L2"].size_kib == 1024 and rows["L2"].associativity == 8
        assert rows["L2"].technology == "stt-mram"
        assert rows["L1I"].technology == "sram"
        assert all(r.block_size_bytes == 64 for r in rows.values())
        assert all(r.write_policy == "write-back" for r in rows.values())


class TestAreaReport:
    def test_overhead_below_one_percent(self):
        report = build_area_table()
        assert 0.0 < report.overhead_percent < 1.0

    def test_decoder_fraction_about_a_tenth_of_a_percent(self):
        report = build_area_table()
        assert 0.0002 < report.decoder_area_fraction < 0.005

    def test_decoder_counts(self):
        report = build_area_table()
        assert report.num_decoders_conventional == 1
        assert report.num_decoders_reap == 8

    def test_reap_area_larger(self):
        report = build_area_table()
        assert report.reap_total_mm2 > report.conventional_total_mm2

    def test_respects_custom_associativity(self):
        config = paper_l2_config()
        wide = type(config)(
            name="L2",
            size_bytes=config.size_bytes,
            associativity=16,
            block_size_bytes=64,
            technology=config.technology,
            ecc=config.ecc,
        )
        report = build_area_table(wide)
        assert report.num_decoders_reap == 16


class TestLatencyReport:
    def test_reap_no_slower(self):
        report = build_latency_table()
        assert report.reap_is_no_slower

    def test_serial_pays_a_penalty(self):
        report = build_latency_table()
        assert report.serial_penalty_ns > 0


class TestNumericExample:
    def test_matches_paper_values(self):
        example = numeric_example()
        assert example.single_read_failure == pytest.approx(5.0e-13, rel=0.02)
        assert example.accumulated_failure == pytest.approx(1.3e-9, rel=0.05)
        assert example.reap_failure == pytest.approx(2.6e-11, rel=0.06)
        assert example.reap_gain == pytest.approx(50.0, rel=0.05)

    def test_penalty_of_three_orders_of_magnitude(self):
        example = numeric_example()
        assert 1e3 < example.accumulation_penalty < 1e4

    def test_custom_parameters(self):
        example = numeric_example(p_cell=1e-7, num_ones=200, num_reads=10)
        assert example.num_reads == 10
        assert example.accumulated_failure > example.single_read_failure
