"""Tests for the ones-count data profile."""

import numpy as np
import pytest

from repro.core import DataValueProfile
from repro.errors import ConfigurationError


class TestDataValueProfile:
    def test_samples_within_block_width(self):
        profile = DataValueProfile(block_bits=512, seed=1)
        samples = profile.sample_many(200)
        assert np.all((samples >= 0) & (samples <= 512))

    def test_mean_tracks_configured_fraction(self):
        profile = DataValueProfile(block_bits=512, ones_fraction_mean=0.2, seed=2)
        samples = profile.sample_many(2000)
        assert samples.mean() == pytest.approx(0.2 * 512, rel=0.1)

    def test_zero_std_gives_binomial_spread_only(self):
        profile = DataValueProfile(block_bits=512, ones_fraction_mean=0.5, ones_fraction_std=0.0, seed=3)
        samples = profile.sample_many(500)
        assert samples.std() < 20

    def test_reproducible_with_seed(self):
        a = DataValueProfile(seed=9).sample_many(50)
        b = DataValueProfile(seed=9).sample_many(50)
        assert np.array_equal(a, b)

    def test_constant_profile(self):
        profile = DataValueProfile.constant(100)
        assert all(profile.sample() == 100 for _ in range(10))
        assert profile.mean_ones == pytest.approx(100.0)

    def test_constant_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            DataValueProfile.constant(600, block_bits=512)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            DataValueProfile(ones_fraction_mean=1.5)

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            DataValueProfile().sample_many(-1)
