"""Behavioural comparison of the conventional, REAP and serial caches.

These are the unit-level versions of the paper's claims: driving identical
access streams through each scheme must show the conventional cache
accumulating concealed reads and paying an accumulation-sized failure
probability, while REAP and the serial cache do not accumulate.
"""

import pytest

from repro.cache import AddressMapper
from repro.config import CacheLevelConfig
from repro.core import DataValueProfile, ProtectionScheme, build_protected_cache
from repro.reliability import (
    accumulated_failure_probability,
    block_failure_probability,
    reap_failure_probability,
)


def small_l2():
    return CacheLevelConfig(
        name="L2",
        size_bytes=64 * 1024,
        associativity=8,
        block_size_bytes=64,
        technology="stt-mram",
    )


def make(scheme):
    return build_protected_cache(
        scheme,
        small_l2(),
        p_cell=1e-8,
        data_profile=DataValueProfile.constant(100),
        seed=1,
    )


@pytest.fixture
def addresses():
    """Two blocks mapping to the same set."""
    mapper = AddressMapper(small_l2())
    return mapper.compose(1, 7), mapper.compose(2, 7)


class TestConcealedReadAccounting:
    def test_conventional_accumulates_concealed_reads(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.CONVENTIONAL)
        cache.read(victim)
        cache.read(aggressor)
        # 20 reads of the aggressor each speculatively read the victim too.
        for _ in range(20):
            cache.read(aggressor)
        outcome = cache.read(victim)
        assert outcome.concealed_reads == 21
        assert cache.reliability.concealed_reads > 0

    def test_reap_never_accumulates(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.REAP)
        cache.read(victim)
        cache.read(aggressor)
        for _ in range(20):
            cache.read(aggressor)
        outcome = cache.read(victim)
        assert outcome.concealed_reads == 0
        assert cache.reliability.concealed_reads == 0

    def test_serial_has_no_speculative_reads(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.SERIAL)
        cache.read(victim)
        for _ in range(20):
            cache.read(aggressor)
        outcome = cache.read(victim)
        assert outcome.concealed_reads == 0
        assert cache.stats.data_way_reads == cache.stats.read_hits


class TestFailureProbabilities:
    def test_conventional_delivery_pays_eq3(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.CONVENTIONAL)
        cache.read(victim)
        cache.read(aggressor)
        for _ in range(48):
            cache.read(aggressor)
        outcome = cache.read(victim)
        # 49 aggressor hits + 1 aggressor miss-fill read = 50 concealed reads,
        # plus the demand read -> window of 51.
        expected = accumulated_failure_probability(1e-8, 100, outcome.concealed_reads + 1)
        assert outcome.failure_probability == pytest.approx(expected)

    def test_reap_delivery_pays_eq6(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.REAP)
        cache.read(victim)
        cache.read(aggressor)
        for _ in range(48):
            cache.read(aggressor)
        outcome = cache.read(victim)
        expected = reap_failure_probability(1e-8, 100, outcome.demand_window)
        assert outcome.failure_probability == pytest.approx(expected)

    def test_reap_expected_failures_lower(self, addresses):
        victim, aggressor = addresses
        results = {}
        for scheme in (ProtectionScheme.CONVENTIONAL, ProtectionScheme.REAP):
            cache = make(scheme)
            cache.read(victim)
            cache.read(aggressor)
            for _ in range(100):
                cache.read(aggressor)
            cache.read(victim)
            results[scheme] = cache.expected_failures
        assert results[ProtectionScheme.REAP] < results[ProtectionScheme.CONVENTIONAL]

    def test_serial_matches_single_read_failure(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.SERIAL)
        cache.read(victim)
        for _ in range(30):
            cache.read(aggressor)
        outcome = cache.read(victim)
        assert outcome.failure_probability == pytest.approx(
            block_failure_probability(1e-8, 100)
        )


class TestEnergyAccounting:
    def test_reap_burns_more_decode_energy(self, addresses):
        victim, aggressor = addresses
        energies = {}
        for scheme in (ProtectionScheme.CONVENTIONAL, ProtectionScheme.REAP):
            cache = make(scheme)
            cache.read(victim)
            for _ in range(50):
                cache.read(aggressor)
            energies[scheme] = cache.energy
        assert (
            energies[ProtectionScheme.REAP].ecc_decode_pj
            > energies[ProtectionScheme.CONVENTIONAL].ecc_decode_pj
        )
        # ... but the total dynamic energy difference stays small (paper: ~2.7%).
        ratio = (
            energies[ProtectionScheme.REAP].dynamic_pj
            / energies[ProtectionScheme.CONVENTIONAL].dynamic_pj
        )
        assert 1.0 < ratio < 1.10

    def test_serial_reads_fewer_ways(self, addresses):
        victim, aggressor = addresses
        serial = make(ProtectionScheme.SERIAL)
        parallel = make(ProtectionScheme.CONVENTIONAL)
        for cache in (serial, parallel):
            cache.read(victim)
            for _ in range(20):
                cache.read(aggressor)
        assert serial.energy.data_read_pj < parallel.energy.data_read_pj


class TestWriteBehaviour:
    def test_write_resets_accumulation(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.CONVENTIONAL)
        cache.read(victim)
        for _ in range(10):
            cache.read(aggressor)
        cache.write(victim)
        outcome = cache.read(victim)
        assert outcome.concealed_reads == 0

    def test_writes_cost_the_same_across_schemes(self, addresses):
        victim, _ = addresses
        conventional = make(ProtectionScheme.CONVENTIONAL)
        reap = make(ProtectionScheme.REAP)
        conventional.write(victim)
        reap.write(victim)
        assert conventional.energy.data_write_pj == pytest.approx(reap.energy.data_write_pj)
