"""Tests for the interleaving-lane-aware failure model in the engine."""

import pytest

from repro.cache import CacheBlock
from repro.config import CacheLevelConfig, ECCConfig, ECCKind
from repro.core import DataValueProfile, ProtectionScheme, build_protected_cache
from repro.core.engine import ReliabilityEngine
from repro.errors import ConfigurationError


def fresh_block(ones=100):
    block = CacheBlock()
    block.fill(tag=1, ones_count=ones)
    return block


class TestLaneAwareEngine:
    def test_rejects_bad_lane_count(self):
        with pytest.raises(ConfigurationError):
            ReliabilityEngine(p_cell=1e-8, interleaving_lanes=0)

    def test_single_lane_matches_default(self):
        plain = ReliabilityEngine(p_cell=1e-8)
        one_lane = ReliabilityEngine(p_cell=1e-8, interleaving_lanes=1)
        a = plain.on_conventional_delivery(fresh_block()).failure_probability
        b = one_lane.on_conventional_delivery(fresh_block()).failure_probability
        assert a == pytest.approx(b)

    def test_more_lanes_lower_failure(self):
        """Spreading a block over independent codewords makes a double error
        within one codeword less likely (union bound over lanes)."""
        results = []
        for lanes in (1, 2, 4):
            engine = ReliabilityEngine(p_cell=1e-8, interleaving_lanes=lanes)
            block = fresh_block()
            for _ in range(49):
                engine.on_concealed_read(block)
            results.append(engine.on_conventional_delivery(block).failure_probability)
        assert results[0] > results[1] > results[2]
        # Four lanes cut the same-codeword pairing chance roughly four-fold.
        assert results[0] / results[2] == pytest.approx(4.0, rel=0.15)

    def test_reap_delivery_with_lanes(self):
        engine = ReliabilityEngine(p_cell=1e-8, interleaving_lanes=4)
        block = fresh_block()
        for _ in range(9):
            engine.on_scrub_read(block)
        outcome = engine.on_reap_delivery(block)
        assert 0.0 < outcome.failure_probability < 1.0


class TestInterleavedProtectedCache:
    def _build(self, kind, degree=1, scheme=ProtectionScheme.CONVENTIONAL):
        config = CacheLevelConfig(
            name="L2",
            size_bytes=64 * 1024,
            associativity=8,
            block_size_bytes=64,
            technology="stt-mram",
            ecc=ECCConfig(kind=kind, interleaving_degree=degree),
        )
        return build_protected_cache(
            scheme, config, p_cell=1e-8, data_profile=DataValueProfile.constant(100), seed=1
        )

    def test_interleaved_baseline_beats_plain_sec_baseline(self):
        sec = self._build(ECCKind.HAMMING_SEC)
        interleaved = self._build(ECCKind.INTERLEAVED_SECDED, degree=4)
        victim = sec.cache.mapper.compose(1, 3)
        aggressor = sec.cache.mapper.compose(2, 3)
        for cache in (sec, interleaved):
            cache.read(victim)
            cache.read(aggressor)
            for _ in range(100):
                cache.read(aggressor)
            cache.read(victim)
        assert interleaved.expected_failures < sec.expected_failures

    def test_reap_with_plain_sec_still_beats_interleaved_baseline(self):
        """The ablation headline: REAP + SEC outperforms a conventional cache
        hardened with 4-way interleaved SEC-DED."""
        interleaved_baseline = self._build(ECCKind.INTERLEAVED_SECDED, degree=4)
        reap_sec = self._build(ECCKind.HAMMING_SEC, scheme=ProtectionScheme.REAP)
        victim = reap_sec.cache.mapper.compose(1, 3)
        aggressor = reap_sec.cache.mapper.compose(2, 3)
        for cache in (interleaved_baseline, reap_sec):
            cache.read(victim)
            cache.read(aggressor)
            for _ in range(200):
                cache.read(aggressor)
            cache.read(victim)
        assert reap_sec.expected_failures < interleaved_baseline.expected_failures
