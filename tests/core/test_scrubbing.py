"""Tests for the patrol-scrubbing baseline (extension scheme)."""

import pytest

from repro.cache import AddressMapper
from repro.config import CacheLevelConfig
from repro.core import DataValueProfile, ProtectionScheme, ScrubbingCache, build_protected_cache
from repro.errors import ConfigurationError


def small_l2():
    return CacheLevelConfig(
        name="L2",
        size_bytes=32 * 1024,
        associativity=8,
        block_size_bytes=64,
        technology="stt-mram",
    )


def make(scrub_rate=1.0):
    return ScrubbingCache(
        config=small_l2(),
        p_cell=1e-8,
        data_profile=DataValueProfile.constant(100),
        seed=1,
        scrub_lines_per_access=scrub_rate,
    )


def make_scheme(scheme):
    return build_protected_cache(
        scheme, small_l2(), p_cell=1e-8, data_profile=DataValueProfile.constant(100), seed=1
    )


@pytest.fixture
def addresses():
    mapper = AddressMapper(small_l2())
    return mapper.compose(1, 5), mapper.compose(2, 5)


class TestConstruction:
    def test_factory_builds_scrubbing_cache(self):
        cache = make_scheme(ProtectionScheme.SCRUBBING)
        assert isinstance(cache, ScrubbingCache)
        assert cache.scheme_name() == "scrubbing"

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            make(scrub_rate=-1.0)


class TestScrubberBehaviour:
    def test_scrubber_visits_lines(self, addresses):
        victim, aggressor = addresses
        cache = make(scrub_rate=1.0)
        cache.read(victim)
        for _ in range(20):
            cache.read(aggressor)
        assert cache.scrubbed_lines > 0

    def test_zero_rate_never_scrubs(self, addresses):
        victim, aggressor = addresses
        cache = make(scrub_rate=0.0)
        cache.read(victim)
        for _ in range(20):
            cache.read(aggressor)
        assert cache.scrubbed_lines == 0

    def test_fractional_rate_accumulates(self, addresses):
        victim, _ = addresses
        cache = make(scrub_rate=0.25)
        for _ in range(8):
            cache.read(victim)
        assert cache.scrubbed_lines == 2

    def test_scrubbing_bounds_accumulation(self, addresses):
        """With an aggressive scrubber the victim's accumulation window is
        much smaller than the number of concealed reads it suffered."""
        victim, aggressor = addresses
        scrubbed = make(scrub_rate=2.0)
        unscrubbed = make(scrub_rate=0.0)
        for cache in (scrubbed, unscrubbed):
            cache.read(victim)
            cache.read(aggressor)
            for _ in range(100):
                cache.read(aggressor)
            cache.read(victim)
        scrubbed_window = scrubbed.reliability.max_accumulated_reads
        unscrubbed_window = unscrubbed.reliability.max_accumulated_reads
        assert scrubbed_window < unscrubbed_window

    def test_reliability_sits_between_conventional_and_reap(self, addresses):
        victim, aggressor = addresses
        failures = {}
        for scheme in (ProtectionScheme.CONVENTIONAL, ProtectionScheme.SCRUBBING, ProtectionScheme.REAP):
            cache = make_scheme(scheme)
            cache.read(victim)
            cache.read(aggressor)
            for _ in range(200):
                cache.read(aggressor)
            cache.read(victim)
            failures[scheme] = cache.expected_failures
        assert failures[ProtectionScheme.SCRUBBING] < failures[ProtectionScheme.CONVENTIONAL]
        # REAP's per-read checking dominates a background scrubber for the
        # delivered line's failure probability.
        assert failures[ProtectionScheme.REAP] < failures[ProtectionScheme.CONVENTIONAL]

    def test_scrubbing_costs_energy(self, addresses):
        victim, aggressor = addresses
        scrubbed = make(scrub_rate=2.0)
        conventional = make_scheme(ProtectionScheme.CONVENTIONAL)
        for cache in (scrubbed, conventional):
            cache.read(victim)
            for _ in range(50):
                cache.read(aggressor)
        assert scrubbed.energy.dynamic_pj > conventional.energy.dynamic_pj

    def test_writes_also_advance_the_scrubber(self, addresses):
        victim, _ = addresses
        cache = make(scrub_rate=1.0)
        cache.read(victim)
        for _ in range(10):
            cache.write(victim)
        assert cache.scrubbed_lines >= 10


class TestScrubStateHooks:
    """Public patrol-state snapshot/restore used by the batched engine."""

    def test_round_trip_preserves_patrol_progress(self, addresses):
        victim, aggressor = addresses
        cache = make(scrub_rate=0.7)
        cache.read(victim)
        for _ in range(5):
            cache.read(aggressor)
        credit, cursor, scrubbed = cache.export_scrub_state()
        assert scrubbed == cache.scrubbed_lines
        cache.import_scrub_state(credit, cursor, scrubbed)
        assert cache.export_scrub_state() == (credit, cursor, scrubbed)

    def test_restored_state_continues_identically(self, addresses):
        victim, aggressor = addresses
        driven = make(scrub_rate=0.7)
        driven.read(victim)
        for _ in range(7):
            driven.read(aggressor)
        clone = make(scrub_rate=0.7)
        clone.read(victim)
        for _ in range(7):
            clone.read(aggressor)
        clone.import_scrub_state(*driven.export_scrub_state())
        for cache in (driven, clone):
            for _ in range(9):
                cache.read(aggressor)
        assert driven.export_scrub_state() == clone.export_scrub_state()

    def test_import_validates_components(self):
        cache = make()
        total_frames = cache.cache.num_sets * cache.cache.associativity
        with pytest.raises(ConfigurationError):
            cache.import_scrub_state(-0.1, 0, 0)
        with pytest.raises(ConfigurationError):
            cache.import_scrub_state(0.0, total_frames, 0)
        with pytest.raises(ConfigurationError):
            cache.import_scrub_state(0.0, 0, -1)
