"""Tests for the reliability engine (exposure -> failure probability)."""

import pytest

from repro.cache import CacheBlock
from repro.core.engine import ReliabilityEngine
from repro.errors import ConfigurationError
from repro.reliability import (
    accumulated_failure_probability,
    block_failure_probability,
    reap_failure_probability,
)


def fresh_block(ones=100):
    block = CacheBlock()
    block.fill(tag=1, ones_count=ones)
    return block


class TestConstruction:
    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            ReliabilityEngine(p_cell=1.5)

    def test_tracking_can_be_disabled(self):
        engine = ReliabilityEngine(p_cell=1e-8, track_accumulation=False)
        assert engine.tracker is None


class TestConventionalDelivery:
    def test_matches_eq3(self):
        engine = ReliabilityEngine(p_cell=1e-8)
        block = fresh_block()
        for _ in range(49):
            engine.on_concealed_read(block)
        outcome = engine.on_conventional_delivery(block)
        assert outcome.concealed_reads == 49
        assert outcome.failure_probability == pytest.approx(
            accumulated_failure_probability(1e-8, 100, 50)
        )

    def test_no_concealed_reads_matches_eq2(self):
        engine = ReliabilityEngine(p_cell=1e-8)
        outcome = engine.on_conventional_delivery(fresh_block())
        assert outcome.failure_probability == pytest.approx(
            block_failure_probability(1e-8, 100)
        )

    def test_expected_failures_accumulate(self):
        engine = ReliabilityEngine(p_cell=1e-6)
        for _ in range(10):
            engine.on_conventional_delivery(fresh_block())
        assert engine.expected_failures == pytest.approx(
            10 * block_failure_probability(1e-6, 100)
        )

    def test_tracker_records_samples(self):
        engine = ReliabilityEngine(p_cell=1e-8)
        block = fresh_block()
        engine.on_concealed_read(block)
        engine.on_conventional_delivery(block)
        assert len(engine.tracker) == 1
        assert engine.tracker.samples[0].concealed_reads == 1

    def test_zero_ones_never_fails(self):
        engine = ReliabilityEngine(p_cell=1e-2)
        outcome = engine.on_conventional_delivery(fresh_block(ones=0))
        assert outcome.failure_probability == 0.0


class TestReapDelivery:
    def test_matches_eq6(self):
        engine = ReliabilityEngine(p_cell=1e-8)
        block = fresh_block()
        for _ in range(49):
            engine.on_scrub_read(block)
        outcome = engine.on_reap_delivery(block)
        assert outcome.demand_window == 50
        assert outcome.failure_probability == pytest.approx(
            reap_failure_probability(1e-8, 100, 50)
        )

    def test_reap_delivery_beats_conventional(self):
        conventional = ReliabilityEngine(p_cell=1e-8)
        reap = ReliabilityEngine(p_cell=1e-8)
        block_a, block_b = fresh_block(), fresh_block()
        for _ in range(99):
            conventional.on_concealed_read(block_a)
            reap.on_scrub_read(block_b)
        failure_conventional = conventional.on_conventional_delivery(block_a).failure_probability
        failure_reap = reap.on_reap_delivery(block_b).failure_probability
        assert failure_reap < failure_conventional

    def test_scrub_reads_counted(self):
        engine = ReliabilityEngine(p_cell=1e-8)
        block = fresh_block()
        engine.on_scrub_read(block)
        assert engine.stats.scrub_events == 1


class TestSerialDelivery:
    def test_matches_eq2_regardless_of_history(self):
        engine = ReliabilityEngine(p_cell=1e-8)
        outcome = engine.on_serial_delivery(fresh_block())
        assert outcome.failure_probability == pytest.approx(
            block_failure_probability(1e-8, 100)
        )


class TestStatsBookkeeping:
    def test_max_and_mean_windows(self):
        engine = ReliabilityEngine(p_cell=1e-8)
        block = fresh_block()
        for _ in range(9):
            engine.on_concealed_read(block)
        engine.on_conventional_delivery(block)
        engine.on_conventional_delivery(fresh_block())
        assert engine.stats.max_accumulated_reads == 10
        assert engine.stats.mean_accumulated_reads == pytest.approx((10 + 1) / 2)

    def test_memoisation_is_transparent(self):
        engine = ReliabilityEngine(p_cell=1e-8)
        first = engine.on_conventional_delivery(fresh_block()).failure_probability
        second = engine.on_conventional_delivery(fresh_block()).failure_probability
        assert first == second
