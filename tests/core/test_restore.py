"""Tests for the disruptive-read-and-restore baseline."""

import pytest

from repro.cache import AddressMapper
from repro.config import CacheLevelConfig
from repro.core import DataValueProfile, ProtectionScheme, build_protected_cache


def small_l2():
    return CacheLevelConfig(
        name="L2",
        size_bytes=64 * 1024,
        associativity=8,
        block_size_bytes=64,
        technology="stt-mram",
    )


def make(scheme):
    return build_protected_cache(
        scheme,
        small_l2(),
        p_cell=1e-8,
        data_profile=DataValueProfile.constant(100),
        seed=1,
    )


@pytest.fixture
def addresses():
    mapper = AddressMapper(small_l2())
    return mapper.compose(1, 3), mapper.compose(2, 3)


class TestRestoreBehaviour:
    def test_no_accumulation(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.RESTORE)
        cache.read(victim)
        cache.read(aggressor)
        for _ in range(30):
            cache.read(aggressor)
        outcome = cache.read(victim)
        assert outcome.concealed_reads == 0

    def test_restores_are_counted(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.RESTORE)
        cache.read(victim)
        cache.read(aggressor)
        cache.read(aggressor)
        assert cache.restore_count > 0

    def test_restore_write_failures_add_exposure(self, addresses):
        victim, aggressor = addresses
        cache = make(ProtectionScheme.RESTORE)
        cache.read(victim)
        for _ in range(50):
            cache.read(aggressor)
        assert cache.restore_expected_failures > 0
        assert cache.expected_failures >= cache.restore_expected_failures

    def test_restore_energy_far_exceeds_reap(self, addresses):
        """Restoring every way on every read burns STT-MRAM write energy that
        dwarfs REAP's extra decoder activations — the reason the paper rejects
        this mitigation family."""
        victim, aggressor = addresses
        restore = make(ProtectionScheme.RESTORE)
        reap = make(ProtectionScheme.REAP)
        for cache in (restore, reap):
            cache.read(victim)
            for _ in range(50):
                cache.read(aggressor)
        assert restore.energy.dynamic_pj > 2.0 * reap.energy.dynamic_pj

    def test_restore_read_reliability_not_worse_than_reap(self, addresses):
        """Both schemes eliminate read-disturbance accumulation.  Restore's
        read-path exposure is bounded by REAP's (whose Eq. (6) window also
        covers checked speculative reads); restore then adds write-failure
        exposure on top, tracked separately."""
        victim, aggressor = addresses
        restore = make(ProtectionScheme.RESTORE)
        reap = make(ProtectionScheme.REAP)
        for cache in (restore, reap):
            cache.read(victim)
            for _ in range(50):
                cache.read(aggressor)
            cache.read(victim)
        assert restore.engine.expected_failures <= reap.engine.expected_failures * (1 + 1e-9)


class TestRecordRestoreBatch:
    def test_matches_sequential_accounting(self):
        cache = build_protected_cache(
            ProtectionScheme.RESTORE,
            small_l2(),
            p_cell=1e-8,
            data_profile=DataValueProfile.constant(100),
        )
        probabilities = [
            cache.write_error_model.block_write_failure_probability(ones)
            for ones in (100, 90, 100)
        ]
        before_count = cache.restore_count
        before_failures = cache.restore_expected_failures
        cache.record_restore_batch(probabilities)
        assert cache.restore_count == before_count + 3
        expected = before_failures
        for probability in probabilities:
            expected += probability
        assert cache.restore_expected_failures == expected

    def test_empty_batch_is_a_no_op(self):
        cache = build_protected_cache(
            ProtectionScheme.RESTORE,
            small_l2(),
            p_cell=1e-8,
            data_profile=DataValueProfile.constant(100),
        )
        cache.record_restore_batch([])
        assert cache.restore_count == 0
        assert cache.restore_expected_failures == 0.0


class TestRecordRestoreRuns:
    """Run-length-encoded restore recording must match the expanded array."""

    def make_cache(self):
        return build_protected_cache(
            ProtectionScheme.RESTORE,
            small_l2(),
            p_cell=1e-8,
            data_profile=DataValueProfile.constant(100),
        )

    def test_matches_record_restore_array_over_repeat(self):
        import numpy as np

        probabilities = np.array([1e-9, 3e-9, 1e-9, 7e-10])
        counts = np.array([5, 1, 12, 3], dtype=np.int64)
        by_runs = self.make_cache()
        by_array = self.make_cache()
        by_runs.record_restore_runs(probabilities, counts)
        by_array.record_restore_array(np.repeat(probabilities, counts))
        assert by_runs.restore_count == by_array.restore_count == int(counts.sum())
        # Bit-identical, not approximately equal: the chunked sequential sum
        # must reproduce the identical left-to-right additions.
        assert by_runs.restore_expected_failures == by_array.restore_expected_failures

    def test_chunk_boundaries_do_not_change_the_sum(self):
        import numpy as np

        probabilities = np.array([2e-9, 5e-9])
        counts = np.array([10, 7], dtype=np.int64)
        reference = self.make_cache()
        reference.record_restore_runs(probabilities, counts)
        for chunk in (1, 3, 10, 16, 17, 1 << 16):
            cache = self.make_cache()
            cache.record_restore_runs(probabilities, counts, _chunk=chunk)
            assert cache.restore_count == reference.restore_count
            assert (
                cache.restore_expected_failures
                == reference.restore_expected_failures
            )

    def test_zero_and_negative_counts_are_skipped(self):
        import numpy as np

        cache = self.make_cache()
        cache.record_restore_runs(
            np.array([1e-9, 2e-9, 3e-9]), np.array([0, 4, -2], dtype=np.int64)
        )
        assert cache.restore_count == 4
        expected = self.make_cache()
        expected.record_restore_array(np.full(4, 2e-9))
        assert cache.restore_expected_failures == expected.restore_expected_failures

    def test_empty_runs_are_a_no_op(self):
        import numpy as np

        cache = self.make_cache()
        cache.record_restore_runs(np.zeros(0), np.zeros(0, dtype=np.int64))
        assert cache.restore_count == 0
        assert cache.restore_expected_failures == 0.0
