"""Tests for the protection-scheme classes and their factory."""

import pytest

from repro.config import CacheLevelConfig, ReadPathMode
from repro.core import (
    SCHEME_CLASSES,
    ConventionalCache,
    DataValueProfile,
    ProtectionScheme,
    REAPCache,
    RestoreCache,
    SerialAccessCache,
    build_protected_cache,
)


def small_l2(**overrides):
    params = dict(
        name="L2",
        size_bytes=64 * 1024,
        associativity=8,
        block_size_bytes=64,
        technology="stt-mram",
    )
    params.update(overrides)
    return CacheLevelConfig(**params)


def make(scheme, **kwargs):
    defaults = dict(
        config=small_l2(),
        p_cell=1e-8,
        data_profile=DataValueProfile.constant(100),
        seed=1,
    )
    defaults.update(kwargs)
    return build_protected_cache(scheme, **defaults)


class TestFactory:
    @pytest.mark.parametrize(
        "scheme, cls",
        [
            (ProtectionScheme.CONVENTIONAL, ConventionalCache),
            (ProtectionScheme.REAP, REAPCache),
            (ProtectionScheme.SERIAL, SerialAccessCache),
            (ProtectionScheme.RESTORE, RestoreCache),
        ],
    )
    def test_builds_each_scheme(self, scheme, cls):
        cache = make(scheme)
        assert isinstance(cache, cls)

    def test_accepts_string_names(self):
        assert isinstance(make("reap"), REAPCache)

    def test_registry_is_complete(self):
        assert set(SCHEME_CLASSES) == set(ProtectionScheme)

    def test_scheme_overrides_configured_read_path(self):
        cache = make(ProtectionScheme.REAP, config=small_l2(read_path=ReadPathMode.SERIAL))
        assert cache.config.read_path is ReadPathMode.REAP

    def test_p_cell_derived_from_mtj_when_not_given(self):
        cache = build_protected_cache(
            ProtectionScheme.CONVENTIONAL, small_l2(), data_profile=DataValueProfile.constant(100)
        )
        assert 0.0 < cache.p_cell < 1e-3


class TestReadPathModes:
    def test_modes(self):
        assert ConventionalCache.read_path_mode() is ReadPathMode.PARALLEL
        assert REAPCache.read_path_mode() is ReadPathMode.REAP
        assert SerialAccessCache.read_path_mode() is ReadPathMode.SERIAL
        assert RestoreCache.read_path_mode() is ReadPathMode.PARALLEL

    def test_scheme_names_are_unique(self):
        names = {cls.scheme_name() for cls in SCHEME_CLASSES.values()}
        assert len(names) == len(SCHEME_CLASSES)


class TestBasicOperation:
    def test_read_miss_then_hit(self):
        cache = make(ProtectionScheme.CONVENTIONAL)
        address = 0x4000
        assert cache.read(address) is None  # miss: nothing delivered yet
        outcome = cache.read(address)
        assert outcome is not None
        assert outcome.failure_probability >= 0.0
        assert cache.stats.read_hits == 1

    def test_write_then_read(self):
        cache = make(ProtectionScheme.REAP)
        cache.write(0x8000)
        outcome = cache.read(0x8000)
        assert outcome is not None
        assert cache.stats.write_misses == 1

    def test_latency_properties(self):
        conventional = make(ProtectionScheme.CONVENTIONAL)
        reap = make(ProtectionScheme.REAP)
        serial = make(ProtectionScheme.SERIAL)
        assert reap.read_hit_latency_ns() <= conventional.read_hit_latency_ns()
        assert serial.read_hit_latency_ns() > conventional.read_hit_latency_ns()

    def test_mttf_helper(self):
        cache = make(ProtectionScheme.CONVENTIONAL)
        cache.read(0x0)
        cache.read(0x0)
        result = cache.mttf(simulated_time_s=1.0)
        assert result.simulated_time_s == 1.0
        assert result.expected_failures == cache.expected_failures
